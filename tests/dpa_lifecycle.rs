//! End-to-end DPA lifecycle: a request decodes token by token while the
//! host lazily allocates chunks, extends the VA2PA mapping, and the
//! on-module dispatcher expands DPA programs against the growing T_cur —
//! with no per-step host communication (paper §VI-C).

use pimphony::pim_compiler::lower::{lower_attention_dpa, AttentionLowering};
use pimphony::pim_mem::{ChunkAllocator, Dispatcher, RequestId, Va2PaTable};
use pimphony::pim_sim::epu::Epu;
use pimphony::pim_sim::module::PimModule;
use pimphony::pim_sim::Geometry;

/// Rows of KV data one chunk holds in this test's geometry.
const ROWS_PER_CHUNK: u64 = 8;
/// Tokens covered per DRAM row (channel-tile granularity for the test).
const TOKENS_PER_ROW: u64 = 256;

fn kv_rows(tokens: u64) -> u64 {
    tokens.div_ceil(TOKENS_PER_ROW)
}

#[test]
fn decode_grows_lazily_without_host_chatter() {
    let shape = AttentionLowering::aimx_default();
    let program = lower_attention_dpa(&shape);
    let mut dispatcher = Dispatcher::new(program, ROWS_PER_CHUNK);
    let mut allocator = ChunkAllocator::new(64 << 20, 1 << 20);

    // Admission: register and map the prompt's chunks.
    let id = RequestId(7);
    let prompt = 10_000u64;
    allocator.register(id).expect("fresh request");
    let rows = kv_rows(prompt);
    let maps = allocator
        .grow(id, rows * (1 << 20) / ROWS_PER_CHUNK)
        .expect("fits");
    let table: Va2PaTable = maps.into_iter().collect();
    dispatcher
        .register(id, prompt, table)
        .expect("fresh request");
    let msgs_after_admission = dispatcher.host_messages();

    // Decode 2048 tokens: each step advances T_cur locally; the host only
    // intervenes when a new chunk boundary is crossed.
    let mut extra_host_msgs = 0;
    for _ in 0..2048 {
        let t = dispatcher.advance_token(id).expect("registered");
        let needed_rows = kv_rows(t);
        let needed_bytes = needed_rows * (1 << 20) / ROWS_PER_CHUNK;
        let new_maps = allocator.grow(id, needed_bytes).expect("capacity");
        if !new_maps.is_empty() {
            dispatcher.extend_mapping(id, new_maps).expect("registered");
            extra_host_msgs += 1;
        }
        // The decode must always succeed against the current mapping.
        let decoded = dispatcher.decode(id).expect("fully mapped");
        assert!(!decoded.is_empty());
    }

    // Host messages: one per crossed chunk boundary, nothing per step.
    let total_msgs = dispatcher.host_messages() - msgs_after_admission;
    assert_eq!(total_msgs, extra_host_msgs);
    assert!(total_msgs <= kv_rows(prompt + 2048).div_ceil(ROWS_PER_CHUNK) + 1);
    assert!(total_msgs < 8, "host chatter too high: {total_msgs}");

    // Expansion tracks T_cur: more tokens, more instructions.
    let long = dispatcher.decode(id).expect("mapped").len();
    assert!(long > 0);
    dispatcher.release(id).expect("registered");
    allocator.release(id).expect("registered");
    assert_eq!(allocator.free_chunks(), allocator.total_chunks());
}

#[test]
fn module_attention_consumes_growing_kv() {
    // TCP module-level attention stays correct as the KV grows mid-decode.
    let geom = Geometry {
        banks: 4,
        gbuf_entries: 8,
        out_entries: 2,
        row_tiles: 8,
        elems_per_tile: 4,
    };
    let module = PimModule::new(4, geom);
    let epu = Epu::default();
    let head_dim = 8usize;
    let key = |t: usize, d: usize| ((t * 3 + d) % 7) as f32 * 0.2 - 0.4;
    let val = |t: usize, d: usize| ((t + d * 2) % 5) as f32 * 0.3 - 0.6;
    let query: Vec<f32> = (0..head_dim).map(|d| d as f32 * 0.25 - 0.5).collect();

    let mut prev_entropyish = f32::INFINITY;
    for tokens in [8usize, 16, 24] {
        let keys: Vec<Vec<f32>> = (0..tokens)
            .map(|t| (0..head_dim).map(|d| key(t, d)).collect())
            .collect();
        let values: Vec<Vec<f32>> = (0..tokens)
            .map(|t| (0..head_dim).map(|d| val(t, d)).collect())
            .collect();
        let out = module.attention_head(&keys, &values, std::slice::from_ref(&query), 0.5);
        // Probabilities stay a distribution at every length...
        let sum: f32 = out.probabilities[0].iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "tokens={tokens}");
        // ...and the peak probability can only fall as mass spreads.
        let peak = out.probabilities[0].iter().copied().fold(0.0f32, f32::max);
        assert!(peak <= prev_entropyish + 1e-4);
        prev_entropyish = peak;
        // EPU reduction agrees with a direct sum over channel partials.
        let direct = epu.reduce_partials(&[out.outputs[0].clone()]);
        assert_eq!(direct, out.outputs[0]);
    }
}
