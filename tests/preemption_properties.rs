//! Preemption and eviction properties: priority-ordered admission with
//! evict-and-restart / evict-and-pause under KV memory pressure must
//! (1) change *nothing* when disabled or unprovoked — `None` stays
//! bit-exact with the PR 3 golden pins and uniform-priority traces
//! never evict under any policy — and (2) under provoked pressure keep
//! the hard invariants: every evicted request still completes (work
//! conservation), reserved KV never exceeds the admission capacity,
//! thread count never changes results, ample capacity implies zero
//! evictions, and eviction buys the high-priority class a measurably
//! better tail (the seeded regression of ISSUE 4).

use pimphony::pim_compiler::ParallelConfig;
use pimphony::system::{
    Cluster, Evaluator, PreemptionPolicy, RouterKind, SchedulingPolicy, ServingReport,
    SystemConfig, Techniques,
};
use pimphony::workload::{Dataset, Trace, TraceBuilder};

const PREFILL_CHUNK: u64 = 512;
/// The sweep's pressure point: half the hardware KV pool.
const PRESSURE_FACTOR: f64 = 0.5;

/// 4 replicas behind one cluster front-end (TP=2 over 8 modules).
fn base_eval() -> Evaluator {
    let sys = SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K)
        .with_parallel(ParallelConfig::new(2, 1));
    Evaluator::new(sys, pimphony::llm_model::LLM_7B_32K, Techniques::pimphony())
}

/// The `preemption_sweep` configuration: chunked prefill, scaled KV
/// pool, one of the preemption policies.
fn pressure_eval(policy: PreemptionPolicy, factor: f64) -> Evaluator {
    base_eval()
        .with_chunked_prefill(PREFILL_CHUNK)
        .with_kv_capacity_factor(factor)
        .with_preemption(policy)
}

/// The seeded two-class bursty trace of the `preemption_sweep`
/// experiment: interactive (1) vs batch (0) traffic at 0.8× the
/// full-capacity prefill-inclusive anchor rate.
fn priority_trace() -> Trace {
    let eval = base_eval().with_chunked_prefill(PREFILL_CHUNK);
    let closed = TraceBuilder::new(Dataset::QmSum)
        .seed(2026)
        .requests(96)
        .decode_range(16, 96)
        .build();
    let capacity_rps = closed.len() as f64 / eval.run_trace(&closed).seconds;
    TraceBuilder::new(Dataset::QmSum)
        .seed(2026)
        .requests(96)
        .decode_range(16, 96)
        .bursty(capacity_rps * 0.8, 2.5)
        .priority_levels(2)
        .build()
}

fn run(eval: &Evaluator, trace: &Trace, kind: RouterKind, threads: usize) -> ServingReport {
    Cluster::new(eval, SchedulingPolicy::Continuous)
        .with_threads(threads)
        .run(trace, kind.build().as_mut())
}

/// PR 3 golden pin, re-run through the fully plumbed preemption path
/// with its default knobs (`None`, KV factor 1.0): the decode-only
/// continuous numbers must stay bit-for-bit identical — the whole
/// eviction machinery must be invisible until asked for.
#[test]
fn none_policy_is_bit_exact_with_pr3_golden_pin() {
    let e = base_eval()
        .with_preemption(PreemptionPolicy::None)
        .with_kv_capacity_factor(1.0);
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(2026)
        .requests(160)
        .decode_range(16, 96)
        .bursty(16.0, 2.5)
        .build();
    let r = run(&e, &trace, RouterKind::RoundRobin, 4);
    assert_eq!(r.tokens, 9029);
    assert_eq!(r.waves, 155);
    assert_eq!(r.evictions, 0);
    assert_eq!(r.wasted_prefill_tokens, 0);
    assert_eq!(r.restart_seconds, 0.0);
    let close = |got: f64, want: f64, what: &str| {
        assert!(
            (got - want).abs() <= want.abs() * 1e-9,
            "{what}: {got} vs pinned {want}"
        );
    };
    close(r.seconds, 1.0708592565142856e1, "seconds");
    close(
        r.tokens_per_second,
        8.431546858351828e2,
        "tokens_per_second",
    );
    close(r.latency.ttft.p50, 2.2197971428568053e-3, "ttft p50");
    close(r.latency.ttft.p99, 2.8818125257142846e-1, "ttft p99");
    // The single-class breakdown mirrors the aggregate report.
    assert_eq!(r.latency_by_priority.len(), 1);
    assert_eq!(r.latency_by_priority[0].priority, 0);
    assert_eq!(r.latency_by_priority[0].latency, r.latency);
}

/// Eviction requires a strictly-lower-priority victim, so on a
/// uniform-priority trace every preemption policy must be *identical*
/// — byte-for-byte — to `None`, even under severe KV pressure.
#[test]
fn uniform_priority_traces_never_evict_under_any_policy() {
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(7)
        .requests(48)
        .decode_range(16, 96)
        .bursty(1.0, 2.5)
        .build(); // every priority 0
    let none = run(
        &pressure_eval(PreemptionPolicy::None, PRESSURE_FACTOR),
        &trace,
        RouterKind::JoinShortestQueue,
        4,
    );
    for policy in [PreemptionPolicy::EvictRestart, PreemptionPolicy::EvictPause] {
        let r = run(
            &pressure_eval(policy, PRESSURE_FACTOR),
            &trace,
            RouterKind::JoinShortestQueue,
            4,
        );
        assert_eq!(r.evictions, 0, "{policy}");
        assert_eq!(r, none, "{policy} must coincide with none");
    }
}

/// Work conservation under provoked evictions: every request still
/// completes. `EvictPause` keeps generated tokens, so decode work is
/// produced exactly once; `EvictRestart` regenerates its victims' —
/// exactly `wasted_decode_tokens` more than the trace demands.
#[test]
fn evicted_requests_still_complete_with_conserved_work() {
    let trace = priority_trace();
    for policy in [PreemptionPolicy::EvictRestart, PreemptionPolicy::EvictPause] {
        let r = run(
            &pressure_eval(policy, PRESSURE_FACTOR),
            &trace,
            RouterKind::JoinShortestQueue,
            4,
        );
        assert!(r.evictions > 0, "{policy}: pressure must provoke evictions");
        let served: u64 = r.per_replica.iter().map(|b| b.served).sum();
        assert_eq!(served, trace.len() as u64, "{policy}");
        assert_eq!(r.latency.completed, trace.len() as u64, "{policy}");
        assert_eq!(
            r.tokens,
            trace.total_decode_tokens() + r.wasted_decode_tokens,
            "{policy}"
        );
        match policy {
            PreemptionPolicy::EvictPause => assert_eq!(r.wasted_decode_tokens, 0, "{policy}"),
            PreemptionPolicy::EvictRestart => {}
            PreemptionPolicy::None => unreachable!(),
        }
        // Eviction re-work is visible and correctly attributed: prompt
        // tokens were re-prefilled (beyond the trace's own prompts),
        // their seconds land in the restart bucket, and that bucket is
        // a share of total prefill time, not an addition to it.
        assert!(r.wasted_prefill_tokens > 0, "{policy}");
        assert!(r.prefill_tokens > trace.total_prompt_tokens(), "{policy}");
        assert!(r.restart_seconds > 0.0, "{policy}");
        assert!(r.restart_seconds < r.prefill_seconds, "{policy}");
        assert!(r.latency.restart.max > 0.0, "{policy}");
        // Eviction counters agree across their three homes.
        let per_replica: u64 = r.per_replica.iter().map(|b| b.evictions).sum();
        assert_eq!(per_replica, r.evictions, "{policy}");
    }
}

/// Reserved KV never exceeds the admission capacity at any instant.
/// `peak_reserved_kv` is sampled after every reservation, so it bounds
/// the whole event log. (The one sanctioned exception, inherited from
/// the wave loop: an empty batch admits its first request even if that
/// single request exceeds capacity.)
#[test]
fn reserved_kv_stays_within_scaled_capacity() {
    let trace = priority_trace();
    let t_max = trace.max_final_len();
    for policy in PreemptionPolicy::ALL {
        let eval = pressure_eval(policy, PRESSURE_FACTOR);
        let capacity = eval.replica_kv_capacity();
        let max_single = trace
            .iter()
            .map(|r| eval.kv_reservation(r.final_len(), t_max))
            .max()
            .unwrap();
        let r = run(&eval, &trace, RouterKind::JoinShortestQueue, 4);
        for (i, b) in r.per_replica.iter().enumerate() {
            assert!(
                b.peak_reserved_kv <= capacity.max(max_single),
                "{policy} replica {i}: peak {} > capacity {capacity} (max single {max_single})",
                b.peak_reserved_kv
            );
        }
    }
}

/// The scaled-down pool is genuinely binding: the same run at full
/// hardware capacity reserves more KV at peak than the scaled capacity
/// allows, so the invariant above is not vacuously true.
#[test]
fn pressure_factor_actually_binds() {
    let trace = priority_trace();
    let eval = pressure_eval(PreemptionPolicy::None, 1.0);
    let scaled_capacity =
        pressure_eval(PreemptionPolicy::None, PRESSURE_FACTOR).replica_kv_capacity();
    let r = run(&eval, &trace, RouterKind::JoinShortestQueue, 4);
    assert!(
        r.per_replica
            .iter()
            .any(|b| b.peak_reserved_kv > scaled_capacity),
        "full-capacity peaks must exceed the scaled pool for the pressure tests to mean anything"
    );
}

/// Thread-count determinism survives eviction: the whole report —
/// eviction counters, wasted-work totals, per-priority latencies —
/// must be byte-identical between sequential and parallel simulation,
/// for every router.
#[test]
fn parallel_and_sequential_runs_are_byte_identical_with_evictions() {
    let trace = priority_trace();
    for policy in [PreemptionPolicy::EvictRestart, PreemptionPolicy::EvictPause] {
        for kind in [
            RouterKind::RoundRobin,
            RouterKind::JoinShortestQueue,
            RouterKind::LeastLoaded,
        ] {
            let eval = pressure_eval(policy, PRESSURE_FACTOR);
            let sequential = run(&eval, &trace, kind, 1);
            for threads in [2, 4, 8] {
                let parallel = run(&eval, &trace, kind, threads);
                assert_eq!(
                    sequential, parallel,
                    "{policy}/{kind} with {threads} threads"
                );
            }
            assert!(sequential.evictions > 0, "{policy}/{kind}");
        }
    }
}

/// Capacity monotonicity, in the form that is actually an invariant:
/// once the pool holds every offered reservation simultaneously,
/// nothing can ever block and eviction counts drop to zero. (Raw
/// eviction counts are *not* monotone point-by-point in mid-range
/// capacity — a bigger pool admits more requests and thereby exposes
/// more victims; measured on this trace, factor 1.0 evicts more often
/// than factor 0.35 — so the meaningful monotone statement is the
/// ample-capacity endpoint, plus pressure provoking strictly more
/// evictions than ample capacity.)
#[test]
fn ample_kv_capacity_eliminates_evictions() {
    let trace = priority_trace();
    let t_max = trace.max_final_len();
    let probe = pressure_eval(PreemptionPolicy::EvictRestart, 1.0);
    let total_reserved: u64 = trace
        .iter()
        .map(|r| probe.kv_reservation(r.final_len(), t_max))
        .sum();
    // Scale the pool to hold the whole trace at once, with margin.
    let ample = total_reserved as f64 / probe.replica_kv_capacity() as f64 * 1.05;
    for policy in [PreemptionPolicy::EvictRestart, PreemptionPolicy::EvictPause] {
        let relaxed = run(
            &pressure_eval(policy, ample.max(1.0)),
            &trace,
            RouterKind::JoinShortestQueue,
            4,
        );
        assert_eq!(
            relaxed.evictions, 0,
            "{policy}: ample capacity still evicted"
        );
        assert_eq!(relaxed.wasted_prefill_tokens, 0, "{policy}");
        let pressured = run(
            &pressure_eval(policy, PRESSURE_FACTOR),
            &trace,
            RouterKind::JoinShortestQueue,
            4,
        );
        assert!(
            pressured.evictions > relaxed.evictions,
            "{policy}: pressure must evict more than ample capacity"
        );
    }
}

/// Equivalence property for the indexed hot-path structures: the
/// priority-lane pending queue and the incrementally maintained victim
/// index must be *behavior-identical* to the linear-scan / sort-based
/// implementations they replaced. Unoptimized builds cross-check every
/// admission candidate and every eviction plan in place against the
/// linear reference (`debug_assert`s in `system::replica`), so driving
/// randomized multi-priority traces through the continuous path *is*
/// the old-vs-new property — `cargo test` without `--release` panics on
/// the first divergence; byte-identical reports across thread counts
/// close the loop in optimized builds too.
#[test]
fn indexed_queues_match_linear_scan_reference_on_randomized_traces() {
    for seed in [1, 9, 23, 2026] {
        for levels in [1, 2, 4] {
            let trace = TraceBuilder::new(Dataset::QmSum)
                .seed(seed)
                .requests(64)
                .decode_range(8, 64)
                .bursty(12.0, 2.5)
                .priority_levels(levels)
                .build();
            for policy in PreemptionPolicy::ALL {
                let eval = pressure_eval(policy, PRESSURE_FACTOR);
                let sequential = run(&eval, &trace, RouterKind::JoinShortestQueue, 1);
                let parallel = run(&eval, &trace, RouterKind::JoinShortestQueue, 4);
                assert_eq!(
                    sequential, parallel,
                    "seed {seed} levels {levels} {policy}: thread count changed the report"
                );
                assert_eq!(
                    sequential.latency.completed,
                    trace.len() as u64,
                    "seed {seed} levels {levels} {policy}"
                );
            }
        }
    }
    // The sweep above stays light on memory pressure; make sure the
    // victim index's eviction walk is exercised too, not just built.
    let pressured = run(
        &pressure_eval(PreemptionPolicy::EvictRestart, PRESSURE_FACTOR),
        &priority_trace(),
        RouterKind::JoinShortestQueue,
        4,
    );
    assert!(
        pressured.evictions > 0,
        "the equivalence property must cover the eviction path"
    );
}

/// The headline seeded regression (ISSUE 4 acceptance): on the bursty
/// two-class trace at a KV capacity where admission blocks, eviction
/// buys the interactive class a much better p99 TTFT than `None` —
/// measured ≈−33% at this configuration; the 15% floor leaves room for
/// cross-platform libm drift in the trace generator only. The price is
/// wasted prompt work and a worse batch-class tail, which the sweep
/// (`bench --bin preemption_sweep`) quantifies.
#[test]
fn eviction_improves_high_priority_p99_ttft_under_pressure() {
    let trace = priority_trace();
    let hi_p99 = |r: &ServingReport| {
        r.latency_by_priority
            .iter()
            .find(|p| p.priority == 1)
            .expect("interactive class present")
            .latency
            .ttft
            .p99
    };
    let none = run(
        &pressure_eval(PreemptionPolicy::None, PRESSURE_FACTOR),
        &trace,
        RouterKind::JoinShortestQueue,
        4,
    );
    assert_eq!(none.evictions, 0);
    for policy in [PreemptionPolicy::EvictRestart, PreemptionPolicy::EvictPause] {
        let evict = run(
            &pressure_eval(policy, PRESSURE_FACTOR),
            &trace,
            RouterKind::JoinShortestQueue,
            4,
        );
        assert!(
            hi_p99(&evict) < hi_p99(&none) * 0.85,
            "{policy}: hi-class p99 TTFT {} not well below none's {}",
            hi_p99(&evict),
            hi_p99(&none)
        );
        // The tradeoff is visible, not free: work was discarded.
        assert!(evict.wasted_prefill_tokens > 0, "{policy}");
        // Same completed work for the trace itself.
        assert_eq!(evict.latency.completed, none.latency.completed, "{policy}");
    }
}
