//! Prefill/decode disaggregation properties: (1) a spec whose pool list
//! is a single all-default `mixed` pool is byte-identical to the flat
//! (pool-free) form it desugars from, (2) KV is conserved across the
//! prefill→decode handoff — every request the prefill pool retires is
//! served by the decode pool, and the transferred bytes are exactly the
//! per-request prices of the `KvTransferModel`, (3) transfer time is
//! monotone in the page count, and (4) thread-count byte-identity
//! holds with pools armed.

use pimphony::system::{
    KvTransferConfig, PoolRole, PoolSpec, PrefillConfig, RouterKind, Scenario, SchedulingPolicy,
    ServingReport, TenantSpec,
};
use pimphony::workload::{ArrivalProcess, Dataset, DecodeSpec};

const PREFILL_CHUNK: u64 = 512;
const REQUESTS: usize = 48;

/// The shared workload: one bursty open-loop tenant.
fn tenant() -> TenantSpec {
    TenantSpec::new("bursty-open-loop", Dataset::QmSum)
        .requests(REQUESTS)
        .seed(2026)
        .decode(DecodeSpec::Uniform(16, 96))
        .arrivals(ArrivalProcess::Bursty {
            rate: 16.0,
            cv: 2.5,
        })
}

/// Flat (pool-free) colocated baseline: 4 mixed replicas at TP=2.
fn flat_scenario() -> Scenario {
    let mut s = Scenario::new("LLM-7B-32K");
    s.cluster.tp = 2;
    s.cluster.modules = 8;
    s.cluster.threads = 1;
    s.policies.scheduling = SchedulingPolicy::Continuous;
    s.policies.prefill = PrefillConfig::chunked(PREFILL_CHUNK);
    s.tenant(tenant())
}

/// The same hardware written as one explicit `mixed` pool.
fn single_pool_scenario() -> Scenario {
    let mut s = flat_scenario();
    s.cluster.pools = vec![PoolSpec::new("all", PoolRole::Mixed, 4).parallel(2, 1)];
    s
}

/// A 2+2 disaggregated split of the same 8 modules: a prefill pool
/// handing off to a decode pool.
fn disagg_scenario() -> Scenario {
    let mut s = flat_scenario();
    s.cluster.pools = vec![
        PoolSpec::new("prefill", PoolRole::Prefill, 2).parallel(2, 1),
        PoolSpec::new("decode", PoolRole::Decode, 2).parallel(2, 1),
    ];
    s
}

/// Desugaring pin: the explicit single-mixed-pool spec must reproduce
/// the flat form byte-for-byte — per-pool structure stays invisible
/// (empty `per_pool`, zero transfer metrics), so pre-disaggregation
/// reports are unchanged.
#[test]
fn single_mixed_pool_desugars_to_the_flat_form_byte_identically() {
    let flat = flat_scenario().materialize().expect("flat").run();
    let pooled = single_pool_scenario().materialize().expect("pooled").run();
    assert_eq!(pooled, flat);
    assert!(pooled.per_pool.is_empty(), "one mixed pool is unobservable");
    assert_eq!(pooled.kv_transferred_bytes, 0);
    assert_eq!(pooled.transfer_seconds, 0.0);
}

/// KV conservation across the handoff: every request retired by the
/// prefill pool is admitted and served by the decode pool, and the
/// reported transfer traffic is exactly the sum of the model's
/// per-request prices over the trace — nothing shipped twice, nothing
/// dropped.
#[test]
fn handoff_conserves_requests_and_prices_transfers_exactly() {
    let m = disagg_scenario().materialize().expect("materialize");
    let r = m.run();
    assert_eq!(r.latency.completed, REQUESTS as u64, "every request lands");
    assert_eq!(r.per_pool.len(), 2);
    let (pre, dec) = (&r.per_pool[0], &r.per_pool[1]);
    assert_eq!(pre.role, PoolRole::Prefill);
    assert_eq!(dec.role, PoolRole::Decode);
    // Conservation: prefill serves (hands off) all N, decode serves the
    // same N again; nothing is shed on either side.
    assert_eq!(pre.routed, REQUESTS as u64);
    assert_eq!(pre.served, REQUESTS as u64);
    assert_eq!(pre.handoffs, REQUESTS as u64);
    assert_eq!(dec.routed, REQUESTS as u64);
    assert_eq!(dec.served, REQUESTS as u64);
    assert_eq!(pre.shed + dec.shed, 0);
    assert_eq!(dec.handoffs, 0, "decode pools only receive");
    // Exact pricing: the transferred bytes equal the model applied to
    // each prompt independently (`kv_bytes` is linear, so this is also
    // per-token exact).
    let model = m.pools[0].evaluator.kv_transfer_model();
    let mut bytes = 0u64;
    let mut secs = 0.0f64;
    for req in m.trace.requests() {
        let (b, pages, s) = model.transfer(req.context_len);
        assert!(pages > 0, "a prompt always occupies at least one page");
        bytes += b;
        secs += s;
    }
    assert_eq!(r.kv_transferred_bytes, bytes);
    assert_eq!(pre.kv_transferred_bytes, bytes);
    assert_eq!(dec.kv_transferred_bytes, 0);
    // Float sums run in different orders (merge: replica order;
    // here: trace order), so compare to relative epsilon.
    assert!(
        (r.transfer_seconds - secs).abs() <= secs * 1e-9,
        "{} vs {}",
        r.transfer_seconds,
        secs
    );
    assert!(r.transfer_seconds > 0.0);
    // Decode work happened where it should: the decode pool produced
    // all decode tokens (the prefill pool retires at prompt residency).
    assert!(dec.tokens > 0);
}

/// Transfer time is monotone (nondecreasing) in the prompt length, and
/// strictly increasing across page boundaries: more KV pages can never
/// ship faster.
#[test]
fn transfer_time_is_monotone_in_page_count() {
    let m = disagg_scenario().materialize().expect("materialize");
    let model = m.pools[0].evaluator.kv_transfer_model();
    let mut prev = model.transfer(1);
    for tokens in 2..=4096u64 {
        let cur = model.transfer(tokens);
        assert!(cur.0 >= prev.0, "bytes monotone at {tokens}");
        assert!(cur.1 >= prev.1, "pages monotone at {tokens}");
        assert!(cur.2 >= prev.2, "secs monotone at {tokens}");
        if cur.1 > prev.1 {
            assert!(cur.2 > prev.2, "a page boundary adds latency at {tokens}");
        }
        prev = cur;
    }
}

/// Thread-count byte-identity carries over to armed pools: the
/// two-phase handoff pipeline replays to the same report on 1, 2, and
/// 8 threads.
#[test]
fn disaggregated_run_is_thread_deterministic() {
    let runs: Vec<ServingReport> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let mut s = disagg_scenario();
            s.cluster.threads = threads;
            s.materialize().expect("materialize").run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

/// Pool validation rejects topologies that cannot serve: a prefill
/// pool with nowhere to hand off, a decode pool with no feeder, roles
/// without continuous scheduling or modeled prefill, and duplicate
/// names.
#[test]
fn pool_validation_rejects_unservable_topologies() {
    let mut s = disagg_scenario();
    s.cluster.pools.pop();
    let err = s.materialize().unwrap_err();
    assert!(err.contains("decode pool is required"), "{err}");

    let mut s = disagg_scenario();
    s.cluster.pools.remove(0);
    let err = s.materialize().unwrap_err();
    assert!(err.contains("prefill pool is required"), "{err}");

    let mut s = disagg_scenario();
    s.policies.scheduling = SchedulingPolicy::Wave;
    let err = s.materialize().unwrap_err();
    assert!(err.contains("continuous scheduling"), "{err}");

    let mut s = disagg_scenario();
    s.policies.prefill = PrefillConfig::disabled();
    let err = s.materialize().unwrap_err();
    assert!(err.contains("prefill_chunk"), "{err}");

    let mut s = disagg_scenario();
    s.cluster.pools[1].name = "prefill".to_string();
    let err = s.materialize().unwrap_err();
    assert!(err.contains("duplicate pool name"), "{err}");
}

/// The checked-in `scenarios/disagg/*.json` pair parses, is canonical
/// (byte-identical to its own re-serialization), and exercises the
/// machinery it documents: the split spec declares prefill and decode
/// pools, runs with a populated `per_pool` breakdown and nonzero
/// transfer traffic; the colocated baseline stays pool-free.
#[test]
fn checked_in_disagg_scenarios_are_canonical_and_exercise_the_pools() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/disagg");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/disagg/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert_eq!(paths.len(), 2, "expected the colocated/split pair");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let scenario = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            scenario.to_pretty(),
            text,
            "{}: spec must be canonical (run scenario_check --canonicalize)",
            path.display()
        );
        let split = !scenario.cluster.pools.is_empty();
        let r = scenario
            .materialize()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
            .run();
        if split {
            assert_eq!(r.per_pool.len(), 2, "{}", path.display());
            assert!(r.kv_transferred_bytes > 0, "{}", path.display());
            assert!(r.transfer_seconds > 0.0, "{}", path.display());
        } else {
            assert!(r.per_pool.is_empty(), "{}", path.display());
            assert_eq!(r.kv_transferred_bytes, 0, "{}", path.display());
        }
        assert!(r.latency.completed > 0, "{}", path.display());
    }
}

/// The pooled spec round-trips through JSON — including role labels,
/// per-pool routers, and off-default transfer terms — and the
/// round-tripped spec reproduces the report byte-for-byte.
#[test]
fn pooled_spec_round_trips_through_json() {
    let mut s = disagg_scenario();
    s.cluster.pools[1].router = Some(RouterKind::JoinShortestQueue);
    s.policies.kv_transfer = KvTransferConfig {
        page_latency_us: 35.0,
        gbps: 32.0,
    };
    let text = s.to_pretty();
    let back = Scenario::parse(&text).expect("parse back");
    assert_eq!(back, s);
    assert_eq!(back.to_pretty(), text, "deterministic serialization");
    let r1 = s.materialize().expect("materialize").run();
    let r2 = back.materialize().expect("materialize back").run();
    assert_eq!(r1, r2);
}
