//! Property-based tests for the PIM command schedulers: hazard freedom,
//! DCS superiority, functional correctness against reference linear
//! algebra, and bus legality — over randomized kernels and streams.

use pimphony::pim_sim::checker::check_schedule;
use pimphony::pim_sim::functional::FunctionalChannel;
use pimphony::pim_sim::kernels::{AttentionSpec, GemvKernel, GemvSpec, QktKernel, SvKernel};
use pimphony::pim_sim::{schedule, Geometry, SchedulerKind, Timing};
use proptest::prelude::*;

fn small_geometry() -> Geometry {
    Geometry {
        banks: 4,
        gbuf_entries: 8,
        out_entries: 2,
        row_tiles: 8,
        elems_per_tile: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler's schedule is hazard-free on random GEMV kernels.
    #[test]
    fn schedulers_never_violate_hazards(dout in 1u32..96, din in 1u32..96) {
        let geom = small_geometry();
        let stream = GemvKernel::new(GemvSpec { dout, din }, geom).stream();
        for kind in SchedulerKind::ALL {
            let r = schedule(&stream, kind, &Timing::aimx(), &geom);
            let v = check_schedule(&stream, &r);
            prop_assert!(v.is_empty(), "{kind}: {:?}", v);
        }
    }

    /// DCS never loses to static scheduling; ping-pong sits in between
    /// (up to a small modeling tolerance).
    #[test]
    fn dcs_dominates_static(tokens in 64u32..2048, group in 1u32..4) {
        let geom = Geometry::pimphony();
        let spec = AttentionSpec { tokens, head_dim: 128, group_size: group, row_reuse: group > 1 };
        for stream in [QktKernel::new(spec, geom).stream(), SvKernel::new(spec, geom).stream()] {
            let st = schedule(&stream, SchedulerKind::Static, &Timing::aimx(), &geom);
            let dc = schedule(&stream, SchedulerKind::Dcs, &Timing::aimx(), &geom);
            prop_assert!(dc.cycles <= st.cycles, "dcs {} > static {}", dc.cycles, st.cycles);
        }
    }

    /// The GEMV kernel computes the reference matrix-vector product for
    /// arbitrary shapes and values, including the partial-sum path.
    #[test]
    fn gemv_matches_reference(
        dout in 1u32..64,
        din in 1u32..96,
        seed in 0u64..1000,
    ) {
        let geom = small_geometry();
        let k = GemvKernel::new(GemvSpec { dout, din }, geom);
        let w = move |o: usize, i: usize| {
            (((o as u64 * 31 + i as u64 * 17 + seed) % 13) as f32) * 0.25 - 1.5
        };
        let x: Vec<f32> = (0..din as usize)
            .map(|i| (((i as u64 * 7 + seed) % 11) as f32) * 0.3 - 1.0)
            .collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_weights(&mut ch, w);
        ch.execute(&k.stream(), &k.input_tiles(&x));
        let got = k.output_from(&ch);
        for (o, &g) in got.iter().enumerate() {
            let want: f32 = (0..din as usize).map(|i| w(o, i) * x[i]).sum();
            prop_assert!((g - want).abs() < 1e-2, "out[{o}]: {g} vs {want}");
        }
    }

    /// Attention kernels honour GQA semantics: per-query scores equal the
    /// reference dot products under the row-reuse mapping.
    #[test]
    fn qkt_gqa_matches_reference(tokens in 4u32..48, g in 1u32..4) {
        let geom = small_geometry();
        let spec = AttentionSpec { tokens, head_dim: 8, group_size: g, row_reuse: g > 1 };
        let k = QktKernel::new(spec, geom);
        let key = |tok: usize, d: usize| ((tok * 3 + d) % 7) as f32 * 0.5 - 1.0;
        let queries: Vec<Vec<f32>> =
            (0..g as usize).map(|q| (0..8).map(|d| (q + d) as f32 * 0.25).collect()).collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_keys(&mut ch, key);
        ch.execute(&k.stream(), &k.input_tiles(&queries));
        let scores = k.scores_from(&ch);
        for (q, qv) in queries.iter().enumerate() {
            #[allow(clippy::needless_range_loop)]
            for tok in 0..tokens as usize {
                let want: f32 = (0..8).map(|d| key(tok, d) * qv[d]).sum();
                prop_assert!((scores[q][tok] - want).abs() < 1e-2, "q={q} tok={tok}");
            }
        }
    }

    /// Command-bus legality: no two commands issue closer than t_CCDS.
    #[test]
    fn bus_spacing_is_legal(tokens in 32u32..512) {
        let geom = Geometry::pimphony();
        let t = Timing::aimx();
        let stream = QktKernel::new(AttentionSpec::mha(tokens, 128), geom).stream();
        for kind in SchedulerKind::ALL {
            let r = schedule(&stream, kind, &t, &geom);
            let mut issues: Vec<u64> = r.timings.iter().map(|x| x.issue).collect();
            issues.sort_unstable();
            for w in issues.windows(2) {
                prop_assert!(w[1] - w[0] >= t.t_ccds, "{kind}: {:?}", w);
            }
        }
    }
}
