//! Cluster-layer properties: parallel/sequential determinism, routed
//! round-robin fidelity to the historical trace-level partitioning, and
//! the load-balancing win that motivates the layer — JSQ strictly
//! improving tail TTFT over blind round-robin on bursty traffic.

use pimphony::pim_compiler::ParallelConfig;
use pimphony::system::{
    Cluster, Evaluator, RouterKind, SchedulingPolicy, SystemConfig, Techniques,
};
use pimphony::workload::{Dataset, Trace, TraceBuilder};

/// 4 replicas behind one cluster front-end (TP=2 over 8 modules).
fn cluster_eval() -> Evaluator {
    let sys = SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K)
        .with_parallel(ParallelConfig::new(2, 1));
    Evaluator::new(sys, pimphony::llm_model::LLM_7B_32K, Techniques::pimphony())
}

/// The bursty-gamma trace of the `router_compare` experiment: offered
/// load just past the 4-replica capacity, so bursts genuinely queue.
fn bursty_trace(seed: u64) -> Trace {
    TraceBuilder::new(Dataset::QmSum)
        .seed(seed)
        .requests(160)
        .decode_range(16, 96)
        .bursty(16.0, 2.5)
        .build()
}

/// Parallel replica simulation must be invisible in the results: for
/// every router, a cluster run on N scoped threads produces a
/// byte-identical `ServingReport` — latency percentiles, energy,
/// per-replica breakdowns, everything — to the single-threaded run.
#[test]
fn parallel_and_sequential_cluster_runs_are_byte_identical() {
    let e = cluster_eval();
    assert!(e.system().replicas() >= 4);
    let trace = bursty_trace(2026);
    for kind in RouterKind::ALL {
        let run = |threads: usize| {
            Cluster::new(&e, SchedulingPolicy::Continuous)
                .with_threads(threads)
                .run(&trace, kind.build().as_mut())
        };
        let sequential = run(1);
        for threads in [2, 4, 8] {
            let parallel = run(threads);
            assert_eq!(sequential, parallel, "{kind} with {threads} threads");
        }
        assert_eq!(sequential.latency.completed, trace.len() as u64, "{kind}");
    }
}

/// The determinism guarantee holds for the wave policy too (its replica
/// sims do all their work at the drain barrier).
#[test]
fn wave_cluster_is_thread_count_invariant() {
    let e = cluster_eval();
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(3)
        .requests(24)
        .decode_len(16)
        .build();
    let run = |threads: usize| {
        Cluster::new(&e, SchedulingPolicy::Wave)
            .with_threads(threads)
            .run(&trace, RouterKind::RoundRobin.build().as_mut())
    };
    assert_eq!(run(1), run(4));
}

/// The `Engine` facade and an explicit round-robin cluster are the same
/// path (the facade delegates), so their reports must be identical for
/// both policies — a guard against the two ever drifting apart. (True
/// fidelity oracles live elsewhere: `run_trace_wave_reference` for the
/// wave policy, and the golden pin below for the continuous one.)
#[test]
fn engine_facade_equals_explicit_round_robin_cluster() {
    let e = cluster_eval();
    for policy in [SchedulingPolicy::Wave, SchedulingPolicy::Continuous] {
        let trace = bursty_trace(7);
        let engine = pimphony::system::Engine::new(&e, policy).run(&trace);
        let cluster = Cluster::new(&e, policy)
            .with_threads(4)
            .run(&trace, RouterKind::RoundRobin.build().as_mut());
        assert_eq!(engine, cluster, "{policy}");
    }
}

/// The wave policy routes in *trace* order, so round-robin through the
/// cluster reproduces the historical trace-index partitioning even on
/// hand-built traces whose `(arrival_us, id)` order differs from trace
/// order — checked against the independent pre-refactor reference loop.
/// (Uniform decode budgets: the reference keeps the original loop's
/// mid-chunk token over-count for varied budgets by design.)
#[test]
fn wave_round_robin_matches_reference_on_out_of_order_traces() {
    let e = cluster_eval();
    let mk = |id, context_len, arrival_us| pimphony::workload::Request {
        id,
        context_len,
        decode_len: 16,
        arrival_us,
        priority: 0,
        tenant: 0,
        shared_prefix: 0,
    };
    // Arrival times and ids deliberately disagree with trace order.
    let trace: Trace = [
        mk(9, 8000, 500_000),
        mk(3, 4000, 100_000),
        mk(7, 12000, 0),
        mk(1, 6000, 900_000),
        mk(5, 5000, 100_000),
    ]
    .into_iter()
    .collect();
    let engine = pimphony::system::Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
    let reference = e.run_trace_wave_reference(&trace);
    assert_eq!(engine.tokens, reference.tokens);
    assert_eq!(engine.waves, reference.waves);
    assert_eq!(engine.seconds, reference.seconds);
    assert_eq!(engine.mean_batch, reference.mean_batch);
    assert_eq!(engine.energy, reference.energy);
}

/// Golden pin for the continuous path: the wave policy has a live
/// oracle (`run_trace_wave_reference`), the continuous extraction does
/// not, so this pins a seeded run's numbers against silent behavioral
/// drift. Tolerances are tight enough to catch any scheduling change
/// (one decode iteration is ~2 ms) while riding out libm differences in
/// the trace generator's transcendentals. (Values re-pinned when chunk
/// pricing moved to exact per-step midpoint pricing; the prefill-enabled
/// pin lives in `tests/prefill_properties.rs`.)
#[test]
fn continuous_round_robin_golden_pin() {
    let e = cluster_eval();
    let r = Cluster::new(&e, SchedulingPolicy::Continuous)
        .with_threads(4)
        .run(&bursty_trace(2026), RouterKind::RoundRobin.build().as_mut());
    assert_eq!(r.tokens, 9029);
    assert_eq!(r.waves, 155);
    let close = |got: f64, want: f64, what: &str| {
        assert!(
            (got - want).abs() <= want.abs() * 1e-9,
            "{what}: {got} vs pinned {want}"
        );
    };
    close(r.seconds, 1.0708592565142856e1, "seconds");
    close(
        r.tokens_per_second,
        8.431546858351828e2,
        "tokens_per_second",
    );
    close(r.mean_batch, 1.2955947768689913e0, "mean_batch");
    close(r.busy_seconds, 1.5860865308000003e1, "busy_seconds");
    close(r.latency.ttft.p50, 2.2197971428568053e-3, "ttft p50");
    close(r.latency.ttft.p99, 2.8818125257142846e-1, "ttft p99");
    close(r.latency.e2e.p95, 3.8047524914285713e-1, "e2e p95");
    close(
        r.capacity_utilization,
        9.998594854973665e-1,
        "capacity_utilization",
    );
    // Prefill is off by default, so the decode-only pin carries no
    // prompt-processing work.
    assert_eq!(r.prefill_tokens, 0);
    assert_eq!(r.prefill_seconds, 0.0);
}

/// The reason the cluster layer exists: join-shortest-queue strictly
/// improves p99 TTFT over blind round-robin on bursty gamma traffic, on
/// every checked seed and in aggregate. (The simulation is fully
/// deterministic, so these seeded margins — 20–33% at this
/// configuration — are stable regressions, not flaky statistics.)
#[test]
fn jsq_beats_round_robin_p99_ttft_on_bursty_traffic() {
    let e = cluster_eval();
    let mut rr_sum = 0.0;
    let mut jsq_sum = 0.0;
    for seed in [1u64, 7, 2026] {
        let trace = bursty_trace(seed);
        let run = |kind: RouterKind| {
            Cluster::new(&e, SchedulingPolicy::Continuous)
                .with_threads(4)
                .run(&trace, kind.build().as_mut())
        };
        let rr = run(RouterKind::RoundRobin);
        let jsq = run(RouterKind::JoinShortestQueue);
        // Same work either way; the win is purely in the tail.
        assert_eq!(rr.tokens, jsq.tokens, "seed {seed}");
        assert!(
            jsq.latency.ttft.p99 < rr.latency.ttft.p99,
            "seed {seed}: jsq p99 {} !< rr p99 {}",
            jsq.latency.ttft.p99,
            rr.latency.ttft.p99
        );
        rr_sum += rr.latency.ttft.p99;
        jsq_sum += jsq.latency.ttft.p99;
    }
    // Aggregate margin is large, not a rounding artifact.
    assert!(
        jsq_sum < 0.9 * rr_sum,
        "aggregate jsq p99 {jsq_sum} vs rr {rr_sum}"
    );
}

/// Per-replica breakdowns expose the skew the routers create: blind
/// round-robin is perfectly count-fair, while JSQ trades count fairness
/// for time fairness.
#[test]
fn per_replica_breakdown_exposes_router_skew() {
    let e = cluster_eval();
    let replicas = e.system().replicas() as usize;
    let trace = bursty_trace(2026);
    let run = |kind: RouterKind| {
        Cluster::new(&e, SchedulingPolicy::Continuous)
            .with_threads(4)
            .run(&trace, kind.build().as_mut())
    };
    let rr = run(RouterKind::RoundRobin);
    let jsq = run(RouterKind::JoinShortestQueue);

    for (label, r) in [("rr", &rr), ("jsq", &jsq)] {
        assert_eq!(r.per_replica.len(), replicas, "{label}");
        let routed: u64 = r.per_replica.iter().map(|b| b.routed).sum();
        let served: u64 = r.per_replica.iter().map(|b| b.served).sum();
        assert_eq!(routed, trace.len() as u64, "{label}");
        assert_eq!(served, trace.len() as u64, "{label}");
        let busy: f64 = r.per_replica.iter().map(|b| b.busy_seconds).sum();
        assert!((busy - r.busy_seconds).abs() < 1e-9, "{label}");
        assert!(r.per_replica.iter().all(|b| b.seconds <= r.seconds + 1e-12));
        let fairness = r.replica_fairness();
        assert!(
            (0.0..=1.0 + 1e-12).contains(&fairness),
            "{label}: {fairness}"
        );
    }

    // Round-robin splits 160 requests over 4 replicas exactly evenly.
    assert!(rr.per_replica.iter().all(|b| b.routed == 40));
    // JSQ adapts: its routed counts differ across replicas on bursty
    // traffic, yet its busy-time fairness stays high.
    let jsq_counts: Vec<u64> = jsq.per_replica.iter().map(|b| b.routed).collect();
    assert!(
        jsq_counts.iter().any(|&c| c != jsq_counts[0]),
        "jsq unexpectedly count-uniform: {jsq_counts:?}"
    );
    assert!(jsq.replica_fairness() > 0.8, "{}", jsq.replica_fairness());
}

/// Sanity across the memory-policy axis: the cluster path preserves the
/// DPA-vs-static capacity story under load-aware routing.
#[test]
fn least_loaded_cluster_serves_all_work_under_static_reservations() {
    let sys = SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K)
        .with_parallel(ParallelConfig::new(2, 1));
    let e = Evaluator::new(
        sys,
        pimphony::llm_model::LLM_7B_32K,
        Techniques::tcp_dcs(), // static worst-case reservations
    );
    let trace = bursty_trace(42);
    let r = Cluster::new(&e, SchedulingPolicy::Continuous)
        .with_threads(2)
        .run(&trace, RouterKind::LeastLoaded.build().as_mut());
    assert_eq!(r.tokens, trace.total_decode_tokens());
    assert_eq!(r.latency.completed, trace.len() as u64);
    assert!(r.per_replica.iter().all(|b| b.peak_reserved_kv > 0));
}
