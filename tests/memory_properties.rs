//! Property-based tests for the DPA memory-management substrate.

use pimphony::pim_isa::dpa::{
    DpaInstruction, DpaProgram, DynLoop, DynModi, LoopBound, OperandField,
};
use pimphony::pim_isa::{ChannelMask, PimInstruction};
use pimphony::pim_mem::{ChunkAllocator, Dispatcher, RequestId, StaticAllocator, Va2PaTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chunk allocator never double-books a chunk, never leaks, and
    /// its utilization never exceeds 1.
    #[test]
    fn chunk_allocator_invariants(
        sizes in prop::collection::vec(1u64..5_000_000, 1..12),
        chunk_log in 16u32..21,
    ) {
        let chunk = 1u64 << chunk_log;
        let mut a = ChunkAllocator::new(256 * chunk, chunk);
        let mut seen = std::collections::HashSet::new();
        let mut admitted = vec![];
        for (i, &sz) in sizes.iter().enumerate() {
            let id = RequestId(i as u64);
            a.register(id).expect("fresh id");
            match a.grow(id, sz) {
                Ok(maps) => {
                    for (_, pc) in maps {
                        prop_assert!(seen.insert(pc), "chunk double-booked");
                    }
                    admitted.push(id);
                }
                Err(_) => { a.release(id).ok(); }
            }
            prop_assert!(a.capacity_utilization() <= 1.0 + 1e-12);
        }
        let free_before = a.free_chunks();
        for id in admitted {
            a.release(id).expect("admitted id");
        }
        prop_assert!(a.free_chunks() >= free_before);
        prop_assert_eq!(a.free_chunks(), a.total_chunks());
    }

    /// Static reservations are monotone: admitting more requests never
    /// raises capacity utilization above actual/reserved.
    #[test]
    fn static_allocator_utilization_bounded(
        usages in prop::collection::vec(0u64..1_000, 1..10),
    ) {
        let mut a = StaticAllocator::new(10_000, 1_000);
        for (i, &u) in usages.iter().enumerate() {
            if a.admit(RequestId(i as u64), u).is_err() {
                break;
            }
        }
        let util = a.capacity_utilization();
        prop_assert!((0.0..=1.0).contains(&util));
        let expect = a.used_bytes() as f64 / a.reserved_bytes() as f64;
        prop_assert!((util - expect).abs() < 1e-12);
    }

    /// VA2PA row translation is injective across distinct virtual rows
    /// when the physical chunks are distinct.
    #[test]
    fn va2pa_translation_is_injective(n_chunks in 1u64..16, rows_per_chunk in 1u64..64) {
        let table: Va2PaTable =
            (0..n_chunks).map(|vc| (vc, pimphony::pim_mem::ChunkId(100 + vc * 3))).collect();
        let mut seen = std::collections::HashSet::new();
        for vrow in 0..n_chunks * rows_per_chunk {
            let prow = table.translate_row(vrow, rows_per_chunk).expect("mapped");
            prop_assert!(seen.insert(prow), "physical row {prow} aliased");
        }
    }

    /// Dispatcher decode length equals the DPA program's expansion for the
    /// request's token length, independent of the VA2PA layout.
    #[test]
    fn dispatcher_expansion_matches_program(t_cur in 1u64..100_000, divisor in 1u32..512) {
        let mac = PimInstruction::mac(ChannelMask::first(16), 1, 0, 0, 0, 0);
        let mut p = DpaProgram::new();
        p.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::TokensDiv { divisor },
            body: vec![DpaInstruction::Plain(mac)],
            modifiers: vec![DynModi::new(0, OperandField::Row, 1)],
        }));
        let expect = p.expand(t_cur).len();
        let rows_per_chunk = 4u64;
        let needed_chunks = (expect as u64).div_ceil(rows_per_chunk).max(1);
        let table: Va2PaTable =
            (0..needed_chunks).map(|vc| (vc, pimphony::pim_mem::ChunkId(vc * 7))).collect();
        let mut d = Dispatcher::new(p, rows_per_chunk);
        d.register(RequestId(1), t_cur, table).expect("fresh");
        let decoded = d.decode(RequestId(1)).expect("mapped");
        prop_assert_eq!(decoded.len(), expect);
    }
}
