//! Property-based tests for the DPA memory-management substrate.

use pimphony::pim_isa::dpa::{
    DpaInstruction, DpaProgram, DynLoop, DynModi, LoopBound, OperandField,
};
use pimphony::pim_isa::{ChannelMask, PimInstruction};
use pimphony::pim_mem::{
    ChunkAllocator, Dispatcher, MemError, PagePool, PrefixHit, RequestId, StaticAllocator,
    Va2PaTable,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chunk allocator never double-books a chunk, never leaks, and
    /// its utilization never exceeds 1.
    #[test]
    fn chunk_allocator_invariants(
        sizes in prop::collection::vec(1u64..5_000_000, 1..12),
        chunk_log in 16u32..21,
    ) {
        let chunk = 1u64 << chunk_log;
        let mut a = ChunkAllocator::new(256 * chunk, chunk);
        let mut seen = std::collections::HashSet::new();
        let mut admitted = vec![];
        for (i, &sz) in sizes.iter().enumerate() {
            let id = RequestId(i as u64);
            a.register(id).expect("fresh id");
            match a.grow(id, sz) {
                Ok(maps) => {
                    for (_, pc) in maps {
                        prop_assert!(seen.insert(pc), "chunk double-booked");
                    }
                    admitted.push(id);
                }
                Err(_) => { a.release(id).ok(); }
            }
            prop_assert!(a.capacity_utilization() <= 1.0 + 1e-12);
        }
        let free_before = a.free_chunks();
        for id in admitted {
            a.release(id).expect("admitted id");
        }
        prop_assert!(a.free_chunks() >= free_before);
        prop_assert_eq!(a.free_chunks(), a.total_chunks());
    }

    /// Static reservations are monotone: admitting more requests never
    /// raises capacity utilization above actual/reserved.
    #[test]
    fn static_allocator_utilization_bounded(
        usages in prop::collection::vec(0u64..1_000, 1..10),
    ) {
        let mut a = StaticAllocator::new(10_000, 1_000);
        for (i, &u) in usages.iter().enumerate() {
            if a.admit(RequestId(i as u64), u).is_err() {
                break;
            }
        }
        let util = a.capacity_utilization();
        prop_assert!((0.0..=1.0).contains(&util));
        let expect = a.used_bytes() as f64 / a.reserved_bytes() as f64;
        prop_assert!((util - expect).abs() < 1e-12);
    }

    /// VA2PA row translation is injective across distinct virtual rows
    /// when the physical chunks are distinct.
    #[test]
    fn va2pa_translation_is_injective(n_chunks in 1u64..16, rows_per_chunk in 1u64..64) {
        let table: Va2PaTable =
            (0..n_chunks).map(|vc| (vc, pimphony::pim_mem::ChunkId(100 + vc * 3))).collect();
        let mut seen = std::collections::HashSet::new();
        for vrow in 0..n_chunks * rows_per_chunk {
            let prow = table.translate_row(vrow, rows_per_chunk).expect("mapped");
            prop_assert!(seen.insert(prow), "physical row {prow} aliased");
        }
    }

    /// Dispatcher decode length equals the DPA program's expansion for the
    /// request's token length, independent of the VA2PA layout.
    #[test]
    fn dispatcher_expansion_matches_program(t_cur in 1u64..100_000, divisor in 1u32..512) {
        let mac = PimInstruction::mac(ChannelMask::first(16), 1, 0, 0, 0, 0);
        let mut p = DpaProgram::new();
        p.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::TokensDiv { divisor },
            body: vec![DpaInstruction::Plain(mac)],
            modifiers: vec![DynModi::new(0, OperandField::Row, 1)],
        }));
        let expect = p.expand(t_cur).len();
        let rows_per_chunk = 4u64;
        let needed_chunks = (expect as u64).div_ceil(rows_per_chunk).max(1);
        let table: Va2PaTable =
            (0..needed_chunks).map(|vc| (vc, pimphony::pim_mem::ChunkId(vc * 7))).collect();
        let mut d = Dispatcher::new(p, rows_per_chunk);
        d.register(RequestId(1), t_cur, table).expect("fresh");
        let decoded = d.decode(RequestId(1)).expect("mapped");
        prop_assert_eq!(decoded.len(), expect);
    }
}

/// Labels of tenant `g`'s shared prompt pages `0..n` — the serving
/// layer's label scheme (`crates/system/src/replica.rs`).
fn chain_labels(g: u64, n: u64) -> Vec<u64> {
    (0..n).map(|i| (g << 32) | i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Page conservation (`total = free + cached + referenced`) holds
    /// after every page-pool operation, including admissions that
    /// trigger LRU reclamation and admissions the pool rejects; after
    /// releasing every live sequence no page is leaked as referenced.
    #[test]
    fn page_pool_conserves_pages_under_pressure(
        ops in prop::collection::vec((0u64..4, 1u64..12, 0u64..6), 1..40),
        total_pages in 8u64..40,
    ) {
        let page = 1024u64;
        let mut p = PagePool::new(total_pages * page, page);
        let mut live: Vec<u64> = vec![];
        for (i, &(tenant, chain, private)) in ops.iter().enumerate() {
            let labels = chain_labels(tenant, chain);
            match p.admit(RequestId(i as u64), &labels, private) {
                Ok(a) => {
                    // hit + missing = chain, new = missing + private.
                    prop_assert_eq!(a.hit_pages + a.new_pages, chain + private);
                    live.push(i as u64);
                }
                // Over-capacity admissions must be atomic no-ops; make
                // room by retiring the most recent sequence and move on.
                Err(MemError::OutOfMemory { .. }) => {
                    if let Some(id) = live.pop() {
                        p.release(RequestId(id)).expect("live id releases");
                    }
                }
                Err(e) => prop_assert!(false, "unexpected admit error: {e}"),
            }
            prop_assert_eq!(
                p.free_pages() + p.cached_pages() + p.referenced_pages(),
                p.total_pages()
            );
        }
        for id in live {
            p.release(RequestId(id)).expect("live id releases");
        }
        prop_assert_eq!(p.referenced_pages(), 0);
        prop_assert_eq!(p.free_pages() + p.cached_pages(), p.total_pages());
    }

    /// Shared-page refcounts never underflow: releasing `k` sharers of
    /// one chain caches the chain exactly once (on the last release),
    /// and releasing an already-released sequence errors instead of
    /// double-decrementing.
    #[test]
    fn page_pool_refcounts_never_underflow(
        sharers in 1u64..6,
        chain in 1u64..10,
    ) {
        let page = 1024u64;
        let mut p = PagePool::new(128 * page, page);
        for s in 0..sharers {
            p.admit(RequestId(s), &chain_labels(0, chain), 1).expect("fits");
        }
        for s in 0..sharers {
            let r = p.release(RequestId(s)).expect("live sharer");
            prop_assert_eq!(r.freed_pages, 1, "private page frees every time");
            let expect_cached = if s + 1 == sharers { chain } else { 0 };
            prop_assert_eq!(r.newly_cached_pages, expect_cached);
        }
        prop_assert!(p.release(RequestId(0)).is_err(), "double release rejected");
        prop_assert_eq!(p.referenced_pages(), 0);
        prop_assert_eq!(p.cached_pages(), chain);
    }

    /// Prefix-tree lookup agrees with a brute-force longest-common-
    /// prefix reference over the admitted chains: in an ample pool (no
    /// reclamation) a query's hit depth is the longest LCP with any
    /// admitted chain, and a hit page is cached iff no *live* chain
    /// still covers it.
    #[test]
    fn prefix_lookup_matches_brute_force_lcp(
        chains in prop::collection::vec((0u64..4, 1u64..12), 1..10),
        released in prop::collection::vec(any::<bool>(), 10..11),
        query in (0u64..5, 0u64..16),
    ) {
        let page = 1024u64;
        let mut p = PagePool::new(4096 * page, page);
        for (i, &(g, n)) in chains.iter().enumerate() {
            p.admit(RequestId(i as u64), &chain_labels(g, n), 0).expect("ample pool");
        }
        let mut resident: Vec<(u64, u64, bool)> = Vec::new();
        for (i, &(g, n)) in chains.iter().enumerate() {
            let live = !released[i];
            if !live {
                p.release(RequestId(i as u64)).expect("live id releases");
            }
            resident.push((g, n, live));
        }
        let (qg, qn) = query;
        let got = p.lookup(&chain_labels(qg, qn));
        // Chains are contiguous from the root, so residency at depth d
        // means some admitted chain of the query's tenant is longer
        // than d; the page is still referenced iff a live one is.
        let mut hit = 0u64;
        for d in 0..qn {
            if resident.iter().any(|&(g, n, _)| g == qg && n > d) {
                hit = d + 1;
            } else {
                break;
            }
        }
        let cached = (0..hit)
            .filter(|&d| !resident.iter().any(|&(g, n, live)| live && g == qg && n > d))
            .count() as u64;
        prop_assert_eq!(got, PrefixHit { hit_pages: hit, hit_cached_pages: cached });
    }
}
