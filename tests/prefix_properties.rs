//! Paged-KV / prefix-caching serving properties: with caching **off**
//! the page knobs must change *nothing* (byte-identical reports — the
//! golden pins in `scenario_properties.rs` and
//! `preemption_properties.rs` already pin the default path, this file
//! pins the knob itself), and with caching **on** the shared-prefix
//! acceptance claims of ISSUE 7 must hold: a positive hit rate with a
//! TTFT reduction for the shared tenant, and less wasted prefill than
//! whole-request evict-restart at matched KV pressure. The checked-in
//! `scenarios/cache/shared_prefix.json` spec is round-tripped and run
//! here so `scenario_check` and the declarative format cover the cache
//! path too.

use pimphony::system::{
    PagedKvConfig, PreemptionPolicy, PrefillConfig, RouterKind, Scenario, SchedulingPolicy,
    ServingReport, TenantSpec,
};
use pimphony::workload::{ArrivalProcess, Dataset, DecodeSpec};

const SHARED_PREFIX: u64 = 6144;

/// The `prefix_cache` bench's tiny operating point: a shared-system-
/// prompt `assistant` tenant (priority 0) preempted by bursty
/// `interactive` traffic (priority 1) under a scaled KV pool.
fn shared_prefix_scenario(factor: f64, caching: bool) -> Scenario {
    let mut s = Scenario::new("LLM-7B-32K");
    s.cluster.tp = 2;
    s.cluster.threads = 0;
    s.policies.scheduling = SchedulingPolicy::Continuous;
    s.policies.router = RouterKind::JoinShortestQueue;
    s.policies.preemption = PreemptionPolicy::EvictRestart;
    s.policies.prefill = PrefillConfig::chunked(512);
    s.policies.kv_capacity_factor = factor;
    if caching {
        s.policies.paged_kv = PagedKvConfig::paged(PagedKvConfig::DEFAULT_PAGE_BYTES);
    }
    s.tenant(
        TenantSpec::new("assistant", Dataset::QmSum)
            .requests(24)
            .seed(2026)
            .decode(DecodeSpec::Uniform(16, 96))
            .arrivals(ArrivalProcess::Poisson { rate: 0.06 })
            .slo_ttft_p99(60.0)
            .shared_prefix(SHARED_PREFIX),
    )
    .tenant(
        TenantSpec::new("interactive", Dataset::QmSum)
            .requests(16)
            .seed(2027)
            .decode(DecodeSpec::Uniform(16, 96))
            .arrivals(ArrivalProcess::Bursty {
                rate: 0.04,
                cv: 2.5,
            })
            .priority(1),
    )
}

fn run(s: &Scenario) -> ServingReport {
    s.materialize().expect("scenario materializes").run()
}

/// With `prefix_caching: false` the page-size knob is inert: reports
/// are byte-identical to the default configuration whatever
/// `page_bytes` says, even on a workload that *declares* shared
/// prefixes.
#[test]
fn caching_off_is_bit_identical_whatever_page_bytes_says() {
    let baseline = run(&shared_prefix_scenario(0.35, false));
    let mut odd_pages = shared_prefix_scenario(0.35, false);
    odd_pages.policies.paged_kv = PagedKvConfig {
        prefix_caching: false,
        page_bytes: 123 << 10,
    };
    assert_eq!(run(&odd_pages), baseline);
}

/// The two acceptance claims of ISSUE 7, at the bench's tiny operating
/// point (kv ×0.35): caching on yields a positive hit rate and a lower
/// shared-tenant p99 TTFT, and page-granular eviction wastes fewer
/// prefill tokens than whole-request evict-restart at the same
/// pressure.
#[test]
fn caching_cuts_shared_tenant_ttft_and_eviction_waste() {
    let off = run(&shared_prefix_scenario(0.35, false));
    let on = run(&shared_prefix_scenario(0.35, true));

    assert_eq!(off.prefix_cache_hits, 0, "caching off never hits");
    assert_eq!(off.prefix_hit_tokens, 0);
    assert_eq!(off.pages_evicted, 0);
    assert!(off.evictions > 0, "the operating point provokes eviction");
    assert!(off.wasted_prefill_tokens > 0);

    assert!(on.prefix_cache_hits > 0, "shared prompts hit the cache");
    assert!(on.prefix_hit_tokens > 0);
    assert!(
        on.pages_evicted > 0,
        "pressure reclaims pages instead of whole requests"
    );
    let shared = |r: &ServingReport| r.latency_by_tenant[0].latency.ttft.p99;
    assert!(
        shared(&on) < shared(&off),
        "shared-tenant TTFT p99: {} !< {}",
        shared(&on),
        shared(&off)
    );
    assert!(
        on.wasted_prefill_tokens < off.wasted_prefill_tokens,
        "wasted prefill: {} !< {}",
        on.wasted_prefill_tokens,
        off.wasted_prefill_tokens
    );
    // Same offered work either way: completion counts match.
    assert_eq!(on.latency.completed, off.latency.completed);
}

/// The checked-in cache scenario is canonical: it parses, re-serializes
/// byte-identically (so the file always matches the current format),
/// and exercises the cache (hits > 0, SLO met) when run.
#[test]
fn checked_in_shared_prefix_scenario_round_trips_and_hits() {
    let path = "scenarios/cache/shared_prefix.json";
    let text = std::fs::read_to_string(path).expect("scenario file exists");
    let s = Scenario::parse(&text).expect("parses");
    assert_eq!(
        s.to_pretty(),
        text,
        "{path} must match the serializer's canonical form"
    );
    assert!(s.policies.paged_kv.prefix_caching);
    assert_eq!(s.workload[0].shared_prefix, SHARED_PREFIX);
    let r = run(&s);
    assert!(r.prefix_cache_hits > 0);
    let assistant = &r.latency_by_tenant[0];
    assert!(
        assistant.slo_attainment == 1.0,
        "assistant meets its TTFT SLO with caching on (got {})",
        assistant.slo_attainment
    );
}
