//! Cross-crate integration tests: full serving pipelines and figure-level
//! shape assertions.

use pimphony::llm_model::{LLM_72B_128K_GQA, LLM_7B_128K_GQA, LLM_7B_32K};
use pimphony::pim_compiler::ParallelConfig;
use pimphony::system::{Evaluator, GpuSystem, SystemConfig, Techniques};
use pimphony::workload::{Dataset, TraceBuilder};
use pimphony::OrchestratorBuilder;

fn trace(d: Dataset, n: usize) -> pimphony::workload::Trace {
    TraceBuilder::new(d)
        .seed(77)
        .requests(n)
        .decode_len(16)
        .build()
}

#[test]
fn technique_ladder_improves_throughput_on_both_systems() {
    let t = trace(Dataset::QmSum, 12);
    for sys in [
        SystemConfig::cent_for(&LLM_7B_32K),
        SystemConfig::neupims_for(&LLM_7B_32K),
    ] {
        let mut last = 0.0;
        for tech in Techniques::ladder() {
            let r = Evaluator::new(sys, LLM_7B_32K, tech).run_trace(&t);
            assert!(
                r.tokens_per_second >= last * 0.999,
                "{} regressed",
                tech.label()
            );
            last = r.tokens_per_second;
        }
    }
}

#[test]
fn long_context_gqa_gains_exceed_short_context_gains() {
    // The paper's central claim: PIM inefficiency grows with context, so
    // PIMphony's relative gain is larger on LV-Eval than LongBench.
    let speedup = |model, d| {
        let t = trace(d, 8);
        let sys = SystemConfig::cent_for(&model);
        let b = Evaluator::new(sys, model, Techniques::baseline()).run_trace(&t);
        let p = Evaluator::new(sys, model, Techniques::pimphony()).run_trace(&t);
        p.tokens_per_second / b.tokens_per_second
    };
    let short = speedup(LLM_7B_32K, Dataset::QmSum);
    let long = speedup(LLM_7B_128K_GQA, Dataset::MultiFieldQa);
    assert!(long > short, "long {long:.2} vs short {short:.2}");
    assert!(long > 2.0, "long-context speedup {long:.2} too small");
}

#[test]
fn bigger_models_gain_more() {
    // Compare best (TP, PP) per configuration, as the paper's figures do.
    let t = trace(Dataset::MultiFieldQa, 8);
    let best = |model, tech| {
        let sys = SystemConfig::cent_for(&model);
        ParallelConfig::factorizations(sys.modules)
            .into_iter()
            .map(|p| {
                Evaluator::new(sys.with_parallel(p), model, tech)
                    .run_trace(&t)
                    .tokens_per_second
            })
            .fold(0.0f64, f64::max)
    };
    let speedup = |model| best(model, Techniques::pimphony()) / best(model, Techniques::baseline());
    assert!(speedup(LLM_72B_128K_GQA) > speedup(LLM_7B_128K_GQA));
}

#[test]
fn dpa_capacity_utilization_beats_static() {
    let t = trace(Dataset::LoogleSd, 24);
    let sys = SystemConfig::cent_for(&LLM_7B_128K_GQA);
    let s = Evaluator::new(sys, LLM_7B_128K_GQA, Techniques::tcp_dcs()).run_trace(&t);
    let d = Evaluator::new(sys, LLM_7B_128K_GQA, Techniques::pimphony()).run_trace(&t);
    assert!(d.capacity_utilization > s.capacity_utilization + 0.25);
}

#[test]
fn every_factorization_serves_all_tokens() {
    let t = trace(Dataset::QmSum, 8);
    for p in ParallelConfig::factorizations(8) {
        let sys = SystemConfig::cent_for(&LLM_7B_32K).with_parallel(p);
        let r = Evaluator::new(sys, LLM_7B_32K, Techniques::pimphony()).run_trace(&t);
        assert_eq!(r.tokens, t.total_decode_tokens(), "{p}");
        assert!(r.tokens_per_second > 0.0, "{p}");
    }
}

#[test]
fn orchestrator_matches_raw_evaluator() {
    let t = trace(Dataset::QmSum, 6);
    let o = OrchestratorBuilder::new(LLM_7B_32K)
        .pim_only()
        .full_pimphony()
        .build();
    let e = Evaluator::new(
        SystemConfig::cent_for(&LLM_7B_32K),
        LLM_7B_32K,
        Techniques::pimphony(),
    );
    let a = o.serve(&t);
    let b = e.run_trace(&t);
    assert_eq!(a.tokens, b.tokens);
    assert!((a.tokens_per_second - b.tokens_per_second).abs() < 1e-9);
}

#[test]
fn pim_beats_gpu_on_memory_bound_workloads() {
    let t = trace(Dataset::QmSum, 12);
    let gpu = GpuSystem::matched_for(&LLM_7B_32K).throughput(&LLM_7B_32K, &t);
    let sys = SystemConfig::cent_for(&LLM_7B_32K);
    let pim = Evaluator::new(sys, LLM_7B_32K, Techniques::pimphony()).run_trace(&t);
    assert!(
        pim.tokens_per_second > gpu,
        "PIM {} vs GPU {gpu}",
        pim.tokens_per_second
    );
}

#[test]
fn energy_drops_with_pimphony() {
    let t = trace(Dataset::MultiFieldQa, 8);
    let sys = SystemConfig::cent_for(&LLM_7B_128K_GQA);
    let b = Evaluator::new(sys, LLM_7B_128K_GQA, Techniques::baseline()).run_trace(&t);
    let p = Evaluator::new(sys, LLM_7B_128K_GQA, Techniques::pimphony()).run_trace(&t);
    assert!(p.energy.total() < b.energy.total());
    assert!(p.energy.background_fraction() < b.energy.background_fraction());
}
