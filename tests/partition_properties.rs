//! Property-based tests for partitioning, lowering and workload
//! generation invariants.

use pimphony::pim_compiler::lower::{
    dpa_footprint, lower_attention_dpa, lower_attention_static, static_footprint, AttentionLowering,
};
use pimphony::pim_compiler::{ModulePartition, Partitioning};
use pimphony::workload::{DatasetStats, TraceBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TCP covers every token of every (request, head) exactly once and
    /// never loses work relative to HFP.
    #[test]
    fn tcp_covers_exactly_once(
        lengths in prop::collection::vec(1u64..50_000, 1..6),
        channels in 1u32..33,
        heads in 1u32..9,
    ) {
        let reqs: Vec<(u64, u64)> =
            lengths.iter().enumerate().map(|(i, &l)| (i as u64, l)).collect();
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, channels, heads, &reqs);
        let hfp = ModulePartition::assign(Partitioning::HeadFirst, channels, heads, &reqs);
        prop_assert_eq!(tcp.total_tokens(), hfp.total_tokens());
        // Exactly-once coverage for a sampled (request, head).
        let (rid, len) = reqs[0];
        let mut covered = vec![0u32; len as usize];
        for ch in tcp.channels() {
            for s in ch.slices.iter().filter(|s| s.request == rid && s.kv_head == 0) {
                for t in s.token_start..s.token_end {
                    covered[t as usize] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// TCP's makespan never exceeds HFP's, and TCP's balance never falls
    /// below HFP's.
    #[test]
    fn tcp_dominates_hfp(
        lengths in prop::collection::vec(1u64..100_000, 1..8),
        heads in 1u32..9,
    ) {
        let reqs: Vec<(u64, u64)> =
            lengths.iter().enumerate().map(|(i, &l)| (i as u64, l)).collect();
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, 16, heads, &reqs);
        let hfp = ModulePartition::assign(Partitioning::HeadFirst, 16, heads, &reqs);
        prop_assert!(tcp.makespan_tokens() <= hfp.makespan_tokens());
        prop_assert!(tcp.balance() + 1e-9 >= hfp.balance());
    }

    /// The DPA lowering expands to exactly the statically compiled stream
    /// length for any context, and its stored footprint stays constant.
    #[test]
    fn dpa_lowering_equivalence(t in 1u64..2_000_000) {
        let shape = AttentionLowering::aimx_default();
        let dpa = lower_attention_dpa(&shape).expand(t);
        let stat = lower_attention_static(&shape, t);
        prop_assert_eq!(dpa.len(), stat.len());
        prop_assert_eq!(dpa_footprint(&shape).bytes, dpa_footprint(&shape).bytes);
        prop_assert!(dpa_footprint(&shape).bytes <= static_footprint(&shape, t).bytes);
    }

    /// Generated traces always respect their dataset's bounds and are
    /// deterministic in the seed.
    #[test]
    fn traces_respect_bounds(seed in 0u64..500, mean in 1_000f64..100_000f64) {
        let stats = DatasetStats {
            name: "prop",
            suite: "prop",
            mean,
            std: mean * 0.3,
            max: (mean * 3.0) as u64,
            min: (mean * 0.2) as u64,
        };
        let t1 = TraceBuilder::from_stats(stats).seed(seed).requests(64).build();
        let t2 = TraceBuilder::from_stats(stats).seed(seed).requests(64).build();
        prop_assert_eq!(&t1, &t2);
        let (min, max) = t1.context_range().expect("nonempty");
        prop_assert!(min >= stats.min && max <= stats.max);
    }
}
