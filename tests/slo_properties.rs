//! SLO-native serving properties: the predictor, admission control, and
//! the checked-in `scenarios/slo/` specs.
//!
//! The [`pimphony::system::TtftPredictor`] is the single estimate shared
//! by the `SloAware` router and the `SheddingPolicy::Reject` admission
//! gate, so its contract is load-bearing twice over: (1) predicted
//! slack must be monotone in the replica's pending prefill backlog —
//! otherwise power-of-two-choices sampling could prefer the *more*
//! backlogged replica — and (2) the prediction must lower-bound the
//! realized TTFT — otherwise shedding would drop requests that could
//! still have met their deadline. The lower bound holds by
//! construction: the per-token rate is calibrated on the first prefill
//! chunk at position zero, the cheapest point of the chunked-prefill
//! cost curve, and the queueing term counts only work strictly ahead of
//! the candidate.

use pimphony::system::{
    ClusterSpec, PolicySpec, PreemptionPolicy, PrefillConfig, RouterKind, Scenario,
    SchedulingPolicy, ServingReport, SheddingPolicy, TenantSpec, TtftPredictor, VictimOrder,
};
use pimphony::workload::{ArrivalProcess, Dataset, DecodeSpec};

const PREFILL_CHUNK: u64 = 512;
/// The interactive tenant's TTFT target, matching `scenarios/slo/`.
const SLO_TTFT: f64 = 60.0;

/// The two-tenant SLO scenario shape at a given offered rate: one
/// interactive tenant with a TTFT deadline, one batch tenant without.
fn slo_scenario(requests: usize, rate: f64, shedding: SheddingPolicy) -> Scenario {
    let mut s = Scenario::new("LLM-7B-32K");
    s.cluster = ClusterSpec {
        tp: 2,
        pp: 1,
        modules: 0,
        threads: 0,
        pools: Vec::new(),
    };
    s.policies = PolicySpec {
        scheduling: SchedulingPolicy::Continuous,
        router: RouterKind::SloAware,
        prefill: PrefillConfig::chunked(PREFILL_CHUNK),
        shedding,
        ..PolicySpec::default()
    };
    s.tenant(
        TenantSpec::new("interactive", Dataset::QmSum)
            .requests(requests)
            .seed(2026)
            .decode(DecodeSpec::Uniform(16, 96))
            .arrivals(ArrivalProcess::Bursty { rate, cv: 2.5 })
            .priority(1)
            .slo_ttft_p99(SLO_TTFT),
    )
    .tenant(
        TenantSpec::new("batch", Dataset::QmSum)
            .requests(requests)
            .seed(2027)
            .decode(DecodeSpec::Uniform(16, 96))
            .arrivals(ArrivalProcess::Poisson { rate })
            .priority(0),
    )
}

/// Predicted TTFT slack is strictly monotone (decreasing) in the
/// pending-prefill token count whenever the calibrated rate is
/// positive, and monotone in the waited time at any rate — the ordering
/// the `SloAware` router's power-of-two-choices comparison relies on.
#[test]
fn predicted_slack_is_monotone_in_pending_prefill() {
    let p = TtftPredictor::with_rate(3.5e-3);
    let mut last = f64::INFINITY;
    for tokens in [0u64, 1, 100, 512, 4096, 100_000] {
        let slack = p.slack(SLO_TTFT, 0.25, tokens);
        assert!(
            slack < last,
            "slack must strictly decrease with backlog: {slack} !< {last}"
        );
        last = slack;
    }
    // More waiting can only reduce slack, token count held fixed.
    assert!(p.slack(SLO_TTFT, 1.0, 512) < p.slack(SLO_TTFT, 0.5, 512));
    // A zero rate (prefill disabled) degenerates to waited-only slack.
    let z = TtftPredictor::with_rate(0.0);
    assert_eq!(z.slack(SLO_TTFT, 2.0, 1_000_000), SLO_TTFT - 2.0);
    // Negative rates are clamped at construction.
    assert_eq!(
        TtftPredictor::with_rate(-1.0).predict(1.0, 1000),
        1.0,
        "negative calibration must clamp to zero rate"
    );
}

/// On a seeded single-replica trace (TP spans all 8 modules) the
/// predictor's position-zero bound brackets the realized TTFT: it never
/// exceeds it (the shedding-soundness direction) and stays within a
/// small constant factor (the usefulness direction — a bound loose
/// enough to be meaningless would make the router's slack comparisons
/// vacuous).
#[test]
fn predictor_brackets_realized_ttft_on_single_replica_trace() {
    let mut s = Scenario::new("LLM-7B-32K");
    s.cluster = ClusterSpec {
        tp: 8,
        pp: 1,
        modules: 0,
        threads: 1,
        pools: Vec::new(),
    };
    s.policies = PolicySpec {
        scheduling: SchedulingPolicy::Continuous,
        prefill: PrefillConfig::chunked(PREFILL_CHUNK),
        ..PolicySpec::default()
    };
    let s = s.tenant(
        TenantSpec::new("solo", Dataset::QmSum)
            .requests(1)
            .seed(11)
            .decode(DecodeSpec::Fixed(16)),
    );
    let m = s.materialize().expect("materialize");
    assert_eq!(m.evaluator.system().replicas(), 1, "single-replica setup");
    let predictor = m.evaluator.ttft_predictor();
    let tokens = m.trace.requests()[0].context_len;
    let r = m.run();
    // One request: every TTFT percentile is that request's TTFT. It
    // arrives at t=0 on an idle replica, so waited = 0.
    let realized = r.latency.ttft.p50;
    let predicted = predictor.predict(0.0, tokens);
    assert!(predicted > 0.0, "calibration must observe a nonzero rate");
    assert!(
        predicted <= realized,
        "prediction must lower-bound realized TTFT: {predicted} > {realized}"
    );
    assert!(
        realized <= 8.0 * predicted,
        "prediction must stay within a bounded factor: {realized} vs {predicted}"
    );
}

/// Shedding never fires when capacity is ample: at a trickle of the
/// measured ~0.18 req/s capacity every request meets its SLO, so the
/// armed `Reject` gate must stay cold (`shed == 0`) and the whole
/// report must be byte-identical to the unarmed run — the
/// armed-but-unprovoked invariant the preemption layer already obeys.
#[test]
fn shedding_never_fires_under_ample_capacity() {
    let armed = slo_scenario(8, 0.01, SheddingPolicy::Reject)
        .materialize()
        .expect("materialize armed")
        .run();
    assert_eq!(armed.shed, 0, "ample capacity must never shed");
    assert_eq!(
        armed.latency.completed, 16,
        "every request completes when nothing sheds"
    );
    let unarmed = slo_scenario(8, 0.01, SheddingPolicy::None)
        .materialize()
        .expect("materialize unarmed")
        .run();
    assert_eq!(
        armed, unarmed,
        "armed-but-unprovoked must coincide with None"
    );
    // Everything met its deadline, so goodput equals throughput.
    assert_eq!(armed.goodput(), armed.tokens_per_second);
}

/// Past saturation the same gate does fire, every shed request is
/// accounted for (completed + shed covers the interactive tenant's
/// offered load), and goodput stays below throughput.
#[test]
fn shedding_fires_and_is_conserved_under_overload() {
    let r = slo_scenario(12, 0.2, SheddingPolicy::Reject)
        .materialize()
        .expect("materialize")
        .run();
    assert!(r.shed > 0, "overload at ~2.2x capacity must shed");
    assert_eq!(
        r.latency.completed + r.shed,
        24,
        "every request either completes or is counted shed"
    );
    // Shed requests serve zero tokens, so they depress goodput, never
    // raise it.
    assert!(r.goodput() <= r.tokens_per_second);
    // Only the tenant with a deadline can be shed: the batch tenant has
    // no SLO, so its 12 requests all complete.
    let batch = r
        .latency_by_tenant
        .iter()
        .find(|t| t.tenant == 1)
        .expect("batch tenant");
    assert_eq!(batch.latency.completed, 12, "no-SLO tenants are never shed");
}

/// The SLO-native knobs preserve thread-count determinism: the
/// `SloAware` router's sampling runs on the coordinator in arrival
/// order, so 1, 2, and 8 worker threads must produce byte-identical
/// reports even with shedding and slack-first eviction armed.
#[test]
fn slo_native_run_is_thread_deterministic() {
    let mut s = slo_scenario(10, 0.1, SheddingPolicy::Reject);
    s.policies.preemption = PreemptionPolicy::EvictPause;
    s.policies.victim_order = VictimOrder::SlackFirst;
    s.policies.kv_capacity_factor = 0.5;
    let runs: Vec<ServingReport> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            s.cluster.threads = threads;
            s.materialize().expect("materialize").run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

/// The checked-in `scenarios/slo/*.json` specs parse, are canonical
/// (byte-identical to their own re-serialization), and actually
/// exercise the machinery they document: the SLO-aware router, a live
/// admission gate, and slack-first eviction under pressure.
#[test]
fn checked_in_slo_scenarios_are_canonical_and_exercise_the_knobs() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/slo");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/slo/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "expected checked-in SLO specs");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let scenario = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            scenario.to_pretty(),
            text,
            "{}: spec must be canonical (run scenario_check --canonicalize)",
            path.display()
        );
        assert_eq!(scenario.policies.router, RouterKind::SloAware);
        assert_eq!(scenario.policies.shedding, SheddingPolicy::Reject);
        assert_eq!(scenario.policies.victim_order, VictimOrder::SlackFirst);
        let m = scenario
            .materialize()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let r = m.run();
        assert!(r.shed > 0, "{}: spec must provoke shedding", path.display());
        assert!(
            r.evictions > 0,
            "{}: spec must provoke slack-first eviction",
            path.display()
        );
        assert!(
            r.goodput() > 0.0 && r.goodput() <= r.tokens_per_second,
            "{}: goodput must be positive and below throughput",
            path.display()
        );
    }
}
