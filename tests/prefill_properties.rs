//! Prefill lifecycle properties: with prompt processing modeled, TTFT
//! covers arrival → first emitted token end-to-end. These tests pin the
//! measurement model — dominance over the decode-only convention,
//! decomposition bounds, prompt-length monotonicity, work conservation,
//! thread-count determinism, and a golden pin of the corrected
//! router-comparison numbers.

use pimphony::pim_compiler::ParallelConfig;
use pimphony::system::{
    Cluster, Evaluator, PrefillConfig, RouterKind, SchedulingPolicy, SystemConfig, Techniques,
};
use pimphony::workload::{Dataset, Trace, TraceBuilder};

const PREFILL_CHUNK: u64 = PrefillConfig::DEFAULT_CHUNK;

/// 4 replicas behind one cluster front-end (TP=2 over 8 modules), with
/// chunked prefill enabled.
fn prefill_eval() -> Evaluator {
    decode_eval().with_chunked_prefill(PREFILL_CHUNK)
}

/// The same cluster without prefill (the historical decode-only model).
fn decode_eval() -> Evaluator {
    let sys = SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K)
        .with_parallel(ParallelConfig::new(2, 1));
    Evaluator::new(sys, pimphony::llm_model::LLM_7B_32K, Techniques::pimphony())
}

/// The seeded bursty-gamma trace of the router-comparison experiment.
fn bursty_trace(seed: u64) -> Trace {
    TraceBuilder::new(Dataset::QmSum)
        .seed(seed)
        .requests(160)
        .decode_range(16, 96)
        .bursty(16.0, 2.5)
        .build()
}

fn run(
    eval: &Evaluator,
    trace: &Trace,
    kind: RouterKind,
    threads: usize,
) -> pimphony::system::ServingReport {
    Cluster::new(eval, SchedulingPolicy::Continuous)
        .with_threads(threads)
        .run(trace, kind.build().as_mut())
}

/// The headline acceptance property: on the seeded bursty-gamma trace,
/// end-to-end TTFT strictly dominates decode-only TTFT at every
/// reported statistic — prompt processing can only add latency, and on
/// PIM-only hardware it adds a lot.
#[test]
fn ttft_strictly_dominates_decode_only_on_seeded_bursty_trace() {
    let trace = bursty_trace(2026);
    let decode = run(&decode_eval(), &trace, RouterKind::RoundRobin, 4);
    let e2e = run(&prefill_eval(), &trace, RouterKind::RoundRobin, 4);
    // Identical decode work either way; prefill only adds prompt work.
    assert_eq!(decode.tokens, e2e.tokens);
    assert_eq!(decode.latency.completed, e2e.latency.completed);
    assert_eq!(decode.prefill_tokens, 0);
    assert!(e2e.prefill_tokens > 0);
    for (name, d, e) in [
        ("mean", decode.latency.ttft.mean, e2e.latency.ttft.mean),
        ("p50", decode.latency.ttft.p50, e2e.latency.ttft.p50),
        ("p95", decode.latency.ttft.p95, e2e.latency.ttft.p95),
        ("p99", decode.latency.ttft.p99, e2e.latency.ttft.p99),
        ("max", decode.latency.ttft.max, e2e.latency.ttft.max),
    ] {
        assert!(e > d, "ttft {name}: end-to-end {e} !> decode-only {d}");
    }
}

/// TTFT decomposes as queueing + prefill + first decode step, so its
/// mean must dominate the queueing and prefill means combined, and the
/// prefill delay can never undercut the isolated prefill time of the
/// trace's smallest prompt.
#[test]
fn ttft_bounds_queueing_plus_minimum_prefill() {
    let eval = prefill_eval();
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(7)
        .requests(24)
        .decode_range(8, 48)
        .poisson(0.2)
        .build();
    let r = run(&eval, &trace, RouterKind::JoinShortestQueue, 2);
    let l = &r.latency;
    assert_eq!(l.completed, trace.len() as u64);
    assert!(
        l.ttft.mean >= l.queueing.mean + l.prefill.mean - 1e-9,
        "ttft mean {} < queueing {} + prefill {}",
        l.ttft.mean,
        l.queueing.mean,
        l.prefill.mean
    );
    let min_prompt = trace.iter().map(|r| r.context_len).min().unwrap();
    let floor = eval.prefill_time(min_prompt);
    assert!(floor > 0.0);
    // Every request's prefill delay covers at least its own isolated
    // prefill, so even the distribution's cheapest sample is bounded.
    assert!(
        l.prefill.p50 >= floor && l.prefill.mean >= floor,
        "prefill p50 {} / mean {} below isolated floor {floor}",
        l.prefill.p50,
        l.prefill.mean
    );
}

/// Doubling every prompt strictly raises every TTFT statistic: the
/// prefill stage is monotone in prompt length (hand-built trace so the
/// comparison is exact, not distribution-sampled).
#[test]
fn ttft_is_monotone_in_prompt_length() {
    let mk_trace = |context_len: u64| -> Trace {
        (0..12u64)
            .map(|id| pimphony::workload::Request {
                id,
                context_len,
                decode_len: 16,
                arrival_us: id * 1_000_000,
                priority: 0,
                tenant: 0,
                shared_prefix: 0,
            })
            .collect()
    };
    let eval = prefill_eval();
    let short = run(&eval, &mk_trace(2_000), RouterKind::RoundRobin, 1);
    let long = run(&eval, &mk_trace(4_000), RouterKind::RoundRobin, 1);
    for (name, s, l) in [
        ("mean", short.latency.ttft.mean, long.latency.ttft.mean),
        ("p50", short.latency.ttft.p50, long.latency.ttft.p50),
        ("p99", short.latency.ttft.p99, long.latency.ttft.p99),
        ("max", short.latency.ttft.max, long.latency.ttft.max),
    ] {
        assert!(l > s, "ttft {name}: 4K prompt {l} !> 2K prompt {s}");
    }
    // Prefill work scales with the prompt (superlinearly, but at these
    // lengths at least linearly).
    assert!(long.prefill_seconds > 1.9 * short.prefill_seconds);
}

/// Work conservation with prefill: every prompt token is prefilled
/// exactly once, every decode token produced exactly once, under both
/// policies.
#[test]
fn prefill_conserves_prompt_and_decode_work() {
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(11)
        .requests(20)
        .decode_range(4, 40)
        .poisson(5.0)
        .build();
    let total_prompt = trace.total_prompt_tokens();
    for policy in [SchedulingPolicy::Wave, SchedulingPolicy::Continuous] {
        let eval = prefill_eval().with_policy(policy);
        let r = eval.run_trace(&trace);
        assert_eq!(r.prefill_tokens, total_prompt, "{policy}");
        assert_eq!(r.tokens, trace.total_decode_tokens(), "{policy}");
        assert_eq!(r.latency.completed, trace.len() as u64, "{policy}");
        assert!(r.prefill_seconds > 0.0, "{policy}");
        // Prefill time is busy time: the replicas' busy seconds carry
        // both phases.
        assert!(r.busy_seconds > r.prefill_seconds, "{policy}");
    }
}

/// The wave policy prefills the whole admitted batch before its first
/// decode step, so every latency inflates versus decode-only waves
/// while the decode work stays identical.
#[test]
fn wave_prefill_precedes_whole_batch_decode() {
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(3)
        .requests(12)
        .decode_len(32)
        .build();
    let decode = decode_eval().run_trace(&trace);
    let e2e = prefill_eval().run_trace(&trace);
    assert_eq!(decode.tokens, e2e.tokens);
    assert!(e2e.seconds > decode.seconds);
    assert!(e2e.latency.ttft.p50 > decode.latency.ttft.p50);
    assert!(e2e.latency.prefill.p50 > 0.0);
    // Decode-only reports carry no prefill side.
    assert_eq!(decode.prefill_seconds, 0.0);
    assert_eq!(decode.latency.prefill.max, 0.0);
}

/// The cluster determinism guarantee must survive the prefill stage:
/// threads = N byte-identical to threads = 1 for every router, with
/// mixed prefill/decode steps deferring at the routing frontier.
#[test]
fn parallel_and_sequential_runs_are_byte_identical_with_prefill() {
    let eval = prefill_eval();
    let trace = bursty_trace(2026);
    for kind in RouterKind::ALL {
        let sequential = run(&eval, &trace, kind, 1);
        for threads in [2, 4, 8] {
            let parallel = run(&eval, &trace, kind, threads);
            assert_eq!(sequential, parallel, "{kind} with {threads} threads");
        }
        assert_eq!(sequential.latency.completed, trace.len() as u64, "{kind}");
    }
}

/// Golden pin of the corrected (prefill-inclusive) router-comparison
/// numbers on the seeded bursty-gamma trace — the continuous+prefill
/// path has no live oracle, so this guards against silent behavioral
/// drift. Tolerances ride out libm differences in the trace generator's
/// transcendentals only.
#[test]
fn prefill_router_comparison_golden_pin() {
    let r = run(
        &prefill_eval(),
        &bursty_trace(2026),
        RouterKind::RoundRobin,
        4,
    );
    assert_eq!(r.tokens, 9029);
    assert_eq!(r.prefill_tokens, 2_267_996);
    assert_eq!(r.waves, 126);
    let close = |got: f64, want: f64, what: &str| {
        assert!(
            (got - want).abs() <= want.abs() * 1e-9,
            "{what}: {got} vs pinned {want}"
        );
    };
    close(r.seconds, 9.43426016223212e2, "seconds");
    close(r.prefill_seconds, 3.4628426859967562e3, "prefill_seconds");
    close(r.latency.ttft.p50, 4.347299316554882e2, "ttft p50");
    close(r.latency.ttft.p99, 9.051567532731457e2, "ttft p99");
    close(r.latency.queueing.p99, 8.869406916652177e2, "queueing p99");
    close(r.latency.prefill.p50, 2.9055406365194273e1, "prefill p50");
    close(r.latency.e2e.p95, 8.372588159728963e2, "e2e p95");
}
