//! Scenario-spec properties: the declarative `system::scenario` layer
//! must be pure structure — (1) JSON round-trips are identities all the
//! way down to the `ServingReport` bytes, (2) a one-tenant scenario
//! with priority 0 and unchanged knobs is byte-identical to the
//! hand-assembled `TraceBuilder` + `Evaluator` path it replaced (the
//! wave, continuous, prefill, and preemption golden-pin
//! configurations), and (3) the checked-in `scenarios/*.json` parse,
//! materialize, and report per-tenant SLO attainment end-to-end.

use pimphony::pim_compiler::ParallelConfig;
use pimphony::system::{
    Cluster, Evaluator, PreemptionPolicy, RouterKind, Scenario, SchedulingPolicy, ServingReport,
    SystemConfig, Techniques, TenantSpec,
};
use pimphony::workload::{ArrivalProcess, Dataset, DecodeSpec, Trace, TraceBuilder};

const PREFILL_CHUNK: u64 = 512;

/// The hand-assembled path a spec must reproduce: 4 replicas (TP=2
/// over 8 modules) behind one cluster front-end.
fn base_eval() -> Evaluator {
    let sys = SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K)
        .with_parallel(ParallelConfig::new(2, 1));
    Evaluator::new(sys, pimphony::llm_model::LLM_7B_32K, Techniques::pimphony())
}

/// The PR 3/PR 4 golden-pin trace: 160 bursty requests, decode
/// U[16,96], seed 2026.
fn pinned_trace() -> Trace {
    TraceBuilder::new(Dataset::QmSum)
        .seed(2026)
        .requests(160)
        .decode_range(16, 96)
        .bursty(16.0, 2.5)
        .build()
}

/// The one-tenant spec describing exactly that trace and cluster.
fn pinned_scenario() -> Scenario {
    let mut s = Scenario::new("LLM-7B-32K");
    s.cluster.tp = 2;
    s.cluster.threads = 4;
    s.policies.scheduling = SchedulingPolicy::Continuous;
    s.tenant(
        TenantSpec::new("bursty-open-loop", Dataset::QmSum)
            .requests(160)
            .seed(2026)
            .decode(DecodeSpec::Uniform(16, 96))
            .arrivals(ArrivalProcess::Bursty {
                rate: 16.0,
                cv: 2.5,
            }),
    )
}

fn direct_run(eval: &Evaluator, trace: &Trace, kind: RouterKind, threads: usize) -> ServingReport {
    Cluster::new(eval, eval.scheduling_policy())
        .with_threads(threads)
        .run(trace, kind.build().as_mut())
}

/// One-tenant scenario traces are bit-identical to plain builder
/// traces: same ids, arrivals, contexts, decode budgets — the tenant
/// tag is the only (zero-valued) difference, and `Trace` equality
/// covers it.
#[test]
fn one_tenant_scenario_trace_is_bit_exact_with_trace_builder() {
    let m = pinned_scenario().materialize().expect("materialize");
    assert_eq!(m.trace, pinned_trace());
}

/// Continuous golden pin (PR 3/PR 4): the spec path must reproduce the
/// pinned numbers byte-for-byte, and the whole `ServingReport` must
/// equal the hand-assembled path's.
#[test]
fn continuous_golden_pin_through_scenario() {
    let m = pinned_scenario().materialize().expect("materialize");
    let r = m.run();
    let direct = direct_run(
        &base_eval().with_policy(SchedulingPolicy::Continuous),
        &pinned_trace(),
        RouterKind::RoundRobin,
        4,
    );
    assert_eq!(r, direct, "spec path must be byte-identical");
    // The PR 4 pinned values, re-asserted through the spec path.
    assert_eq!(r.tokens, 9029);
    assert_eq!(r.waves, 155);
    let close = |got: f64, want: f64, what: &str| {
        assert!(
            (got - want).abs() <= want.abs() * 1e-9,
            "{what}: {got} vs pinned {want}"
        );
    };
    close(
        r.tokens_per_second,
        8.431546858351828e2,
        "tokens_per_second",
    );
    close(r.latency.ttft.p99, 2.8818125257142846e-1, "ttft p99");
    // The single-tenant breakdown mirrors the aggregate.
    assert_eq!(r.latency_by_tenant.len(), 1);
    assert_eq!(r.latency_by_tenant[0].tenant, 0);
    assert_eq!(r.latency_by_tenant[0].latency, r.latency);
    assert_eq!(r.latency_by_tenant[0].tokens, r.tokens);
}

/// Wave golden pin: a closed-world one-tenant spec equals the
/// hand-assembled wave path byte-for-byte (which itself is pinned
/// against the pre-engine reference loop by `engine_properties`).
#[test]
fn wave_golden_pin_through_scenario() {
    let s = Scenario::new("LLM-7B-32K").tenant(
        TenantSpec::new("closed-world", Dataset::QmSum)
            .requests(12)
            .seed(3)
            .decode(DecodeSpec::Fixed(32)),
    );
    let r = s.materialize().expect("materialize").run();
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(3)
        .requests(12)
        .decode_len(32)
        .build();
    let eval = Evaluator::new(
        SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K),
        pimphony::llm_model::LLM_7B_32K,
        Techniques::pimphony(),
    );
    assert_eq!(r, direct_run(&eval, &trace, RouterKind::RoundRobin, 1));
    assert_eq!(r.tokens, trace.total_decode_tokens());
}

/// Prefill golden configuration: chunked prefill through the spec path
/// equals the hand-assembled `with_chunked_prefill` path byte-for-byte.
#[test]
fn prefill_configuration_through_scenario() {
    let mut s = pinned_scenario();
    s.policies.prefill = pimphony::system::PrefillConfig::chunked(PREFILL_CHUNK);
    s.policies.router = RouterKind::LeastPrefill;
    s.workload[0].requests = 32;
    let r = s.materialize().expect("materialize").run();
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(2026)
        .requests(32)
        .decode_range(16, 96)
        .bursty(16.0, 2.5)
        .build();
    let eval = base_eval()
        .with_policy(SchedulingPolicy::Continuous)
        .with_chunked_prefill(PREFILL_CHUNK);
    let direct = direct_run(&eval, &trace, RouterKind::LeastPrefill, 4);
    assert_eq!(r, direct);
    assert!(r.prefill_tokens > 0);
}

/// Preemption golden configuration: a one-tenant priority-0 spec with
/// an eviction policy armed and the KV pool halved must (a) equal the
/// hand-assembled path byte-for-byte and (b) never evict — uniform
/// priorities make every preemption policy coincide with `None`, the
/// PR 4 invariant, now holding through the spec layer too.
#[test]
fn preemption_configuration_through_scenario_never_evicts_single_tenant() {
    let mut s = pinned_scenario();
    s.policies.preemption = PreemptionPolicy::EvictPause;
    s.policies.kv_capacity_factor = 0.5;
    s.policies.prefill = pimphony::system::PrefillConfig::chunked(PREFILL_CHUNK);
    s.policies.router = RouterKind::JoinShortestQueue;
    s.workload[0].requests = 48;
    s.workload[0].arrivals = ArrivalProcess::Bursty { rate: 1.0, cv: 2.5 };
    s.workload[0].seed = 7;
    let r = s.materialize().expect("materialize").run();
    let trace = TraceBuilder::new(Dataset::QmSum)
        .seed(7)
        .requests(48)
        .decode_range(16, 96)
        .bursty(1.0, 2.5)
        .build();
    let mk = |policy| {
        base_eval()
            .with_policy(SchedulingPolicy::Continuous)
            .with_chunked_prefill(PREFILL_CHUNK)
            .with_kv_capacity_factor(0.5)
            .with_preemption(policy)
    };
    let direct = direct_run(
        &mk(PreemptionPolicy::EvictPause),
        &trace,
        RouterKind::JoinShortestQueue,
        4,
    );
    assert_eq!(r, direct);
    assert_eq!(r.evictions, 0, "uniform priority must never evict");
    let none = direct_run(
        &mk(PreemptionPolicy::None),
        &trace,
        RouterKind::JoinShortestQueue,
        4,
    );
    assert_eq!(r, none, "armed-but-unprovoked must coincide with None");
}

/// Serialize → parse → materialize → run must produce byte-identical
/// reports to the in-memory spec (the full satellite round trip).
#[test]
fn json_round_trip_preserves_the_serving_report() {
    let mut s = pinned_scenario();
    s.workload[0].requests = 24;
    s.policies.router = RouterKind::JoinShortestQueue;
    s.workload[0].slo_ttft_p99 = Some(0.5);
    let text = s.to_pretty();
    let back = Scenario::parse(&text).expect("parse back");
    assert_eq!(back, s);
    let r1 = s.materialize().expect("materialize original").run();
    let r2 = back.materialize().expect("materialize round-trip").run();
    assert_eq!(r1, r2);
    assert_eq!(back.to_pretty(), text, "deterministic serialization");
}

/// Thread-count invariance extends to multi-tenant scenario runs.
#[test]
fn multi_tenant_scenario_is_thread_deterministic() {
    let mut s = pinned_scenario();
    s.policies.router = RouterKind::JoinShortestQueue;
    s.workload[0].requests = 16;
    s.workload[0].priority = 1;
    s.workload[0].slo_ttft_p99 = Some(30.0);
    let mut s = s.tenant(
        TenantSpec::new("batch", Dataset::Musique)
            .requests(12)
            .seed(9)
            .decode(DecodeSpec::Uniform(8, 48))
            .arrivals(ArrivalProcess::Poisson { rate: 2.0 }),
    );
    let runs: Vec<ServingReport> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            s.cluster.threads = threads;
            s.materialize().expect("materialize").run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
    assert_eq!(runs[0].latency_by_tenant.len(), 2);
    // Conservation per tenant: every request completes for its owner.
    assert_eq!(runs[0].latency_by_tenant[0].latency.completed, 16);
    assert_eq!(runs[0].latency_by_tenant[1].latency.completed, 12);
}

/// Every checked-in `scenarios/*.json` must parse, materialize, run,
/// and report per-tenant statistics — the same contract CI's
/// `scenario_check` step enforces, kept test-local so `cargo test`
/// alone catches a drifting spec.
#[test]
fn checked_in_scenarios_parse_materialize_and_run() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 3, "expected the checked-in example specs");
    let mut saw_multi_tenant = false;
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let scenario = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let m = scenario
            .materialize()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let r = m.run();
        assert!(r.latency.completed > 0, "{}", path.display());
        assert_eq!(
            r.latency_by_tenant.len(),
            scenario.workload.len(),
            "{}",
            path.display()
        );
        for t in &r.latency_by_tenant {
            assert!(
                (0.0..=1.0).contains(&t.slo_attainment),
                "{}",
                path.display()
            );
        }
        let f = r.tenant_fairness();
        assert!(f > 0.0 && f <= 1.0, "{}: fairness {f}", path.display());
        if scenario.workload.len() >= 2 {
            saw_multi_tenant = true;
            // The multi-tenant example must exercise the SLO machinery:
            // at least one tenant with a target, and under its eviction
            // policy the spec provokes real preemptions.
            assert!(scenario.workload.iter().any(|t| t.slo_ttft_p99.is_some()));
            assert!(r.evictions > 0, "{}: expected evictions", path.display());
        }
    }
    assert!(saw_multi_tenant, "a multi-tenant example spec is required");
}
