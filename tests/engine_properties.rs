//! Property tests for the event-driven serving engine: wave fidelity
//! against the original monolithic loop, continuous-batching dominance
//! under steady load, and latency-percentile sanity.

use pimphony::system::{Evaluator, SchedulingPolicy, SystemConfig, Techniques};
use pimphony::workload::{Dataset, TraceBuilder};
use proptest::prelude::*;

fn cent_eval(techniques: Techniques) -> Evaluator {
    Evaluator::new(
        SystemConfig::cent_for(&pimphony::llm_model::LLM_7B_32K),
        pimphony::llm_model::LLM_7B_32K,
        techniques,
    )
}

/// The engine's wave policy must reproduce the original wave loop's
/// report *exactly* (same arithmetic, extracted not reimplemented), for
/// every rung of the technique ladder on fixed-seed traces.
#[test]
fn wave_policy_reproduces_seed_wave_loop_exactly() {
    for seed in [3u64, 77, 2026] {
        for (dataset, requests, decode) in [
            (Dataset::QmSum, 12, 32),
            (Dataset::Musique, 9, 16),
            (Dataset::QmSum, 24, 8),
        ] {
            let trace = TraceBuilder::new(dataset)
                .seed(seed)
                .requests(requests)
                .decode_len(decode)
                .build();
            for tech in Techniques::ladder() {
                let e = cent_eval(tech);
                let engine = e.run_trace(&trace);
                let reference = e.run_trace_wave_reference(&trace);
                let label = format!("{} seed {seed} on {dataset}", tech.label());
                assert_eq!(engine.tokens, reference.tokens, "tokens: {label}");
                assert_eq!(engine.waves, reference.waves, "waves: {label}");
                assert_eq!(engine.seconds, reference.seconds, "seconds: {label}");
                assert_eq!(
                    engine.tokens_per_second, reference.tokens_per_second,
                    "throughput: {label}"
                );
                assert_eq!(
                    engine.mean_batch, reference.mean_batch,
                    "mean_batch: {label}"
                );
                assert_eq!(engine.energy, reference.energy, "energy: {label}");
            }
        }
    }
}

/// A request that never emits a token (zero decode budget) must not
/// fabricate a first-token instant: the historical wave fallback
/// `first_token.unwrap_or(wave_start)` silently clamped such a request's
/// TTFT to the wave start, polluting the percentiles. It is still
/// served, but contributes no latency sample — under both policies.
#[test]
fn zero_emission_requests_produce_no_latency_sample() {
    let mk = |id, decode_len, arrival_us| pimphony::workload::Request {
        id,
        context_len: 4000,
        decode_len,
        arrival_us,
        priority: 0,
        tenant: 0,
        shared_prefix: 0,
    };
    let trace: pimphony::workload::Trace = [mk(0, 16, 0), mk(1, 0, 0), mk(2, 16, 100)]
        .into_iter()
        .collect();
    for policy in [SchedulingPolicy::Wave, SchedulingPolicy::Continuous] {
        let e = cent_eval(Techniques::pimphony()).with_policy(policy);
        let r = e.run_trace(&trace);
        // All three requests are served end-to-end...
        let served: u64 = r.per_replica.iter().map(|b| b.served).sum();
        assert_eq!(served, 3, "{policy}");
        assert_eq!(r.tokens, 32, "{policy}");
        // ...but only the two token-emitting ones yield latency samples,
        // and no sample's TTFT is clamped to a token that never existed.
        assert_eq!(r.latency.completed, 2, "{policy}");
        assert!(r.latency.ttft.p50 > 0.0, "{policy}: {:?}", r.latency.ttft);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under steady saturating Poisson load with varied response
    /// lengths, continuous batching never yields lower throughput than
    /// wave serving of the same trace: refilling freed batch slots beats
    /// decoding stragglers alone. (The wave policy even gets a head
    /// start, ignoring arrival times entirely.) The historical 0.5%
    /// tolerance covered a chunk-granularity *pricing* asymmetry (wave
    /// froze token counts for a whole 64-step stride, continuous
    /// re-priced at completion boundaries); both policies now price
    /// every chunk at its midpoint step — per-step exact under the
    /// affine kernel model, enforced at 0.01% by
    /// `chunk_pricing_is_stride_invariant` below — so the remaining
    /// tolerance covers pure scheduling: continuous admits FCFS and a
    /// worst-case head-of-line request can pack a batch worse than the
    /// wave planner's balanced waves (measured ≤ 0.49% across the seed
    /// domain, pricing's contribution < 0.01%).
    #[test]
    fn continuous_never_loses_to_wave_on_steady_load(
        seed in 0u64..1000,
        dpa in 0u32..2,
    ) {
        let tech = if dpa == 1 { Techniques::pimphony() } else { Techniques::tcp_dcs() };
        // Saturating: offered load well above per-replica service rate,
        // so the continuous server is never starved of arrivals.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(seed)
            .requests(32)
            .decode_range(8, 96)
            .poisson(2000.0)
            .build();
        let wave = cent_eval(tech).run_trace(&trace);
        let cont = cent_eval(tech)
            .with_policy(SchedulingPolicy::Continuous)
            .run_trace(&trace);
        prop_assert_eq!(cont.tokens, wave.tokens);
        prop_assert!(
            cont.tokens_per_second >= wave.tokens_per_second * 0.995,
            "continuous {} < wave {} (seed {})",
            cont.tokens_per_second,
            wave.tokens_per_second,
            seed
        );
    }

    /// The chunk-pricing fix, gated tightly: throughput must be
    /// *stride-invariant*. `stride = 1` re-prices the iteration at every
    /// decode step (exact by construction); `stride = 64` prices chunks
    /// at their midpoint step. Under the affine kernel model the two are
    /// identical; the 0.01% envelope covers only the model's piecewise
    /// effects (partition slice boundaries, half-step midpoint
    /// rounding). Before the fix, chunk costs were frozen at the chunk's
    /// *first* step and this deviation measured 0.1–0.5%.
    #[test]
    fn chunk_pricing_is_stride_invariant(
        seed in 0u64..1000,
        cont in 0u32..2,
    ) {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(seed)
            .requests(32)
            .decode_range(8, 96)
            .poisson(2000.0)
            .build();
        let policy = if cont == 1 { SchedulingPolicy::Continuous } else { SchedulingPolicy::Wave };
        let coarse = cent_eval(Techniques::pimphony())
            .with_policy(policy)
            .with_stride(64)
            .run_trace(&trace);
        let exact = cent_eval(Techniques::pimphony())
            .with_policy(policy)
            .with_stride(1)
            .run_trace(&trace);
        prop_assert_eq!(coarse.tokens, exact.tokens);
        let skew = (coarse.tokens_per_second / exact.tokens_per_second - 1.0).abs();
        prop_assert!(
            skew < 1e-4,
            "{policy} stride-64 vs stride-1 skew {:.6}% (seed {})",
            skew * 100.0,
            seed
        );
    }

    /// Latency percentiles are monotone (p50 ≤ p95 ≤ p99 ≤ max) and
    /// causally consistent for every metric, across arrival regimes.
    #[test]
    fn latency_percentiles_are_monotone(
        seed in 0u64..1000,
        rate_decishare in 2u64..30,
        bursty in 0u32..2,
    ) {
        let rate = rate_decishare as f64; // 0.2–3 req/s of heavy requests
        let builder = TraceBuilder::new(Dataset::QmSum)
            .seed(seed)
            .requests(16)
            .decode_range(4, 48);
        let trace = if bursty == 1 {
            builder.bursty(rate, 2.0).build()
        } else {
            builder.poisson(rate).build()
        };
        let r = cent_eval(Techniques::pimphony())
            .with_policy(SchedulingPolicy::Continuous)
            .run_trace(&trace);
        prop_assert_eq!(r.latency.completed, trace.len() as u64);
        for (name, s) in
            [("ttft", &r.latency.ttft), ("tpot", &r.latency.tpot), ("e2e", &r.latency.e2e)]
        {
            prop_assert!(s.p50 <= s.p95 + 1e-12, "{}: p50 {} > p95 {}", name, s.p50, s.p95);
            prop_assert!(s.p95 <= s.p99 + 1e-12, "{}: p95 {} > p99 {}", name, s.p95, s.p99);
            prop_assert!(s.p99 <= s.max + 1e-12, "{}: p99 {} > max {}", name, s.p99, s.max);
            prop_assert!(s.mean <= s.max + 1e-12, "{}: mean {} > max {}", name, s.mean, s.max);
            prop_assert!(s.p50 >= 0.0, "{name}: negative p50");
        }
        // First token can't come before its own arrival, and e2e
        // dominates ttft rank-by-rank.
        prop_assert!(r.latency.e2e.p50 >= r.latency.ttft.p50 - 1e-12);
        prop_assert!(r.latency.e2e.max >= r.latency.ttft.max - 1e-12);
    }

    /// Work conservation: whichever policy and arrival process, every
    /// request completes and every decode token is produced exactly once.
    #[test]
    fn every_policy_serves_all_tokens(seed in 0u64..1000, cont in 0u32..2) {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(seed)
            .requests(12)
            .decode_range(1, 40)
            .poisson(5.0)
            .build();
        let policy = if cont == 1 { SchedulingPolicy::Continuous } else { SchedulingPolicy::Wave };
        let r = cent_eval(Techniques::pimphony()).with_policy(policy).run_trace(&trace);
        prop_assert_eq!(r.tokens, trace.total_decode_tokens());
        prop_assert_eq!(r.latency.completed, trace.len() as u64);
    }
}
