//! Chunked physical memory allocator for lazy KV-cache growth (§VI-C).
//!
//! Physical memory is carved into fixed-size chunks (the paper uses 1 MB,
//! defined as `channels x banks x rows` granularity). The host allocates
//! chunks on demand as a request's KV cache grows and frees them when the
//! request completes. Internal fragmentation is limited to the final,
//! partially filled chunk of each request.

use crate::{MemError, RequestId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default chunk size: 1 MB (paper §VI-C).
pub const DEFAULT_CHUNK_BYTES: u64 = 1 << 20;

/// Identifier of a physical chunk within one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId(pub u64);

/// A free-list chunk allocator over one PIM module's capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkAllocator {
    chunk_bytes: u64,
    total_chunks: u64,
    free: Vec<ChunkId>,
    /// Per-request: allocated chunks (ordered by virtual index) and the
    /// actual KV bytes stored.
    requests: BTreeMap<u64, Owned>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Owned {
    chunks: Vec<ChunkId>,
    used_bytes: u64,
}

impl ChunkAllocator {
    /// Creates an allocator over `capacity_bytes` with the given chunk size.
    ///
    /// # Panics
    /// Panics if `chunk_bytes` is zero.
    pub fn new(capacity_bytes: u64, chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be nonzero");
        let total_chunks = capacity_bytes / chunk_bytes;
        // LIFO free list: most recently freed chunk is reused first.
        let free = (0..total_chunks).rev().map(ChunkId).collect();
        ChunkAllocator {
            chunk_bytes,
            total_chunks,
            free,
            requests: BTreeMap::new(),
        }
    }

    /// Creates an allocator with the paper's 1 MB chunks.
    pub fn with_default_chunks(capacity_bytes: u64) -> Self {
        Self::new(capacity_bytes, DEFAULT_CHUNK_BYTES)
    }

    /// Chunk size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Total chunks in the module.
    pub fn total_chunks(&self) -> u64 {
        self.total_chunks
    }

    /// Currently free chunks.
    pub fn free_chunks(&self) -> u64 {
        self.free.len() as u64
    }

    /// Registers a new request with zero allocation.
    ///
    /// # Errors
    /// [`MemError::DuplicateRequest`] if already registered.
    pub fn register(&mut self, id: RequestId) -> Result<(), MemError> {
        if self.requests.contains_key(&id.0) {
            return Err(MemError::DuplicateRequest(id));
        }
        self.requests.insert(
            id.0,
            Owned {
                chunks: Vec::new(),
                used_bytes: 0,
            },
        );
        Ok(())
    }

    /// Grows `id`'s KV cache to `used_bytes`, lazily allocating chunks and
    /// returning the newly mapped `(virtual_chunk, physical_chunk)` pairs
    /// for the host to install in the module's VA2PA table.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not registered;
    /// [`MemError::OutOfMemory`] if the free list runs dry (no partial
    /// growth is performed).
    pub fn grow(
        &mut self,
        id: RequestId,
        used_bytes: u64,
    ) -> Result<Vec<(u64, ChunkId)>, MemError> {
        let owned = self
            .requests
            .get(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        let needed_chunks = used_bytes.div_ceil(self.chunk_bytes);
        let have = owned.chunks.len() as u64;
        let extra = needed_chunks.saturating_sub(have);
        if extra > self.free.len() as u64 {
            return Err(MemError::OutOfMemory {
                requested: extra * self.chunk_bytes,
                available: self.free.len() as u64 * self.chunk_bytes,
            });
        }
        let mut new_maps = Vec::with_capacity(extra as usize);
        let owned = self
            .requests
            .get_mut(&id.0)
            .expect("request registered before growth; ids are never reused");
        for k in 0..extra {
            let pc = self.free.pop().expect("free list length checked");
            new_maps.push((have + k, pc));
            owned.chunks.push(pc);
        }
        owned.used_bytes = used_bytes.max(owned.used_bytes);
        Ok(new_maps)
    }

    /// Frees all of `id`'s chunks.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not registered.
    pub fn release(&mut self, id: RequestId) -> Result<(), MemError> {
        let owned = self
            .requests
            .remove(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        self.free.extend(owned.chunks);
        Ok(())
    }

    /// Number of registered requests.
    pub fn registered(&self) -> usize {
        self.requests.len()
    }

    /// Bytes held in allocated chunks (allocated chunk count x chunk size).
    pub fn allocated_bytes(&self) -> u64 {
        (self.total_chunks - self.free.len() as u64) * self.chunk_bytes
    }

    /// Bytes of actual KV data across requests.
    pub fn used_bytes(&self) -> u64 {
        self.requests.values().map(|o| o.used_bytes).sum()
    }

    /// Capacity utilization: actual bytes over *allocated* bytes (the only
    /// waste is each request's final partial chunk). Returns 0 when nothing
    /// is allocated.
    pub fn capacity_utilization(&self) -> f64 {
        let allocated = self.allocated_bytes();
        if allocated == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / allocated as f64
        }
    }

    /// Chunks owned by a request, in virtual order.
    pub fn chunks_of(&self, id: RequestId) -> Option<&[ChunkId]> {
        self.requests.get(&id.0).map(|o| o.chunks.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_allocates_on_demand() {
        let mut a = ChunkAllocator::new(10 * 1024, 1024);
        a.register(RequestId(1)).unwrap();
        let maps = a.grow(RequestId(1), 2500).unwrap();
        assert_eq!(maps.len(), 3); // ceil(2500/1024)
        assert_eq!(a.free_chunks(), 7);
        // Growing within the same chunks allocates nothing new.
        assert!(a.grow(RequestId(1), 3000).unwrap().is_empty());
        // Crossing a boundary allocates exactly one more.
        assert_eq!(a.grow(RequestId(1), 3100).unwrap().len(), 1);
    }

    #[test]
    fn virtual_indices_are_sequential() {
        let mut a = ChunkAllocator::new(8 * 1024, 1024);
        a.register(RequestId(1)).unwrap();
        let m1 = a.grow(RequestId(1), 2048).unwrap();
        let m2 = a.grow(RequestId(1), 4096).unwrap();
        let vcs: Vec<u64> = m1.iter().chain(m2.iter()).map(|&(vc, _)| vc).collect();
        assert_eq!(vcs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_memory_is_atomic() {
        let mut a = ChunkAllocator::new(2 * 1024, 1024);
        a.register(RequestId(1)).unwrap();
        a.grow(RequestId(1), 1024).unwrap();
        let err = a.grow(RequestId(1), 4096).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        // Nothing was partially allocated.
        assert_eq!(a.chunks_of(RequestId(1)).unwrap().len(), 1);
        assert_eq!(a.free_chunks(), 1);
    }

    #[test]
    fn release_returns_chunks() {
        let mut a = ChunkAllocator::new(4 * 1024, 1024);
        a.register(RequestId(1)).unwrap();
        a.grow(RequestId(1), 4096).unwrap();
        assert_eq!(a.free_chunks(), 0);
        a.release(RequestId(1)).unwrap();
        assert_eq!(a.free_chunks(), 4);
        assert_eq!(a.registered(), 0);
    }

    #[test]
    fn no_chunk_double_booked() {
        let mut a = ChunkAllocator::new(16 * 1024, 1024);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            a.register(RequestId(i)).unwrap();
            for (_, pc) in a.grow(RequestId(i), 3000).unwrap() {
                assert!(seen.insert(pc), "chunk {pc:?} handed out twice");
            }
        }
    }

    #[test]
    fn utilization_counts_only_last_chunk_waste() {
        let mut a = ChunkAllocator::new(10 * 1024, 1024);
        a.register(RequestId(1)).unwrap();
        a.grow(RequestId(1), 1536).unwrap(); // 2 chunks, 1536 used
        assert!((a.capacity_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn freed_chunks_are_reused() {
        let mut a = ChunkAllocator::new(2 * 1024, 1024);
        a.register(RequestId(1)).unwrap();
        let first: Vec<ChunkId> = a
            .grow(RequestId(1), 2048)
            .unwrap()
            .into_iter()
            .map(|m| m.1)
            .collect();
        a.release(RequestId(1)).unwrap();
        a.register(RequestId(2)).unwrap();
        let second: Vec<ChunkId> = a
            .grow(RequestId(2), 2048)
            .unwrap()
            .into_iter()
            .map(|m| m.1)
            .collect();
        let mut f = first.clone();
        let mut s = second.clone();
        f.sort();
        s.sort();
        assert_eq!(f, s);
    }
}
