//! Paged KV cache: fixed-size, reference-counted pages with a
//! radix-style prefix tree over prompt pages and page-granular LRU
//! reclamation (the vLLM/PagedAttention line).
//!
//! Physical KV memory is carved into fixed-size **pages**. Pages that
//! hold a request's *shared prompt prefix* (system prompts, few-shot
//! templates) live in a prefix tree keyed by caller-supplied content
//! labels: a new request whose prompt shares a prefix with a cached
//! sequence maps the shared pages (refcount++) and can skip their
//! prefill entirely. Pages past the shared prefix — the private tail of
//! the prompt and everything the decode phase appends — are plain
//! refcounted allocations that return to the free list on release.
//!
//! When a sequence releases its pages, shared-prefix pages whose
//! refcount drops to zero are **not** freed: they stay in the tree as
//! *cached* pages, reclaimable page-by-page in LRU order (childless
//! nodes first, so a chain is consumed tail-first) only when a later
//! admission needs room. This replaces all-or-nothing per-request
//! eviction with page-granular reclamation.
//!
//! Page states and the conservation invariant:
//!
//! ```text
//! total = free + cached + referenced
//!
//!   free        on the free list, content-less
//!   cached      in the prefix tree, refcount == 0 (reclaimable, LRU)
//!   referenced  refcount >= 1 (tree pages) or owned privately by a
//!               live sequence — never reclaimed
//! ```
//!
//! The pool also attributes **recompute waste**: when a cached page is
//! reclaimed and a later admission misses on exactly that label, the
//! page was computed once, thrown away, and must be prefilled again —
//! [`Admission::recompute_pages`] counts those pages so the serving
//! layer can extend its `wasted_prefill_tokens` accounting to page
//! granularity.

use crate::{MemError, RequestId};
use std::collections::{BTreeMap, BTreeSet};

/// One node of the prefix tree — one shared-prefix page.
#[derive(Debug, Clone)]
struct Node {
    /// Caller-supplied content label (identifies the page's tokens).
    label: u64,
    /// Parent node slot (`None` for first-page nodes hanging off the
    /// conceptual root).
    parent: Option<usize>,
    /// Children keyed by content label.
    children: BTreeMap<u64, usize>,
    /// Live sequences whose prompt maps this page.
    refcount: u64,
    /// Logical timestamp of the last admission that touched this page
    /// (monotonic counter, not wall clock — keeps runs deterministic).
    last_use: u64,
}

/// A live sequence's page accounting.
#[derive(Debug, Clone)]
struct Seq {
    /// Prefix-tree nodes on the sequence's path, shallowest first.
    path: Vec<usize>,
    /// Pages owned privately (prompt tail + decode growth), never shared.
    private_pages: u64,
}

/// Result of a non-mutating prefix lookup ([`PagePool::lookup`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixHit {
    /// Pages of the query already resident in the prefix tree.
    pub hit_pages: u64,
    /// Of those, pages currently *cached* (refcount 0) — admitting the
    /// query re-references them, so they stop being reclaimable.
    pub hit_cached_pages: u64,
}

/// Result of admitting a sequence ([`PagePool::admit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Admission {
    /// Shared-prefix pages mapped from the tree (prefill skippable).
    pub hit_pages: u64,
    /// Pages newly allocated (missed prefix pages + private pages).
    pub new_pages: u64,
    /// Cached pages reclaimed (LRU) to satisfy this allocation.
    pub reclaimed_pages: u64,
    /// Of the newly allocated prefix pages, how many were computed by an
    /// earlier sequence and then reclaimed — work that must be redone.
    pub recompute_pages: u64,
}

/// Result of releasing a sequence ([`PagePool::release`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Released {
    /// Drop in referenced pages: freed private pages plus prefix pages
    /// whose refcount reached zero (these stay cached, not freed).
    pub released_pages: u64,
    /// Prefix pages that transitioned referenced → cached.
    pub newly_cached_pages: u64,
    /// Private pages returned to the free list.
    pub freed_pages: u64,
}

/// A per-replica pool of fixed-size, reference-counted KV pages with a
/// prefix tree over shared prompt pages and LRU page reclamation.
#[derive(Debug, Clone)]
pub struct PagePool {
    page_bytes: u64,
    total_pages: u64,
    free_pages: u64,
    cached_pages: u64,
    referenced_pages: u64,
    /// Monotonic logical clock, bumped once per admission.
    tick: u64,
    /// Slab of tree nodes; freed slots are reused via `free_slots`.
    slots: Vec<Option<Node>>,
    free_slots: Vec<usize>,
    /// First-page nodes (children of the conceptual root), by label.
    roots: BTreeMap<u64, usize>,
    /// Live sequences by request id.
    seqs: BTreeMap<u64, Seq>,
    /// Labels of reclaimed prefix pages, for recompute attribution.
    evicted_labels: BTreeSet<u64>,
}

impl PagePool {
    /// Creates a pool over `capacity_bytes` carved into `page_bytes`
    /// pages (any remainder is unusable slack, as with chunks).
    ///
    /// # Panics
    /// Panics if `page_bytes` is zero.
    pub fn new(capacity_bytes: u64, page_bytes: u64) -> Self {
        assert!(page_bytes > 0, "page size must be nonzero");
        let total_pages = capacity_bytes / page_bytes;
        PagePool {
            page_bytes,
            total_pages,
            free_pages: total_pages,
            cached_pages: 0,
            referenced_pages: 0,
            tick: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            roots: BTreeMap::new(),
            seqs: BTreeMap::new(),
            evicted_labels: BTreeSet::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total pages in the pool.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Pages on the free list.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Zero-refcount prefix pages kept warm in the tree (reclaimable).
    pub fn cached_pages(&self) -> u64 {
        self.cached_pages
    }

    /// Pages pinned by live sequences (shared refcount ≥ 1 + private).
    pub fn referenced_pages(&self) -> u64 {
        self.referenced_pages
    }

    /// Number of live (admitted, unreleased) sequences.
    pub fn registered(&self) -> usize {
        self.seqs.len()
    }

    /// Walks the prefix tree for `labels` without mutating anything:
    /// how many leading pages are resident, and how many of those are
    /// cached (would stop being reclaimable if admitted).
    pub fn lookup(&self, labels: &[u64]) -> PrefixHit {
        let mut hit = PrefixHit::default();
        let mut cur: Option<usize> = None;
        for &label in labels {
            let next = match cur {
                None => self.roots.get(&label),
                Some(i) => self.node(i).children.get(&label),
            };
            match next {
                Some(&n) => {
                    hit.hit_pages += 1;
                    if self.node(n).refcount == 0 {
                        hit.hit_cached_pages += 1;
                    }
                    cur = Some(n);
                }
                None => break,
            }
        }
        hit
    }

    /// Admits a sequence: maps the longest resident prefix of `labels`
    /// (refcount++ on each hit page), allocates the missed prefix pages
    /// plus `private_pages`, reclaiming cached pages LRU-first when the
    /// free list runs dry. Atomic: on error nothing is allocated.
    ///
    /// # Errors
    /// [`MemError::DuplicateRequest`] if `id` is already admitted;
    /// [`MemError::OutOfMemory`] if the allocation cannot be satisfied
    /// even after reclaiming every reclaimable cached page.
    pub fn admit(
        &mut self,
        id: RequestId,
        labels: &[u64],
        private_pages: u64,
    ) -> Result<Admission, MemError> {
        if self.seqs.contains_key(&id.0) {
            return Err(MemError::DuplicateRequest(id));
        }
        // Walk first (read-only) to price the admission atomically.
        let hit = self.lookup(labels);
        let missing = labels.len() as u64 - hit.hit_pages;
        let new_pages = missing + private_pages;
        let available = self.free_pages + self.cached_pages - hit.hit_cached_pages;
        if new_pages > available {
            return Err(MemError::OutOfMemory {
                requested: new_pages * self.page_bytes,
                available: available * self.page_bytes,
            });
        }
        self.tick += 1;
        let tick = self.tick;
        let mut path = Vec::with_capacity(labels.len());
        let mut cur: Option<usize> = None;
        // Re-reference the hit prefix.
        for &label in &labels[..hit.hit_pages as usize] {
            let n = match cur {
                None => self.roots[&label],
                Some(i) => self.node(i).children[&label],
            };
            let node = self.slots[n].as_mut().expect("hit node is live");
            if node.refcount == 0 {
                self.cached_pages -= 1;
                self.referenced_pages += 1;
            }
            node.refcount += 1;
            node.last_use = tick;
            path.push(n);
            cur = Some(n);
        }
        let mut adm = Admission {
            hit_pages: hit.hit_pages,
            new_pages,
            ..Admission::default()
        };
        // Allocate and insert the missed prefix pages.
        for &label in &labels[hit.hit_pages as usize..] {
            self.take_page(&mut adm.reclaimed_pages);
            if self.evicted_labels.remove(&label) {
                adm.recompute_pages += 1;
            }
            let node = Node {
                label,
                parent: cur,
                children: BTreeMap::new(),
                refcount: 1,
                last_use: tick,
            };
            let slot = match self.free_slots.pop() {
                Some(s) => {
                    self.slots[s] = Some(node);
                    s
                }
                None => {
                    self.slots.push(Some(node));
                    self.slots.len() - 1
                }
            };
            match cur {
                None => {
                    self.roots.insert(label, slot);
                }
                Some(p) => {
                    self.slots[p]
                        .as_mut()
                        .expect("parent is live")
                        .children
                        .insert(label, slot);
                }
            }
            self.referenced_pages += 1;
            path.push(slot);
            cur = Some(slot);
        }
        // Allocate the private pages.
        for _ in 0..private_pages {
            self.take_page(&mut adm.reclaimed_pages);
            self.referenced_pages += 1;
        }
        self.seqs.insert(
            id.0,
            Seq {
                path,
                private_pages,
            },
        );
        self.debug_check();
        Ok(adm)
    }

    /// Releases a sequence: private pages return to the free list;
    /// shared-prefix pages drop one reference, and those reaching zero
    /// stay in the tree as cached (reclaimable) pages.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if `id` is not admitted.
    pub fn release(&mut self, id: RequestId) -> Result<Released, MemError> {
        let seq = self
            .seqs
            .remove(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        let mut rel = Released {
            freed_pages: seq.private_pages,
            ..Released::default()
        };
        for &n in seq.path.iter().rev() {
            let node = self.slots[n].as_mut().expect("path node is live");
            debug_assert!(node.refcount > 0, "page refcount underflow");
            node.refcount -= 1;
            if node.refcount == 0 {
                rel.newly_cached_pages += 1;
                self.cached_pages += 1;
                self.referenced_pages -= 1;
            }
        }
        self.free_pages += seq.private_pages;
        self.referenced_pages -= seq.private_pages;
        rel.released_pages = rel.freed_pages + rel.newly_cached_pages;
        self.debug_check();
        Ok(rel)
    }

    /// Consumes one page: from the free list if possible, otherwise by
    /// reclaiming the LRU cached page (bumping `reclaimed`).
    fn take_page(&mut self, reclaimed: &mut u64) {
        if self.free_pages == 0 {
            self.reclaim_lru();
            *reclaimed += 1;
        }
        debug_assert!(self.free_pages > 0, "admit feasibility was checked");
        self.free_pages -= 1;
    }

    /// Reclaims the least-recently-used cached page. Only childless
    /// zero-refcount nodes are candidates, so a cold chain is consumed
    /// tail (deepest page) first; ties break on slot index, keeping
    /// reclamation deterministic.
    fn reclaim_lru(&mut self) {
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|n| (i, n)))
            .filter(|(_, n)| n.refcount == 0 && n.children.is_empty())
            .min_by_key(|&(i, n)| (n.last_use, i))
            .map(|(i, _)| i)
            .expect("cached page exists (admit feasibility was checked)");
        let node = self.slots[victim].take().expect("victim is live");
        match node.parent {
            None => {
                self.roots.remove(&node.label);
            }
            Some(p) => {
                self.slots[p]
                    .as_mut()
                    .expect("parent outlives child")
                    .children
                    .remove(&node.label);
            }
        }
        self.free_slots.push(victim);
        self.evicted_labels.insert(node.label);
        self.cached_pages -= 1;
        self.free_pages += 1;
    }

    fn node(&self, i: usize) -> &Node {
        self.slots[i].as_ref().expect("node index is live")
    }

    /// Conservation invariant (debug builds only).
    fn debug_check(&self) {
        debug_assert_eq!(
            self.free_pages + self.cached_pages + self.referenced_pages,
            self.total_pages,
            "page conservation violated"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Labels for tenant `g`, pages `0..n` — the serving layer's scheme.
    fn labels(g: u64, n: u64) -> Vec<u64> {
        (0..n).map(|i| (g << 32) | i).collect()
    }

    #[test]
    fn first_admit_misses_then_prefix_hits() {
        let mut p = PagePool::new(64 * 1024, 1024);
        let a = p.admit(RequestId(1), &labels(0, 4), 2).unwrap();
        assert_eq!(a.hit_pages, 0);
        assert_eq!(a.new_pages, 6);
        assert_eq!(p.referenced_pages(), 6);
        // Second sequence shares the 4-page prefix: only private pages
        // are new.
        let b = p.admit(RequestId(2), &labels(0, 4), 3).unwrap();
        assert_eq!(b.hit_pages, 4);
        assert_eq!(b.new_pages, 3);
        assert_eq!(p.referenced_pages(), 9);
        // A shorter prefix of the same chain also hits.
        assert_eq!(
            p.lookup(&labels(0, 2)),
            PrefixHit {
                hit_pages: 2,
                hit_cached_pages: 0
            }
        );
        // A different tenant's labels miss entirely.
        assert_eq!(p.lookup(&labels(1, 4)).hit_pages, 0);
    }

    #[test]
    fn release_caches_shared_pages_and_frees_private() {
        let mut p = PagePool::new(16 * 1024, 1024);
        p.admit(RequestId(1), &labels(0, 4), 2).unwrap();
        let r = p.release(RequestId(1)).unwrap();
        assert_eq!(r.freed_pages, 2);
        assert_eq!(r.newly_cached_pages, 4);
        assert_eq!(r.released_pages, 6);
        assert_eq!(p.cached_pages(), 4);
        assert_eq!(p.referenced_pages(), 0);
        assert_eq!(p.free_pages(), 12);
        // The cached prefix is still hittable — and flagged cached.
        let h = p.lookup(&labels(0, 4));
        assert_eq!(h.hit_pages, 4);
        assert_eq!(h.hit_cached_pages, 4);
        // Re-admitting re-references it without allocating.
        let a = p.admit(RequestId(2), &labels(0, 4), 0).unwrap();
        assert_eq!(a.hit_pages, 4);
        assert_eq!(a.new_pages, 0);
        assert_eq!(p.cached_pages(), 0);
    }

    #[test]
    fn refcount_tracks_multiple_sharers() {
        let mut p = PagePool::new(16 * 1024, 1024);
        p.admit(RequestId(1), &labels(0, 3), 0).unwrap();
        p.admit(RequestId(2), &labels(0, 3), 0).unwrap();
        // First release keeps the pages referenced (the sharer lives).
        let r = p.release(RequestId(1)).unwrap();
        assert_eq!(r.newly_cached_pages, 0);
        assert_eq!(p.referenced_pages(), 3);
        let r = p.release(RequestId(2)).unwrap();
        assert_eq!(r.newly_cached_pages, 3);
        assert_eq!(p.cached_pages(), 3);
    }

    #[test]
    fn lru_reclaims_cold_tail_first() {
        let mut p = PagePool::new(8 * 1024, 1024);
        // Fill the pool with two released chains: tenant 0 (older) and
        // tenant 1 (newer), 4 pages each.
        p.admit(RequestId(1), &labels(0, 4), 0).unwrap();
        p.admit(RequestId(2), &labels(1, 4), 0).unwrap();
        p.release(RequestId(1)).unwrap();
        p.release(RequestId(2)).unwrap();
        assert_eq!(p.free_pages(), 0);
        assert_eq!(p.cached_pages(), 8);
        // A 3-page private admission must reclaim 3 pages — from the
        // *older* chain, tail-first, leaving its first page cached.
        let a = p.admit(RequestId(3), &[], 3).unwrap();
        assert_eq!(a.reclaimed_pages, 3);
        let h0 = p.lookup(&labels(0, 4));
        assert_eq!(h0.hit_pages, 1, "older chain consumed tail-first");
        assert_eq!(p.lookup(&labels(1, 4)).hit_pages, 4, "newer chain intact");
    }

    #[test]
    fn referenced_pages_are_never_reclaimed() {
        let mut p = PagePool::new(4 * 1024, 1024);
        p.admit(RequestId(1), &labels(0, 3), 0).unwrap();
        // 1 free page left; asking for 3 private pages must fail —
        // the 3 referenced pages are not reclaimable.
        let err = p.admit(RequestId(2), &[], 3).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        // Atomic: nothing changed.
        assert_eq!(p.free_pages(), 1);
        assert_eq!(p.referenced_pages(), 3);
        assert_eq!(p.registered(), 1);
    }

    #[test]
    fn admit_accounts_hit_cached_pages_in_feasibility() {
        let mut p = PagePool::new(4 * 1024, 1024);
        p.admit(RequestId(1), &labels(0, 4), 0).unwrap();
        p.release(RequestId(1)).unwrap();
        // All 4 pages cached. Re-admitting the chain plus 1 private page
        // needs 1 page, but re-referencing the chain removes all 4 from
        // the reclaimable set — infeasible.
        let err = p.admit(RequestId(2), &labels(0, 4), 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        // Without the private page it fits.
        p.admit(RequestId(3), &labels(0, 4), 0).unwrap();
    }

    #[test]
    fn recompute_attribution_counts_reclaimed_labels_once() {
        let mut p = PagePool::new(4 * 1024, 1024);
        p.admit(RequestId(1), &labels(0, 4), 0).unwrap();
        p.release(RequestId(1)).unwrap();
        // Reclaim the whole chain for a private allocation.
        let a = p.admit(RequestId(2), &[], 4).unwrap();
        assert_eq!(a.reclaimed_pages, 4);
        p.release(RequestId(2)).unwrap();
        // Re-admitting the chain must recompute all 4 pages.
        let b = p.admit(RequestId(3), &labels(0, 4), 0).unwrap();
        assert_eq!(b.hit_pages, 0);
        assert_eq!(b.recompute_pages, 4);
        p.release(RequestId(3)).unwrap();
        // ... but only once: the labels are resident again, so a fresh
        // admission hits instead of recomputing.
        let c = p.admit(RequestId(4), &labels(0, 4), 0).unwrap();
        assert_eq!(c.hit_pages, 4);
        assert_eq!(c.recompute_pages, 0);
    }

    #[test]
    fn duplicate_and_unknown_ids_error() {
        let mut p = PagePool::new(4 * 1024, 1024);
        p.admit(RequestId(1), &[], 1).unwrap();
        assert!(matches!(
            p.admit(RequestId(1), &[], 1),
            Err(MemError::DuplicateRequest(_))
        ));
        assert!(matches!(
            p.release(RequestId(9)),
            Err(MemError::UnknownRequest(_))
        ));
    }

    #[test]
    fn diverging_prefixes_branch_in_the_tree() {
        let mut p = PagePool::new(16 * 1024, 1024);
        // Two chains sharing the first 2 pages, diverging after.
        let mut a = labels(0, 2);
        a.extend([7u64 << 32, (7 << 32) | 1]);
        let mut b = labels(0, 2);
        b.extend([8u64 << 32]);
        p.admit(RequestId(1), &a, 0).unwrap();
        let adm = p.admit(RequestId(2), &b, 0).unwrap();
        assert_eq!(adm.hit_pages, 2, "shared stem hits");
        assert_eq!(adm.new_pages, 1, "divergent tail allocates");
        assert_eq!(p.referenced_pages(), 5);
        p.release(RequestId(1)).unwrap();
        p.release(RequestId(2)).unwrap();
        assert_eq!(p.cached_pages(), 5);
    }
}
