//! Per-request virtual-to-physical chunk translation (paper §VI-C).
//!
//! The on-module dispatcher keeps one VA2PA table per active request. DPA
//! instructions address the KV cache with *virtual* chunk-granular
//! addresses; the decode unit resolves them through this table, allowing
//! non-contiguous, dynamically allocated physical placement.

use crate::chunk::ChunkId;
use serde::{Deserialize, Serialize};

/// A single request's virtual→physical chunk map.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Va2PaTable {
    /// `map[vc]` is the physical chunk backing virtual chunk `vc`.
    map: Vec<Option<ChunkId>>,
}

impl Va2PaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a mapping for virtual chunk `vc`.
    pub fn insert(&mut self, vc: u64, pc: ChunkId) {
        let idx = vc as usize;
        if idx >= self.map.len() {
            self.map.resize(idx + 1, None);
        }
        self.map[idx] = Some(pc);
    }

    /// Resolves a virtual chunk, if mapped.
    pub fn translate(&self, vc: u64) -> Option<ChunkId> {
        self.map.get(vc as usize).copied().flatten()
    }

    /// Translates a virtual *row* address given `rows_per_chunk`, returning
    /// the physical row (`pc * rows_per_chunk + offset`).
    ///
    /// # Panics
    /// Panics if `rows_per_chunk` is zero.
    pub fn translate_row(&self, virtual_row: u64, rows_per_chunk: u64) -> Option<u64> {
        assert!(rows_per_chunk > 0);
        let vc = virtual_row / rows_per_chunk;
        let off = virtual_row % rows_per_chunk;
        self.translate(vc).map(|pc| pc.0 * rows_per_chunk + off)
    }

    /// Number of mapped chunks.
    pub fn mapped(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }

    /// Iterates over `(virtual_chunk, physical_chunk)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, ChunkId)> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter_map(|(vc, pc)| pc.map(|p| (vc as u64, p)))
    }
}

impl FromIterator<(u64, ChunkId)> for Va2PaTable {
    fn from_iter<I: IntoIterator<Item = (u64, ChunkId)>>(iter: I) -> Self {
        let mut t = Va2PaTable::new();
        for (vc, pc) in iter {
            t.insert(vc, pc);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_translate() {
        let mut t = Va2PaTable::new();
        t.insert(0, ChunkId(22));
        t.insert(1, ChunkId(33));
        assert_eq!(t.translate(0), Some(ChunkId(22)));
        assert_eq!(t.translate(1), Some(ChunkId(33)));
        assert_eq!(t.translate(2), None);
    }

    #[test]
    fn sparse_holes_are_unmapped() {
        let mut t = Va2PaTable::new();
        t.insert(4, ChunkId(9));
        assert_eq!(t.translate(2), None);
        assert_eq!(t.translate(4), Some(ChunkId(9)));
        assert_eq!(t.mapped(), 1);
    }

    #[test]
    fn row_translation_is_chunk_relative() {
        let mut t = Va2PaTable::new();
        t.insert(0, ChunkId(7));
        t.insert(1, ChunkId(2));
        // 16 rows per chunk: virtual row 20 = chunk 1, offset 4 -> 2*16+4.
        assert_eq!(t.translate_row(20, 16), Some(36));
        assert_eq!(t.translate_row(3, 16), Some(7 * 16 + 3));
        assert_eq!(t.translate_row(40, 16), None);
    }

    #[test]
    fn iter_yields_mappings_in_order() {
        let t: Va2PaTable = vec![(0, ChunkId(5)), (2, ChunkId(8))].into_iter().collect();
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(0, ChunkId(5)), (2, ChunkId(8))]);
    }

    #[test]
    fn remap_overwrites() {
        let mut t = Va2PaTable::new();
        t.insert(0, ChunkId(1));
        t.insert(0, ChunkId(2));
        assert_eq!(t.translate(0), Some(ChunkId(2)));
        assert_eq!(t.mapped(), 1);
    }
}
