//! Baseline static KV-cache management (paper §VI-A).
//!
//! Every admitted request reserves a KV region sized for the *maximum*
//! context length `T_max`, because the compiled instruction stream embeds
//! physical addresses for the worst case. Capacity utilization is then
//! `actual_bytes / reserved_bytes`, which Table II-style workloads drive
//! down to ~31–40% (paper Fig. 19).

use crate::{MemError, RequestId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A static, `T_max`-reservation allocator for one PIM module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticAllocator {
    capacity_bytes: u64,
    reservation_bytes: u64,
    requests: BTreeMap<u64, u64>, // request id -> used bytes
}

impl StaticAllocator {
    /// Creates an allocator over `capacity_bytes`, reserving
    /// `reservation_bytes` (the `T_max`-sized KV footprint) per request.
    ///
    /// # Panics
    /// Panics if `reservation_bytes` is zero.
    pub fn new(capacity_bytes: u64, reservation_bytes: u64) -> Self {
        assert!(reservation_bytes > 0, "reservation must be nonzero");
        StaticAllocator {
            capacity_bytes,
            reservation_bytes,
            requests: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Per-request reservation in bytes.
    pub fn reservation_bytes(&self) -> u64 {
        self.reservation_bytes
    }

    /// Maximum number of concurrently admitted requests.
    pub fn max_requests(&self) -> u64 {
        self.capacity_bytes / self.reservation_bytes
    }

    /// Admits a request whose KV cache currently occupies `used_bytes`.
    ///
    /// # Errors
    /// [`MemError::OutOfMemory`] when all reservations are taken;
    /// [`MemError::DuplicateRequest`] if the id is already admitted.
    pub fn admit(&mut self, id: RequestId, used_bytes: u64) -> Result<(), MemError> {
        if self.requests.contains_key(&id.0) {
            return Err(MemError::DuplicateRequest(id));
        }
        let reserved = self.requests.len() as u64 * self.reservation_bytes;
        if reserved + self.reservation_bytes > self.capacity_bytes {
            return Err(MemError::OutOfMemory {
                requested: self.reservation_bytes,
                available: self.capacity_bytes - reserved,
            });
        }
        self.requests
            .insert(id.0, used_bytes.min(self.reservation_bytes));
        Ok(())
    }

    /// Grows a request's actual usage (decode appends K/V vectors). Usage
    /// is clamped to the reservation — the static scheme cannot exceed it.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not admitted.
    pub fn grow(&mut self, id: RequestId, new_used_bytes: u64) -> Result<(), MemError> {
        match self.requests.get_mut(&id.0) {
            Some(u) => {
                *u = new_used_bytes.min(self.reservation_bytes);
                Ok(())
            }
            None => Err(MemError::UnknownRequest(id)),
        }
    }

    /// Releases a completed request's reservation.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not admitted.
    pub fn release(&mut self, id: RequestId) -> Result<(), MemError> {
        self.requests
            .remove(&id.0)
            .map(|_| ())
            .ok_or(MemError::UnknownRequest(id))
    }

    /// Number of admitted requests.
    pub fn admitted(&self) -> usize {
        self.requests.len()
    }

    /// Bytes reserved (admitted requests x reservation).
    pub fn reserved_bytes(&self) -> u64 {
        self.requests.len() as u64 * self.reservation_bytes
    }

    /// Bytes actually holding KV data.
    pub fn used_bytes(&self) -> u64 {
        self.requests.values().sum()
    }

    /// Capacity utilization: actual KV bytes over *reserved* bytes — the
    /// paper's Fig. 19 metric. Returns 0 when nothing is admitted.
    pub fn capacity_utilization(&self) -> f64 {
        let reserved = self.reserved_bytes();
        if reserved == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / reserved as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_bounded_by_capacity() {
        let mut a = StaticAllocator::new(1000, 300);
        assert_eq!(a.max_requests(), 3);
        for i in 0..3 {
            a.admit(RequestId(i), 100).unwrap();
        }
        let err = a.admit(RequestId(9), 100).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
    }

    #[test]
    fn duplicate_admit_rejected() {
        let mut a = StaticAllocator::new(1000, 300);
        a.admit(RequestId(1), 10).unwrap();
        assert!(matches!(
            a.admit(RequestId(1), 10),
            Err(MemError::DuplicateRequest(_))
        ));
    }

    #[test]
    fn release_frees_reservation() {
        let mut a = StaticAllocator::new(600, 300);
        a.admit(RequestId(1), 10).unwrap();
        a.admit(RequestId(2), 10).unwrap();
        assert!(a.admit(RequestId(3), 10).is_err());
        a.release(RequestId(1)).unwrap();
        a.admit(RequestId(3), 10).unwrap();
    }

    #[test]
    fn utilization_reflects_actual_over_reserved() {
        let mut a = StaticAllocator::new(1000, 400);
        a.admit(RequestId(1), 100).unwrap();
        a.admit(RequestId(2), 200).unwrap();
        // 300 used / 800 reserved.
        assert!((a.capacity_utilization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn growth_clamped_to_reservation() {
        let mut a = StaticAllocator::new(1000, 400);
        a.admit(RequestId(1), 0).unwrap();
        a.grow(RequestId(1), 10_000).unwrap();
        assert_eq!(a.used_bytes(), 400);
        assert!((a.capacity_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_request_errors() {
        let mut a = StaticAllocator::new(1000, 400);
        assert!(a.grow(RequestId(5), 1).is_err());
        assert!(a.release(RequestId(5)).is_err());
    }

    #[test]
    fn empty_allocator_utilization_zero() {
        let a = StaticAllocator::new(1000, 400);
        assert_eq!(a.capacity_utilization(), 0.0);
        assert_eq!(a.admitted(), 0);
    }
}
