//! PIM KV-cache memory management for the PIMphony reproduction.
//!
//! Paper §VI: conventional PIMs compile fixed physical addresses into their
//! instruction streams, forcing `T_max`-sized static KV reservations and
//! wasting most of memory when actual contexts are shorter (average 36.2%
//! capacity utilization). PIMphony's **Dynamic PIM Access (DPA)** adds a
//! VA2PA table and an on-module dispatcher so the KV cache can be allocated
//! *lazily* in 1 MB chunks, paged-attention-style, inside PIM.
//!
//! * [`static_alloc`] — the baseline `T_max` reservation scheme.
//! * [`chunk`] — the chunked physical allocator with a free list.
//! * [`page`] — refcounted fixed-size KV pages with a prefix tree over
//!   shared prompt pages and page-granular LRU reclamation.
//! * [`va2pa`] — per-request virtual→physical chunk translation.
//! * [`dispatcher`] — the on-module dispatcher that expands DPA-encoded
//!   instruction streams against per-request state (`T_cur`) and resolves
//!   virtual rows through the VA2PA table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod dispatcher;
pub mod page;
pub mod static_alloc;
pub mod va2pa;

pub use chunk::{ChunkAllocator, ChunkId, DEFAULT_CHUNK_BYTES};
pub use dispatcher::{Dispatcher, RequestContext};
pub use page::{Admission, PagePool, PrefixHit, Released};
pub use static_alloc::StaticAllocator;
pub use va2pa::Va2PaTable;

use serde::{Deserialize, Serialize};

/// Identifier of an inference request, as carried in the dispatcher's
/// configuration buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Errors returned by the allocators and the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The module has no free capacity for the requested allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// The request is not registered.
    UnknownRequest(RequestId),
    /// A virtual address had no VA2PA mapping.
    Unmapped {
        /// Offending request.
        request: RequestId,
        /// Unmapped virtual chunk index.
        virtual_chunk: u64,
    },
    /// The request is already registered.
    DuplicateRequest(RequestId),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of memory: requested {requested} B, available {available} B"
                )
            }
            MemError::UnknownRequest(id) => write!(f, "unknown request {id}"),
            MemError::Unmapped {
                request,
                virtual_chunk,
            } => {
                write!(
                    f,
                    "{request} has no mapping for virtual chunk {virtual_chunk}"
                )
            }
            MemError::DuplicateRequest(id) => write!(f, "request {id} already registered"),
        }
    }
}

impl std::error::Error for MemError {}
