//! On-module PIM instruction dispatcher (paper §VI-C, Fig. 11(a)).
//!
//! The dispatcher lives in the PIM HUB and consists of:
//!
//! * an **instruction buffer** holding the compact DPA-encoded program,
//! * a **configuration buffer** with per-request state (request id,
//!   current token length `T_cur`),
//! * a **VA2PA table** per request,
//! * a **decode unit** that expands the DPA program against the active
//!   request and resolves virtual rows to physical rows.
//!
//! Host–PIM communication happens only on request registration, growth,
//! and release — never per decode step; the dispatcher tracks the message
//! count so the evaluation can show this overhead is negligible.

use crate::va2pa::Va2PaTable;
use crate::{MemError, RequestId};
use pim_isa::dpa::DpaProgram;
use pim_isa::PimInstruction;
use std::collections::BTreeMap;

/// Per-request state in the configuration buffer.
#[derive(Debug, Clone)]
pub struct RequestContext {
    /// The request this context belongs to.
    pub id: RequestId,
    /// Current token length (`T_cur`), incremented per decode step.
    pub t_cur: u64,
    /// Virtual→physical chunk map.
    pub va2pa: Va2PaTable,
}

/// The on-module dispatcher.
#[derive(Debug, Clone, Default)]
pub struct Dispatcher {
    program: DpaProgram,
    contexts: BTreeMap<u64, RequestContext>,
    rows_per_chunk: u64,
    host_messages: u64,
    decoded_instructions: u64,
}

impl Dispatcher {
    /// Creates a dispatcher for a module whose chunks span
    /// `rows_per_chunk` DRAM rows, loaded with a DPA `program`.
    ///
    /// # Panics
    /// Panics if `rows_per_chunk` is zero.
    pub fn new(program: DpaProgram, rows_per_chunk: u64) -> Self {
        assert!(rows_per_chunk > 0, "rows_per_chunk must be nonzero");
        Dispatcher {
            program,
            contexts: BTreeMap::new(),
            rows_per_chunk,
            host_messages: 0,
            decoded_instructions: 0,
        }
    }

    /// Registers a request with its initial token length and VA2PA table
    /// (one host→PIM message).
    ///
    /// # Errors
    /// [`MemError::DuplicateRequest`] if the id is already active.
    pub fn register(
        &mut self,
        id: RequestId,
        t_initial: u64,
        va2pa: Va2PaTable,
    ) -> Result<(), MemError> {
        if self.contexts.contains_key(&id.0) {
            return Err(MemError::DuplicateRequest(id));
        }
        self.contexts.insert(
            id.0,
            RequestContext {
                id,
                t_cur: t_initial,
                va2pa,
            },
        );
        self.host_messages += 1;
        Ok(())
    }

    /// Extends a request's VA2PA table with newly allocated chunks (one
    /// host→PIM message).
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not registered.
    pub fn extend_mapping(
        &mut self,
        id: RequestId,
        mappings: impl IntoIterator<Item = (u64, crate::chunk::ChunkId)>,
    ) -> Result<(), MemError> {
        let ctx = self
            .contexts
            .get_mut(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        for (vc, pc) in mappings {
            ctx.va2pa.insert(vc, pc);
        }
        self.host_messages += 1;
        Ok(())
    }

    /// Releases a completed request (one host→PIM message).
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not registered.
    pub fn release(&mut self, id: RequestId) -> Result<(), MemError> {
        self.contexts
            .remove(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        self.host_messages += 1;
        Ok(())
    }

    /// Advances a request's token length after a generation step — purely
    /// local, **no** host communication.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not registered.
    pub fn advance_token(&mut self, id: RequestId) -> Result<u64, MemError> {
        let ctx = self
            .contexts
            .get_mut(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        ctx.t_cur += 1;
        Ok(ctx.t_cur)
    }

    /// Decodes the DPA program for `id`: expands `Dyn-Loop`s against the
    /// request's `T_cur` and translates every `MAC` row through its VA2PA
    /// table.
    ///
    /// # Errors
    /// [`MemError::UnknownRequest`] if not registered;
    /// [`MemError::Unmapped`] if a virtual row falls outside the table.
    pub fn decode(&mut self, id: RequestId) -> Result<Vec<PimInstruction>, MemError> {
        let ctx = self
            .contexts
            .get(&id.0)
            .ok_or(MemError::UnknownRequest(id))?;
        let mut expanded = self.program.expand(ctx.t_cur);
        for inst in &mut expanded {
            if inst.kind == pim_isa::InstructionKind::Mac {
                let vrow = u64::from(inst.row);
                match ctx.va2pa.translate_row(vrow, self.rows_per_chunk) {
                    Some(prow) => inst.row = prow as u32,
                    None => {
                        return Err(MemError::Unmapped {
                            request: id,
                            virtual_chunk: vrow / self.rows_per_chunk,
                        })
                    }
                }
            }
        }
        self.decoded_instructions += expanded.len() as u64;
        Ok(expanded)
    }

    /// The request's current token length, if registered.
    pub fn t_cur(&self, id: RequestId) -> Option<u64> {
        self.contexts.get(&id.0).map(|c| c.t_cur)
    }

    /// Active request count.
    pub fn active_requests(&self) -> usize {
        self.contexts.len()
    }

    /// Host↔PIM messages so far (register / extend / release only).
    pub fn host_messages(&self) -> u64 {
        self.host_messages
    }

    /// Total instructions produced by the decode unit.
    pub fn decoded_instructions(&self) -> u64 {
        self.decoded_instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkId;
    use pim_isa::dpa::{DpaInstruction, DynLoop, DynModi, LoopBound, OperandField};
    use pim_isa::{ChannelMask, PimInstruction};

    fn token_loop_program() -> DpaProgram {
        // One MAC per 256-token block, advancing the virtual row.
        let mac = PimInstruction::mac(ChannelMask::first(16), 1, 0, 0, 0, 0);
        let mut p = DpaProgram::new();
        p.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::TokensDiv { divisor: 256 },
            body: vec![DpaInstruction::Plain(mac)],
            modifiers: vec![DynModi::new(0, OperandField::Row, 1)],
        }));
        p
    }

    fn table(pairs: &[(u64, u64)]) -> Va2PaTable {
        pairs.iter().map(|&(vc, pc)| (vc, ChunkId(pc))).collect()
    }

    #[test]
    fn decode_translates_virtual_rows_per_request() {
        let mut d = Dispatcher::new(token_loop_program(), 2);
        d.register(RequestId(1), 1024, table(&[(0, 22), (1, 33)]))
            .unwrap();
        d.register(RequestId(2), 512, table(&[(0, 5)])).unwrap();
        // Request 1: 4 MACs, virtual rows 0..4 -> chunks {22, 33}.
        let i1 = d.decode(RequestId(1)).unwrap();
        assert_eq!(i1.len(), 4);
        assert_eq!(
            i1.iter().map(|i| i.row).collect::<Vec<_>>(),
            vec![44, 45, 66, 67]
        );
        // Request 2: same virtual address 0 resolves differently.
        let i2 = d.decode(RequestId(2)).unwrap();
        assert_eq!(i2[0].row, 10);
    }

    #[test]
    fn unmapped_row_is_an_error() {
        let mut d = Dispatcher::new(token_loop_program(), 2);
        d.register(RequestId(1), 2048, table(&[(0, 1)])).unwrap();
        // 8 MACs -> virtual rows up to 7 -> chunk 3 unmapped.
        let err = d.decode(RequestId(1)).unwrap_err();
        assert!(matches!(err, MemError::Unmapped { .. }));
    }

    #[test]
    fn advance_token_is_local() {
        let mut d = Dispatcher::new(token_loop_program(), 2);
        d.register(RequestId(1), 10, table(&[(0, 0)])).unwrap();
        let before = d.host_messages();
        for _ in 0..100 {
            d.advance_token(RequestId(1)).unwrap();
        }
        assert_eq!(d.t_cur(RequestId(1)), Some(110));
        assert_eq!(
            d.host_messages(),
            before,
            "token advance must not message the host"
        );
    }

    #[test]
    fn decode_grows_with_token_length() {
        let mut d = Dispatcher::new(token_loop_program(), 64);
        d.register(RequestId(1), 256, table(&[(0, 0)])).unwrap();
        assert_eq!(d.decode(RequestId(1)).unwrap().len(), 1);
        for _ in 0..256 {
            d.advance_token(RequestId(1)).unwrap();
        }
        assert_eq!(d.decode(RequestId(1)).unwrap().len(), 2);
    }

    #[test]
    fn host_messages_counted_per_lifecycle_event() {
        let mut d = Dispatcher::new(token_loop_program(), 2);
        d.register(RequestId(1), 1, table(&[(0, 0)])).unwrap();
        d.extend_mapping(RequestId(1), vec![(1, ChunkId(3))])
            .unwrap();
        d.release(RequestId(1)).unwrap();
        assert_eq!(d.host_messages(), 3);
        assert_eq!(d.active_requests(), 0);
    }

    #[test]
    fn duplicate_and_unknown_requests_error() {
        let mut d = Dispatcher::new(token_loop_program(), 2);
        d.register(RequestId(1), 1, Va2PaTable::new()).unwrap();
        assert!(d.register(RequestId(1), 1, Va2PaTable::new()).is_err());
        assert!(d.decode(RequestId(9)).is_err());
        assert!(d.advance_token(RequestId(9)).is_err());
        assert!(d.release(RequestId(9)).is_err());
    }
}
