//! Seeded violations for every simlint rule, laid out as if this file
//! lived at `crates/system/src/violations.rs` (the fixture tree mirrors
//! the workspace so path-scoped rules apply). `fixtures/` directories
//! are exempt from workspace walks — this file is linted only by
//! pointing simlint at it explicitly (see `tests/selfcheck.rs`), and it
//! is never compiled.

use std::collections::HashMap; // finding: nondet-iter
use std::time::Instant;

fn violations() {
    let m: HashMap<u64, u64> = HashMap::new(); // findings: nondet-iter
    let t0 = Instant::now(); // finding: wall-clock
    let mut rng = rand::thread_rng(); // finding: unseeded-rng
    let mut v = vec![2.0f64, 1.0];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // findings: float-key + unwrap-in-lib
    let x = m.get(&0).unwrap(); // finding: unwrap-in-lib
    let y = m.get(&1).expect(""); // finding: unwrap-in-lib
    println!("{t0:?} {x} {y}"); // finding: stray-debug
    dbg!(v); // finding: stray-debug
}

fn waived() {
    // The scrubber must not let strings or comments trip rules:
    let s = "HashMap Instant::now() thread_rng dbg!"; // HashMap in prose
    let _ = s;
    // Inline waivers silence their own line and the next:
    let m = HashMap::new(); // simlint: allow(nondet-iter): fixture keyed-only site
    // simlint: allow(unwrap-in-lib): fixture invariant documented here
    let x = m.get(&0).unwrap();
    let _ = x;
}

// simlint: allow(nondet-iter) <- finding: waiver-syntax (missing reason)

#[cfg(test)]
mod tests {
    // Exempt: test code may use all of it.
    use std::collections::HashSet;
    #[test]
    fn t() {
        let s: HashSet<u64> = HashSet::new();
        assert!(s.get(&0).is_none());
        println!("{:?}", std::time::Instant::now());
    }
}
