//! Fixture: the same constructs *outside* the simulation crates.
//! `nondet-iter` and `float-key` are scoped to sim crates, so only the
//! universal rules may fire here.

use std::collections::HashMap; // clean: jsonio is not a sim crate

fn keyed() {
    let m: HashMap<u64, u64> = HashMap::new();
    let mut v = vec![2.0f64, 1.0];
    v.sort_by(f64::total_cmp); // clean: total order
    let x = m.get(&0).expect("fixture: key inserted above");
    let _ = (x, v);
}
