//! Self-check: the repository lints clean, and the seeded fixture tree
//! produces exactly the expected findings with a nonzero exit.
//!
//! These tests run the `simlint` *binary* (via `CARGO_BIN_EXE_simlint`)
//! against the real workspace — the same invocation CI uses — so a
//! rule regression, a walk regression, or a new violation anywhere in
//! the tree fails the crate's own test suite.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/simlint")
        .to_path_buf()
}

fn simlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
}

#[test]
fn repository_lints_clean() {
    let root = workspace_root();
    let out = simlint()
        .arg("--check")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("simlint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the repository must lint clean; findings:\n{stdout}"
    );
    assert!(stdout.trim().is_empty(), "clean run prints no findings");
}

#[test]
fn seeded_fixtures_fail_with_file_line_rule_output() {
    let root = workspace_root();
    let out = simlint()
        .arg("--check")
        .arg("--root")
        .arg(root.join("crates/simlint/fixtures"))
        .output()
        .expect("simlint binary runs");
    assert!(!out.status.success(), "seeded violations must fail --check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let findings: Vec<&str> = stdout.lines().collect();

    // Every finding renders as `file:line: rule: message` with a
    // workspace-relative forward-slash path.
    for f in &findings {
        let mut parts = f.splitn(3, ": ");
        let loc = parts.next().expect("location");
        let rule = parts.next().expect("rule");
        let msg = parts.next().expect("message");
        assert!(
            loc.starts_with("crates/") && loc.rsplit(':').next().unwrap().parse::<usize>().is_ok(),
            "location is path:line, got `{loc}`"
        );
        assert!(!rule.contains(' '), "rule id is one token, got `{rule}`");
        assert!(!msg.is_empty());
    }

    // The violations file trips every rule; the waived sites and the
    // out-of-scope file stay silent.
    let count = |rule: &str| {
        findings
            .iter()
            .filter(|f| f.contains(&format!(": {rule}: ")))
            .count()
    };
    assert_eq!(count("nondet-iter"), 2, "use + decl/init lines:\n{stdout}");
    assert_eq!(count("wall-clock"), 1, "{stdout}");
    assert_eq!(count("unseeded-rng"), 1, "{stdout}");
    assert_eq!(count("float-key"), 1, "{stdout}");
    assert_eq!(count("unwrap-in-lib"), 3, "{stdout}");
    assert_eq!(count("stray-debug"), 2, "{stdout}");
    assert_eq!(count("waiver-syntax"), 1, "{stdout}");
    assert!(
        !stdout.contains("outside_scope.rs"),
        "non-sim-crate fixture must stay clean:\n{stdout}"
    );
}

#[test]
fn workspace_walk_never_reaches_fixture_trees() {
    // The fixture violations live under crates/simlint/fixtures/; the
    // clean repository run above already proves they are not walked —
    // this pins the property explicitly so a walker change cannot
    // silently start double-reporting them.
    let root = workspace_root();
    let out = simlint()
        .arg("--root")
        .arg(&root)
        .output()
        .expect("simlint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("fixtures/"), "{stdout}");
}

#[test]
fn list_rules_names_all_six() {
    let out = simlint().arg("--list-rules").output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "nondet-iter",
        "wall-clock",
        "unseeded-rng",
        "float-key",
        "unwrap-in-lib",
        "stray-debug",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn malformed_config_is_a_hard_error() {
    let root = workspace_root();
    let out = simlint()
        .arg("--check")
        .arg("--root")
        .arg(&root)
        .arg("--config")
        .arg(root.join("crates/simlint/fixtures/crates/system/src/violations.rs"))
        .output()
        .expect("simlint binary runs");
    assert_eq!(out.status.code(), Some(2), "config parse error exits 2");
}
