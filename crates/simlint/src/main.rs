//! `simlint` CLI.
//!
//! ```text
//! simlint [--check] [--root DIR] [--config FILE] [--list-rules] [PATH...]
//! ```
//!
//! * `--check`      exit 1 when findings survive the waivers (CI mode).
//! * `--root DIR`   workspace root (default `.`): paths are scoped and
//!   reported relative to it, and `DIR/simlint.toml` is loaded if present.
//! * `--config F`   explicit allowlist file (overrides root discovery).
//! * `--list-rules` print the rule table and exit.
//! * `PATH...`      lint only these files/directories (still relative to
//!   the root for scoping); default: walk the whole root.
//!
//! Findings print to stdout as `file:line: rule: message`, sorted.

use simlint::{config::Config, lint_paths, load_config, rules::RULES, Finding};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut targets: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--list-rules" => {
                for rule in RULES {
                    println!(
                        "{:14} {}",
                        rule.id,
                        rule.summary
                            .split_whitespace()
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(v) => root = PathBuf::from(v),
                    None => return usage("--root needs a directory"),
                }
            }
            "--config" => {
                i += 1;
                match args.get(i) {
                    Some(v) => config_path = Some(PathBuf::from(v)),
                    None => return usage("--config needs a file"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: simlint [--check] [--root DIR] [--config FILE] [--list-rules] [PATH...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            path => targets.push(PathBuf::from(path)),
        }
        i += 1;
    }

    let cfg: Config = match &config_path {
        Some(p) => match std::fs::read_to_string(p)
            .map_err(|e| format!("{}: {e}", p.display()))
            .and_then(|t| simlint::config::parse(&t).map_err(|e| format!("{}: {e}", p.display())))
        {
            Ok(c) => c,
            Err(e) => return fail(&e),
        },
        None => match load_config(&root) {
            Ok(c) => c,
            Err(e) => return fail(&e),
        },
    };

    let findings: Vec<Finding> = match lint_paths(&root, &targets, &cfg) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("simlint: clean ({} rules)", RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} finding(s)", findings.len());
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    eprintln!("usage: simlint [--check] [--root DIR] [--config FILE] [--list-rules] [PATH...]");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    ExitCode::from(2)
}
