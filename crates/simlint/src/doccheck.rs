//! Dependency-free Markdown link checker for the `docs/` layer.
//!
//! The documentation satellite of the SLO-native serving PR made
//! `docs/*.md` + `README.md` load-bearing: the README links into the
//! docs, the docs cross-link each other and anchor into section
//! headings, and the rustdoc on `ServingReport` points at the metrics
//! glossary. A renamed heading or moved file silently strands those
//! links — this pass makes CI catch it, with the same no-dependency
//! constraint as the rest of `simlint` (the workspace builds offline).
//!
//! What is checked, per Markdown file:
//!
//! * inline links and images — `[text](target)` / `![alt](target)` —
//!   outside fenced code blocks and inline code spans;
//! * relative-path targets must exist on disk (resolved against the
//!   containing file's directory);
//! * `#fragment` targets — both same-file and `other.md#fragment` —
//!   must match a heading anchor in the target file, using GitHub's
//!   slugging convention (lowercase, punctuation stripped, spaces to
//!   hyphens, `-N` suffixes for duplicates);
//! * `http(s)://` and `mailto:` targets are skipped — the checker runs
//!   offline, and external rot is not this pass's problem.
//!
//! Findings are reported as `file:line: message`, matching the lint
//! pass's output shape.

use std::path::{Path, PathBuf};

/// One broken link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocFinding {
    /// File containing the link, as given to the checker.
    pub file: PathBuf,
    /// 1-based line of the link's opening bracket.
    pub line: usize,
    /// Human-readable description of the breakage.
    pub message: String,
}

impl std::fmt::Display for DocFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

/// A link extracted from a Markdown document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// 1-based line number of the opening bracket.
    pub line: usize,
    /// The raw target between the parentheses, title stripped.
    pub target: String,
}

/// Extracts the inline link/image targets of a Markdown document,
/// skipping fenced code blocks (``` / ~~~) and inline code spans.
pub fn extract_links(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence: Option<char> = None;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(fence) = in_fence {
            if trimmed.starts_with([fence, fence, fence]) {
                in_fence = None;
            }
            continue;
        }
        if trimmed.starts_with("```") {
            in_fence = Some('`');
            continue;
        }
        if trimmed.starts_with("~~~") {
            in_fence = Some('~');
            continue;
        }
        scan_line(line, idx + 1, &mut links);
    }
    links
}

/// Scans one line for `[text](target)` outside inline code spans.
fn scan_line(line: &str, lineno: usize, out: &mut Vec<Link>) {
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_code = false;
    while i < bytes.len() {
        match bytes[i] {
            b'`' => in_code = !in_code,
            b'[' if !in_code => {
                if let Some((target, next)) = parse_link_at(line, i) {
                    out.push(Link {
                        line: lineno,
                        target,
                    });
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parses a `[text](target)` starting at the `[` at byte `start`;
/// returns the target (title stripped) and the byte index just past the
/// closing parenthesis. Nested brackets in the text (e.g. footnote
/// syntax) are balanced; targets spanning lines are not supported.
fn parse_link_at(line: &str, start: usize) -> Option<(String, usize)> {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = start;
    // Find the matching `]` of the link text.
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if i >= bytes.len() || bytes.get(i + 1) != Some(&b'(') {
        return None;
    }
    let open = i + 2;
    let mut paren = 1usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'(' => paren += 1,
            b')' => {
                paren -= 1;
                if paren == 0 {
                    let raw = &line[open..j];
                    // Strip an optional `"title"` suffix.
                    let target = raw.split_whitespace().next().unwrap_or("").to_string();
                    return Some((target, j + 1));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// The GitHub-style heading anchors of a Markdown document, in order,
/// with `-N` suffixes appended to duplicates.
pub fn heading_anchors(text: &str) -> Vec<String> {
    let mut anchors: Vec<String> = Vec::new();
    let mut in_fence: Option<char> = None;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(fence) = in_fence {
            if trimmed.starts_with([fence, fence, fence]) {
                in_fence = None;
            }
            continue;
        }
        if trimmed.starts_with("```") {
            in_fence = Some('`');
            continue;
        }
        if trimmed.starts_with("~~~") {
            in_fence = Some('~');
            continue;
        }
        if !trimmed.starts_with('#') {
            continue;
        }
        let text = trimmed.trim_start_matches('#').trim();
        let base = slug(text);
        let n = anchors
            .iter()
            .filter(|a| **a == base || a.strip_prefix(&format!("{base}-")).is_some_and(is_number))
            .count();
        if n == 0 {
            anchors.push(base);
        } else {
            anchors.push(format!("{base}-{n}"));
        }
    }
    anchors
}

fn is_number(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

/// GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
/// punctuation (except hyphens and underscores) dropped. Inline code
/// backticks in headings are dropped like other punctuation.
pub fn slug(heading: &str) -> String {
    let mut out = String::with_capacity(heading.len());
    for c in heading.chars() {
        match c {
            ' ' => out.push('-'),
            '-' | '_' => out.push(c),
            c if c.is_alphanumeric() => out.extend(c.to_lowercase()),
            _ => {}
        }
    }
    out
}

/// Checks every link of one Markdown file. `file` is the path used in
/// findings; targets resolve relative to its parent directory.
pub fn check_file(file: &Path) -> Result<Vec<DocFinding>, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
    let dir = file.parent().unwrap_or(Path::new("."));
    let own_anchors = heading_anchors(&text);
    let mut findings = Vec::new();
    for link in extract_links(&text) {
        let target = link.target.as_str();
        if target.is_empty() {
            findings.push(DocFinding {
                file: file.to_path_buf(),
                line: link.line,
                message: "empty link target".to_string(),
            });
            continue;
        }
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        let (path_part, fragment) = match target.split_once('#') {
            Some((p, f)) => (p, Some(f)),
            None => (target, None),
        };
        let (resolved, anchors) = if path_part.is_empty() {
            (file.to_path_buf(), own_anchors.clone())
        } else {
            let resolved = dir.join(path_part);
            if !resolved.exists() {
                findings.push(DocFinding {
                    file: file.to_path_buf(),
                    line: link.line,
                    message: format!("broken link `{target}`: no such file `{path_part}`"),
                });
                continue;
            }
            let anchors = match fragment {
                Some(_) if resolved.extension().is_some_and(|e| e == "md") => {
                    let t = std::fs::read_to_string(&resolved)
                        .map_err(|e| format!("{}: {e}", resolved.display()))?;
                    heading_anchors(&t)
                }
                _ => Vec::new(),
            };
            (resolved, anchors)
        };
        if let Some(frag) = fragment {
            if resolved.extension().is_some_and(|e| e == "md") && !anchors.iter().any(|a| a == frag)
            {
                findings.push(DocFinding {
                    file: file.to_path_buf(),
                    line: link.line,
                    message: format!(
                        "broken anchor `{target}`: no heading `#{frag}` in `{}`",
                        resolved.display()
                    ),
                });
            }
        }
    }
    Ok(findings)
}

/// Checks a set of Markdown files, returning all findings sorted by
/// file and line.
pub fn check_files(files: &[PathBuf]) -> Result<Vec<DocFinding>, String> {
    let mut findings = Vec::new();
    for f in files {
        findings.extend(check_file(f)?);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// The default document set under a workspace root: `README.md` plus
/// every `.md` under `docs/`, sorted.
pub fn default_docs(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let readme = root.join("README.md");
    if readme.exists() {
        files.push(readme);
    }
    if let Ok(dir) = std::fs::read_dir(root.join("docs")) {
        let mut docs: Vec<PathBuf> = dir
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        docs.sort();
        files.extend(docs);
    }
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_links_and_images_outside_code() {
        let text = "\
See [the docs](docs/metrics.md) and ![a chart](img.png).\n\
`[not a link](nope.md)` stays code.\n\
```\n[fenced](also-nope.md)\n```\n\
[after fence](ok.md#anchor)\n";
        let links = extract_links(text);
        let targets: Vec<&str> = links.iter().map(|l| l.target.as_str()).collect();
        assert_eq!(targets, ["docs/metrics.md", "img.png", "ok.md#anchor"]);
        assert_eq!(links[0].line, 1);
        assert_eq!(links[2].line, 6);
    }

    #[test]
    fn slugs_match_github_convention() {
        assert_eq!(slug("Goodput vs. throughput"), "goodput-vs-throughput");
        assert_eq!(
            slug("The `ServingReport` fields"),
            "the-servingreport-fields"
        );
        assert_eq!(
            slug("TTFT decomposition (units: s)"),
            "ttft-decomposition-units-s"
        );
    }

    #[test]
    fn duplicate_headings_get_numeric_suffixes() {
        let text = "# Knobs\n## Default\ntext\n## Default\n";
        assert_eq!(heading_anchors(text), ["knobs", "default", "default-1"]);
    }

    #[test]
    fn check_file_flags_missing_files_and_anchors() {
        let dir = std::env::temp_dir().join("doccheck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.md");
        let b = dir.join("b.md");
        std::fs::write(&b, "# Real Heading\nbody\n").unwrap();
        std::fs::write(
            &a,
            "[ok](b.md) [ok2](b.md#real-heading) [bad](missing.md) [badfrag](b.md#nope)\n\
             [self](#local)\n\n# Local\n",
        )
        .unwrap();
        let findings = check_file(&a).unwrap();
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 2, "{msgs:?}");
        assert!(msgs[0].contains("missing.md"));
        assert!(msgs[1].contains("#nope"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn self_anchors_resolve_against_own_headings() {
        let dir = std::env::temp_dir().join("doccheck-self");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("self.md");
        std::fs::write(&f, "[jump](#a-section)\n\n# A Section\n").unwrap();
        assert_eq!(check_file(&f).unwrap(), vec![]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_targets_are_skipped() {
        let dir = std::env::temp_dir().join("doccheck-ext");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("ext.md");
        std::fs::write(&f, "[x](https://example.com/y#z) [m](mailto:a@b.c)\n").unwrap();
        assert_eq!(check_file(&f).unwrap(), vec![]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
