//! Source model: a comment- and string-aware line scrubber.
//!
//! `simlint` deliberately avoids a full Rust parser (the workspace
//! builds offline; `syn` is unavailable), so every rule matches against
//! a *scrubbed* view of each line in which the contents of string
//! literals, character literals, and comments are blanked out —
//! `let s = "HashMap";` cannot trip `nondet-iter`, and a rule name in a
//! doc comment cannot trip anything. Comment *text* is kept separately
//! because that is where waivers (`// simlint: allow(rule): reason`)
//! live.
//!
//! A second pass marks **test regions**: `#[cfg(test)]` / `#[test]` /
//! `#[bench]` items (tracked by brace depth) are exempt from every
//! rule, matching the repo convention that unit tests live in
//! `mod tests` inside the file they test.

/// One scrubbed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Line content with string/char-literal interiors and comments
    /// replaced by spaces. Quote characters themselves are kept, so
    /// `expect("")` remains distinguishable from `expect("msg")`.
    pub code: String,
    /// Concatenated comment text on the line (line + block comments),
    /// searched for waiver annotations.
    pub comment: String,
    /// Whether the line lies inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// A whole scrubbed file (1-indexed lines via `lines[i - 1]`).
#[derive(Debug, Clone)]
pub struct ScrubbedFile {
    /// Scrubbed lines in order.
    pub lines: Vec<Line>,
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    /// Inside `/* */`, with nesting depth (Rust block comments nest).
    Block(u32),
    /// Inside a normal `"` string (escapes honored).
    Str,
    /// Inside a raw string terminated by `"` + this many `#`s.
    RawStr(u32),
}

/// Scrubs `source` into per-line code/comment views and marks test
/// regions. Never fails: malformed source degrades to conservative
/// scrubbing (an unterminated literal blanks the rest of the file,
/// which can only *hide* findings in code that would not compile
/// anyway).
pub fn scrub(source: &str) -> ScrubbedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(
                            &raw[raw
                                .char_indices()
                                .nth(i)
                                .map(|(b, _)| b)
                                .unwrap_or(raw.len())..],
                        );
                        code.extend(std::iter::repeat(' ').take(chars.len() - i));
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::Block(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        // Possibly (byte-)raw: look back over b/r/# prefix.
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' if is_raw_prefix(&chars, i) => {
                        let (hashes, consumed) = raw_open(&chars, i);
                        mode = Mode::RawStr(hashes);
                        code.extend(std::iter::repeat(' ').take(consumed - 1));
                        code.push('"');
                        i += consumed;
                    }
                    '\'' => {
                        // Char literal vs lifetime. `'\...'` and `'x'`
                        // are literals; `'ident` (no closing quote
                        // nearby) is a lifetime.
                        if next == Some('\\') {
                            code.push('\'');
                            i += 2; // skip the backslash
                                    // Blank until the closing quote.
                            while i < chars.len() && chars[i] != '\'' {
                                code.push(' ');
                                i += 1;
                            }
                            if i < chars.len() {
                                code.push('\'');
                                i += 1;
                            }
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                Mode::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        mode = Mode::Code;
                        code.push('"');
                        code.extend(std::iter::repeat(' ').take(hashes as usize));
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A line comment or string does not continue `Mode::Str` past
        // the newline in valid Rust only for multi-line strings, which
        // do continue — leave `mode` as is except line comments, which
        // always end at the newline (handled above by consuming the
        // rest of the line).
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    ScrubbedFile { lines }
}

/// Whether position `i` starts a raw/byte string prefix
/// (`r"`, `r#"`, `br"`, `b"`, ...), not an identifier like `relax`.
fn is_raw_prefix(chars: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character (e.g. `attr` or
    // `number` would otherwise look like a prefix).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    } else if j == i {
        return false; // bare `b` must be `b"..."`
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Consumes a raw-string opener at `i`, returning `(hash count, chars
/// consumed including the opening quote)`.
fn raw_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    (hashes, j - i + 1)
}

/// Whether the `"` at `i` is followed by `hashes` `#`s (raw-string
/// terminator).
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks lines covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items. Attribute → the next item's braced body (or a single
/// `;`-terminated item) is a test region, tracked by brace depth on the
/// scrubbed code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Depths at which an active test region ends (`None` = not in one).
    let mut region_floor: Option<i64> = None;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        let is_attr = code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[bench]")
            || code.contains("#[cfg(all(test");
        if is_attr && region_floor.is_none() {
            pending_attr = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        let before = depth;
        depth += opens - closes;
        if let Some(floor) = region_floor {
            line.in_test = true;
            if depth <= floor {
                region_floor = None;
            }
            continue;
        }
        if pending_attr {
            line.in_test = true;
            if opens > 0 {
                // The item's body opened on this line; the region runs
                // until depth returns to what it was before the body.
                // If the braces balanced within the line, the item is
                // already over.
                if depth > before {
                    region_floor = Some(before);
                }
                pending_attr = false;
            } else if code.contains(';') {
                // Braceless item (e.g. `#[cfg(test)] use ...;`).
                pending_attr = false;
            }
        }
    }
}

/// A parsed inline waiver: `// simlint: allow(rule[, rule]): reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifiers the waiver silences.
    pub rules: Vec<String>,
    /// Mandatory free-text justification.
    pub reason: String,
}

/// Outcome of scanning a comment for a waiver annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaiverParse {
    /// No `simlint:` marker present.
    None,
    /// A well-formed waiver.
    Ok(Waiver),
    /// A `simlint:` marker that does not parse (flagged, so typos
    /// cannot silently fail to waive).
    Malformed(String),
}

/// Extracts a waiver from comment text. Only a comment whose content
/// *starts* with `simlint:` (after the `//`/`///`/`/*` markers) is
/// treated as a waiver — prose that merely mentions the tool is not.
pub fn parse_waiver(comment: &str) -> WaiverParse {
    let content = comment
        .trim_start()
        .trim_start_matches(['/', '*', '!'])
        .trim_start();
    let Some(rest) = content.strip_prefix("simlint:") else {
        return WaiverParse::None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return WaiverParse::Malformed("expected `simlint: allow(<rule>): <reason>`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return WaiverParse::Malformed("missing `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return WaiverParse::Malformed("missing `)` in waiver rule list".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return WaiverParse::Malformed("empty waiver rule list".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return WaiverParse::Malformed("missing `: <reason>` after rule list".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return WaiverParse::Malformed("waiver reason must not be empty".to_string());
    }
    WaiverParse::Ok(Waiver {
        rules,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_contents_are_blanked_but_quotes_kept() {
        let f = scrub(r#"let s = "HashMap"; x.expect("");"#);
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains(r#"expect("")"#));
    }

    #[test]
    fn nonempty_expect_message_is_not_empty_after_scrub() {
        let f = scrub(r#"x.expect("invariant holds");"#);
        assert!(f.lines[0].code.contains("expect(\""));
        assert!(!f.lines[0].code.contains("expect(\"\")"));
    }

    #[test]
    fn line_comment_text_is_captured_not_code() {
        let f = scrub("let x = 1; // uses HashMap on purpose");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap on purpose"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scrub("/* outer /* inner */ still comment */ let y = 2;\n/* a\nHashMap\n*/ fin");
        assert!(f.lines[0].code.contains("let y = 2;"));
        assert!(!f.lines[2].code.contains("HashMap"));
        assert!(f.lines[2].comment.contains("HashMap"));
        assert!(f.lines[3].code.contains("fin"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scrub("let s = r#\"Instant::now()\"#; let t = 3;");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].code.contains("let t = 3;"));
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
        let f = scrub("fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\''; 'x' }");
        assert!(f.lines[0].code.contains("fn f<'a>"));
        // The quote character inside the char literal must not open a
        // string (everything after would be blanked).
        assert!(f.lines[0].code.contains('}'));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let f = scrub(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test, "mod open");
        assert!(f.lines[3].in_test, "body");
        assert!(f.lines[4].in_test, "mod close");
        assert!(!f.lines[5].in_test, "code after the module");
    }

    #[test]
    fn braceless_cfg_test_item_is_single_line() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}";
        let f = scrub(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn waiver_parses_rules_and_reason() {
        let w = parse_waiver(" simlint: allow(nondet-iter, float-key): keyed lookups only");
        assert_eq!(
            w,
            WaiverParse::Ok(Waiver {
                rules: vec!["nondet-iter".into(), "float-key".into()],
                reason: "keyed lookups only".into()
            })
        );
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        assert!(matches!(
            parse_waiver("simlint: allow(nondet-iter):"),
            WaiverParse::Malformed(_)
        ));
        assert!(matches!(
            parse_waiver("simlint: allow(nondet-iter) no colon"),
            WaiverParse::Malformed(_)
        ));
        assert_eq!(parse_waiver("plain comment"), WaiverParse::None);
    }
}
