//! The rule table: repo-specific determinism and safety rules.
//!
//! Every rule is a per-line matcher over scrubbed code (see
//! [`crate::scan`]) plus a path scope. Scopes are expressed on
//! workspace-relative, forward-slash paths; test code (`#[cfg(test)]`
//! regions, `tests/`, `benches/`, `examples/` trees) is exempt from
//! every rule, and *bin* code (`src/bin/`, `src/main.rs`) is exempt
//! from the library-only rules.

/// The simulation crates whose iteration order feeds simulated state —
/// the blast radius of a `HashMap` walk reaching an event order.
const SIM_CRATES: [&str; 4] = [
    "crates/system/",
    "crates/pim-mem/",
    "crates/pim-sim/",
    "crates/workload/",
];

/// Crates exempt from the wall-clock/safety rules: `bench` *measures*
/// wall time by design, and `compat` mirrors upstream crate APIs.
const TOOLING_CRATES: [&str; 2] = ["crates/bench/", "crates/compat/"];

/// Path scope of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only the simulation crates (`SIM_CRATES`:
    /// system, pim-mem, pim-sim, workload).
    SimCrates,
    /// Everywhere except the tooling crates (bench, compat).
    NonTooling,
    /// Everywhere except the tooling crates and bin code
    /// (`src/bin/`, `src/main.rs`) — "library code".
    LibraryCode,
}

impl Scope {
    /// Whether `rel` (workspace-relative, forward slashes) is in scope.
    pub fn contains(self, rel: &str) -> bool {
        let is_tooling = TOOLING_CRATES.iter().any(|p| rel.starts_with(p));
        match self {
            Scope::SimCrates => SIM_CRATES.iter().any(|p| rel.starts_with(p)),
            Scope::NonTooling => !is_tooling,
            Scope::LibraryCode => {
                !is_tooling && !rel.contains("/src/bin/") && !rel.ends_with("src/main.rs")
            }
        }
    }
}

/// One lint rule.
pub struct Rule {
    /// Stable identifier (used in waivers and `simlint.toml`).
    pub id: &'static str,
    /// One-line description for `--list-rules` and the README.
    pub summary: &'static str,
    /// Path scope.
    pub scope: Scope,
    /// Matcher: scrubbed code line → finding message (None = clean).
    pub check: fn(&str) -> Option<String>,
}

/// The rule table, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "nondet-iter",
        summary: "HashMap/HashSet in simulation crates: iteration order is \
                  nondeterministic; use BTreeMap/BTreeSet, sorted keys, or waive \
                  a keyed-only site with a reason",
        scope: Scope::SimCrates,
        check: check_nondet_iter,
    },
    Rule {
        id: "wall-clock",
        summary: "Instant::now/SystemTime outside bench/compat: wall time must \
                  never reach simulated time",
        scope: Scope::NonTooling,
        check: check_wall_clock,
    },
    Rule {
        id: "unseeded-rng",
        summary: "entropy-seeded RNG (thread_rng/from_entropy/OsRng): every \
                  stream must derive from an explicit u64 seed",
        scope: Scope::NonTooling,
        check: check_unseeded_rng,
    },
    Rule {
        id: "float-key",
        summary: "float ordering without a total order: use f64::total_cmp or \
                  to_bits keys (the event-calendar pattern)",
        scope: Scope::SimCrates,
        check: check_float_key,
    },
    Rule {
        id: "unwrap-in-lib",
        summary: "unwrap()/expect(\"\") in library code: name the violated \
                  invariant in an expect message or restructure",
        scope: Scope::LibraryCode,
        check: check_unwrap_in_lib,
    },
    Rule {
        id: "stray-debug",
        summary: "dbg!/todo!/unimplemented!/println! in library code",
        scope: Scope::LibraryCode,
        check: check_stray_debug,
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `code[i..]` starts the identifier `word` on identifier
/// boundaries (`HashMap` does not match inside `MyHashMapExt`).
fn token_at(code: &str, i: usize, word: &str) -> bool {
    if !code[i..].starts_with(word) {
        return false;
    }
    let before_ok = i == 0
        || !code[..i]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = code[i + word.len()..].chars().next();
    let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Whether `code` contains `word` as a standalone identifier.
pub fn has_token(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let i = start + pos;
        if token_at(code, i, word) {
            return true;
        }
        start = i + 1;
    }
    false
}

fn check_nondet_iter(code: &str) -> Option<String> {
    for ty in ["HashMap", "HashSet"] {
        if has_token(code, ty) {
            return Some(format!(
                "{ty} in a simulation crate: iteration order is nondeterministic \
                 and can leak into replay order; use BTreeMap/BTreeSet or a \
                 sorted-key walk, or waive a keyed-only site"
            ));
        }
    }
    None
}

fn check_wall_clock(code: &str) -> Option<String> {
    if code.contains("Instant::now") {
        return Some(
            "Instant::now() reads the wall clock; simulated time must come from \
             the virtual clock"
                .to_string(),
        );
    }
    if has_token(code, "SystemTime") {
        return Some(
            "SystemTime reads the wall clock; simulated time must come from the \
             virtual clock"
                .to_string(),
        );
    }
    None
}

fn check_unseeded_rng(code: &str) -> Option<String> {
    for tok in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
        if has_token(code, tok) {
            return Some(format!(
                "{tok} seeds randomness from process entropy; derive every \
                 stream from an explicit u64 seed (SeedableRng::seed_from_u64)"
            ));
        }
    }
    if code.contains("rand::random") {
        return Some(
            "rand::random draws from the entropy-seeded thread RNG; derive \
             every stream from an explicit u64 seed"
                .to_string(),
        );
    }
    None
}

fn check_float_key(code: &str) -> Option<String> {
    if has_token(code, "partial_cmp") {
        return Some(
            "partial_cmp is not a total order (NaN); order floats with \
             f64::total_cmp or compare to_bits keys"
                .to_string(),
        );
    }
    if code.contains("total_cmp") || code.contains("to_bits") {
        return None;
    }
    for call in [".sort_by(", ".min_by(", ".max_by(", ".binary_search_by("] {
        if code.contains(call) {
            return Some(format!(
                "{} takes a comparator (usually written for floats); if the key \
                 is a float, order with f64::total_cmp or to_bits",
                &call[1..call.len() - 1]
            ));
        }
    }
    None
}

fn check_unwrap_in_lib(code: &str) -> Option<String> {
    // `.unwrap()` — allow whitespace between the token and the parens.
    let mut start = 0;
    while let Some(pos) = code[start..].find("unwrap") {
        let i = start + pos;
        if token_at(code, i, "unwrap") {
            let rest = code[i + "unwrap".len()..].trim_start();
            if rest.starts_with("()") {
                return Some(
                    "bare unwrap() in library code; use expect(\"<violated \
                     invariant>\") or restructure to avoid the panic"
                        .to_string(),
                );
            }
        }
        start = i + 1;
    }
    // `expect("")` — an empty message is a bare unwrap in disguise.
    let mut start = 0;
    while let Some(pos) = code[start..].find("expect") {
        let i = start + pos;
        if token_at(code, i, "expect") {
            let rest = code[i + "expect".len()..].trim_start();
            // Scrubbing blanks string contents but keeps the quotes,
            // so only a truly empty message still reads `""` here.
            let inner = rest.strip_prefix('(').map(str::trim_start);
            if inner.is_some_and(|s| s.starts_with("\"\")")) {
                return Some(
                    "expect(\"\") carries no invariant; name what was violated".to_string(),
                );
            }
        }
        start = i + 1;
    }
    None
}

fn check_stray_debug(code: &str) -> Option<String> {
    for mac in [
        "dbg!",
        "todo!",
        "unimplemented!",
        "println!",
        "eprintln!",
        "print!",
        "eprint!",
    ] {
        let word = &mac[..mac.len() - 1];
        let mut start = 0;
        while let Some(pos) = code[start..].find(word) {
            let i = start + pos;
            if token_at(code, i, word) && code[i + word.len()..].starts_with('!') {
                return Some(format!(
                    "{mac} in library code; route output through return values \
                     or the bench binaries"
                ));
            }
            start = i + 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_partition_the_tree() {
        assert!(Scope::SimCrates.contains("crates/system/src/replica.rs"));
        assert!(Scope::SimCrates.contains("crates/pim-mem/src/page.rs"));
        assert!(!Scope::SimCrates.contains("crates/bench/src/lib.rs"));
        assert!(!Scope::SimCrates.contains("crates/jsonio/src/lib.rs"));
        assert!(Scope::NonTooling.contains("crates/system/src/lib.rs"));
        assert!(!Scope::NonTooling.contains("crates/bench/src/bin/sim_speed.rs"));
        assert!(!Scope::NonTooling.contains("crates/compat/rand/src/lib.rs"));
        assert!(Scope::LibraryCode.contains("crates/jsonio/src/lib.rs"));
        assert!(!Scope::LibraryCode.contains("crates/simlint/src/main.rs"));
        assert!(!Scope::LibraryCode.contains("crates/bench/src/bin/sim_speed.rs"));
    }

    #[test]
    fn nondet_iter_matches_types_not_substrings() {
        assert!(check_nondet_iter("let m: HashMap<u64, u64> = HashMap::new();").is_some());
        assert!(check_nondet_iter("use std::collections::HashSet;").is_some());
        assert!(check_nondet_iter("let m = MyHashMapExt::new();").is_none());
        assert!(check_nondet_iter("let m: BTreeMap<u64, u64> = BTreeMap::new();").is_none());
    }

    #[test]
    fn wall_clock_matches_both_clocks() {
        assert!(check_wall_clock("let t0 = Instant::now();").is_some());
        assert!(check_wall_clock("let t = SystemTime::now();").is_some());
        assert!(check_wall_clock("let instant = make_instant();").is_none());
    }

    #[test]
    fn unseeded_rng_matches_entropy_sources() {
        assert!(check_unseeded_rng("let mut rng = rand::thread_rng();").is_some());
        assert!(check_unseeded_rng("let rng = StdRng::from_entropy();").is_some());
        assert!(check_unseeded_rng("let x: u64 = rand::random();").is_some());
        assert!(check_unseeded_rng("let rng = StdRng::seed_from_u64(42);").is_none());
    }

    #[test]
    fn float_key_flags_partial_cmp_and_comparators_without_total_cmp() {
        assert!(check_float_key("v.sort_by(|a, b| a.partial_cmp(b).unwrap());").is_some());
        assert!(check_float_key("v.sort_by(|a, b| custom(a, b));").is_some());
        assert!(check_float_key("v.sort_by(f64::total_cmp);").is_none());
        assert!(check_float_key("heap.push(Reverse((t.to_bits(), i)));").is_none());
        assert!(check_float_key("v.sort_by_key(|r| (r.arrival_us, r.id));").is_none());
    }

    #[test]
    fn unwrap_in_lib_flags_bare_unwrap_and_empty_expect() {
        assert!(check_unwrap_in_lib("let x = m.get(&k).unwrap();").is_some());
        assert!(check_unwrap_in_lib("let x = m.get(&k).expect(\"\");").is_some());
        assert!(check_unwrap_in_lib("let x = m.get(&k).expect(\"key was inserted\");").is_none());
        assert!(check_unwrap_in_lib("let x = m.unwrap_or(0);").is_none());
        assert!(check_unwrap_in_lib("let x = r.unwrap_err();").is_none());
    }

    #[test]
    fn stray_debug_flags_debug_macros_only() {
        assert!(check_stray_debug("dbg!(x);").is_some());
        assert!(check_stray_debug("todo!()").is_some());
        assert!(check_stray_debug("println!(\"x\");").is_some());
        assert!(check_stray_debug("writeln!(f, \"x\")?;").is_none());
        assert!(check_stray_debug("self.print_report();").is_none());
    }
}
