//! `simlint`: a determinism-safety static-analysis pass for the
//! simulator workspace.
//!
//! The repository's correctness story rests on **replay determinism**:
//! byte-identical serving reports across thread counts, bit-exact
//! golden pins, and an event-replay merge. Nothing in the type system
//! protects that property — a `HashMap` iteration reaching an event
//! order, a wall-clock read leaking into simulated time, or an
//! entropy-seeded RNG all compile fine and break replay silently.
//! `simlint` closes that gap with a lightweight, dependency-free source
//! scanner: a comment/string-aware line scrubber ([`scan`]) feeding a
//! per-line rule engine ([`rules`]), with two waiver mechanisms —
//! inline `// simlint: allow(<rule>): <reason>` annotations and a
//! path-scoped `simlint.toml` allowlist ([`config`]).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p simlint -- --check
//! ```
//!
//! Findings print as `file:line: rule: message`, one per line, sorted;
//! `--check` exits nonzero when any survive the waivers. The repo
//! itself must lint clean — enforced by CI and by the crate's own
//! self-check integration test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod doccheck;
pub mod rules;
pub mod scan;
pub mod walk;

use config::Config;
use rules::{Rule, RULES};
use scan::{parse_waiver, WaiverParse};
use std::fmt;
use std::path::Path;

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Rule identifier (`waiver-syntax` for malformed waivers).
    pub rule: String,
    /// Explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Whether `rel` lies in a test-only tree (integration tests, criterion
/// benches, runnable examples) — exempt from every rule.
fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Lints one file's source text. `rel_path` is the workspace-relative
/// path used for rule scoping, waiver lookup, and reporting.
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_test_path(rel_path) {
        return findings;
    }
    let scrubbed = scan::scrub(source);
    let active: Vec<&Rule> = RULES
        .iter()
        .filter(|r| r.scope.contains(rel_path))
        .collect();
    // Waivers per line: an inline waiver covers its own line and the
    // line directly below it (so it can sit above the flagged line).
    let waivers: Vec<Option<scan::Waiver>> = scrubbed
        .lines
        .iter()
        .enumerate()
        .map(|(i, l)| match parse_waiver(&l.comment) {
            WaiverParse::Ok(w) => Some(w),
            WaiverParse::Malformed(_) if l.in_test => None,
            WaiverParse::Malformed(why) => {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: i + 1,
                    rule: "waiver-syntax".to_string(),
                    message: format!("malformed simlint waiver: {why}"),
                });
                None
            }
            WaiverParse::None => None,
        })
        .collect();
    let waived = |line_idx: usize, rule: &str| -> bool {
        let here = waivers[line_idx].as_ref();
        let above = line_idx.checked_sub(1).and_then(|i| waivers[i].as_ref());
        here.into_iter()
            .chain(above)
            .any(|w| w.rules.iter().any(|r| r == rule))
    };
    for (i, line) in scrubbed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for rule in &active {
            let Some(message) = (rule.check)(&line.code) else {
                continue;
            };
            if waived(i, rule.id) || cfg.allows(rule.id, rel_path) {
                continue;
            }
            findings.push(Finding {
                path: rel_path.to_string(),
                line: i + 1,
                rule: rule.id.to_string(),
                message,
            });
        }
    }
    findings.sort();
    findings
}

/// Lints every Rust file under `root` (honoring the walk exemptions in
/// [`walk`]), applying `cfg`. Findings come back sorted by path, line,
/// then rule.
///
/// # Errors
/// Returns a message for unreadable files or directories.
pub fn lint_root(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    lint_paths(root, &[], cfg)
}

/// Lints `targets` (files or directories, relative to `root`; empty =
/// the whole root), scoping and reporting every file relative to
/// `root` so rule scopes and `simlint.toml` prefixes apply identically
/// whether a file is reached by a walk or named explicitly.
///
/// # Errors
/// Returns a message for unreadable files or directories.
pub fn lint_paths(
    root: &Path,
    targets: &[std::path::PathBuf],
    cfg: &Config,
) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    if targets.is_empty() {
        files = walk::rust_files(root).map_err(|e| e.to_string())?;
    } else {
        for t in targets {
            files.extend(walk::rust_files(&root.join(t)).map_err(|e| e.to_string())?);
        }
    }
    let mut findings = Vec::new();
    for file in files {
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &source, cfg));
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Loads `<root>/simlint.toml` if present (absent = empty config).
///
/// # Errors
/// Returns the parse error message for a malformed config.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("simlint.toml");
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn sim_crate_hashmap_is_flagged_and_btreemap_is_not() {
        let bad = "use std::collections::HashMap;\n";
        let f = lint_source("crates/system/src/replica.rs", bad, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondet-iter");
        assert_eq!(f[0].line, 1);
        let good = "use std::collections::BTreeMap;\n";
        assert!(lint_source("crates/system/src/replica.rs", good, &cfg()).is_empty());
    }

    #[test]
    fn hashmap_outside_sim_crates_is_not_flagged() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint_source("crates/jsonio/src/lib.rs", src, &cfg()).is_empty());
    }

    #[test]
    fn inline_waiver_silences_same_and_next_line() {
        let trailing = "let m = HashMap::new(); // simlint: allow(nondet-iter): keyed only\n";
        assert!(lint_source("crates/system/src/x.rs", trailing, &cfg()).is_empty());
        let above = "// simlint: allow(nondet-iter): keyed only\nlet m = HashMap::new();\n";
        assert!(lint_source("crates/system/src/x.rs", above, &cfg()).is_empty());
        let elsewhere =
            "// simlint: allow(nondet-iter): keyed only\nlet a = 1;\nlet m = HashMap::new();\n";
        assert_eq!(
            lint_source("crates/system/src/x.rs", elsewhere, &cfg()).len(),
            1
        );
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_silence() {
        let src = "let m = HashMap::new(); // simlint: allow(wall-clock): wrong rule\n";
        let f = lint_source("crates/system/src/x.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondet-iter");
    }

    #[test]
    fn malformed_waiver_is_itself_a_finding() {
        let src = "let m = HashMap::new(); // simlint: allow(nondet-iter)\n";
        let f = lint_source("crates/system/src/x.rs", src, &cfg());
        assert!(f.iter().any(|x| x.rule == "waiver-syntax"));
        assert!(f.iter().any(|x| x.rule == "nondet-iter"), "no silencing");
    }

    #[test]
    fn config_allowlist_scopes_by_path_prefix() {
        let cfg = config::parse(
            "[[allow]]\nrule = \"nondet-iter\"\npath = \"crates/system/src/kernel.rs\"\nreason = \"keyed only\"\n",
        )
        .unwrap();
        let src = "let m = HashMap::new();\n";
        assert!(lint_source("crates/system/src/kernel.rs", src, &cfg).is_empty());
        assert_eq!(
            lint_source("crates/system/src/replica.rs", src, &cfg).len(),
            1
        );
    }

    #[test]
    fn cfg_test_code_and_test_trees_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/system/src/x.rs", src, &cfg()).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(lint_source("tests/cluster_properties.rs", unwrap, &cfg()).is_empty());
        assert!(lint_source("crates/bench/benches/simulator.rs", unwrap, &cfg()).is_empty());
    }

    #[test]
    fn strings_and_comments_cannot_trip_rules() {
        let src = "let s = \"Instant::now()\"; // Instant::now in prose\n";
        assert!(lint_source("crates/system/src/x.rs", src, &cfg()).is_empty());
    }

    #[test]
    fn wall_clock_and_unwrap_and_debug_rules_fire_in_lib_code() {
        let src = "fn f() {\n    let t = Instant::now();\n    let x = o.unwrap();\n    println!(\"{x:?}\");\n}\n";
        let f = lint_source("crates/system/src/x.rs", src, &cfg());
        let rules: Vec<&str> = f.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(rules, ["wall-clock", "unwrap-in-lib", "stray-debug"]);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        assert_eq!(f[2].line, 4);
    }

    #[test]
    fn bench_and_bin_code_are_exempt_from_the_lib_rules() {
        let src = "fn main() { let t = Instant::now(); println!(\"hi\"); }\n";
        assert!(lint_source("crates/bench/src/bin/sim_speed.rs", src, &cfg()).is_empty());
        let bin = "fn main() { println!(\"hi\"); o.unwrap(); }\n";
        assert!(lint_source("crates/simlint/src/main.rs", bin, &cfg()).is_empty());
    }

    #[test]
    fn findings_render_as_file_line_rule_message() {
        let f = Finding {
            path: "crates/system/src/replica.rs".into(),
            line: 42,
            rule: "nondet-iter".into(),
            message: "HashMap in a simulation crate".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/system/src/replica.rs:42: nondet-iter: HashMap in a simulation crate"
        );
    }
}
