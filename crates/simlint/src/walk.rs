//! Deterministic workspace file discovery.
//!
//! Collects `*.rs` files under a root, skipping build output
//! (`target/`), VCS metadata (dot-directories), and `fixtures/` trees
//! (seeded lint-violation corpora used by simlint's own tests; they are
//! linted by pointing the tool *at* them explicitly, never as part of a
//! workspace walk). Results are sorted so findings print in a stable
//! order on every machine.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into during a walk.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

/// Recursively collects `.rs` files under `root`, sorted by path. If
/// `root` is itself a file, returns just that file (this is how seeded
/// fixture files are linted despite the `fixtures/` walk exemption).
///
/// # Errors
/// Propagates I/O errors with the offending path prepended.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(out);
    }
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = fs::read_dir(dir)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_skips_target_and_fixtures() {
        assert!(skip_dir("target"));
        assert!(skip_dir("fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("src"));
        assert!(!skip_dir("tests"));
    }

    #[test]
    fn walking_this_crate_finds_its_sources_sorted() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        assert!(files.iter().any(|f| f.ends_with("src/walk.rs")));
        assert!(
            !files
                .iter()
                .any(|f| f.components().any(|c| c.as_os_str() == "fixtures")),
            "fixtures are exempt from walks"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
