//! `simlint.toml`: the path-scoped waiver list.
//!
//! The config is a sequence of `[[allow]]` entries, each silencing one
//! rule under one workspace-relative path prefix with a written reason:
//!
//! ```toml
//! [[allow]]
//! rule = "nondet-iter"
//! path = "crates/system/src/kernel.rs"
//! reason = "memo caches are keyed get/insert only; never iterated"
//! ```
//!
//! The parser covers exactly this shape (array-of-tables with string
//! values, `#` comments) — the workspace builds offline, so no TOML
//! crate is available — and rejects anything else loudly rather than
//! guessing: an allowlist that silently drops entries would be worse
//! than none.

use crate::rules::rule_by_id;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule identifier (must exist in [`crate::rules::RULES`]).
    pub rule: String,
    /// Workspace-relative path prefix the waiver covers.
    pub path: String,
    /// Written justification (mandatory, non-empty).
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Path-scoped waivers, in file order.
    pub allows: Vec<Allow>,
}

impl Config {
    /// Whether `(rule, path)` is silenced by an `[[allow]]` entry.
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && rel_path.starts_with(&a.path))
    }
}

/// Parses `simlint.toml` text.
///
/// # Errors
/// Returns a human-readable message (with a line number) for any
/// construct outside the supported subset, an unknown rule id, or an
/// incomplete entry.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut allows: Vec<Allow> = Vec::new();
    // Fields of the entry currently being filled.
    let mut current: Option<(Option<String>, Option<String>, Option<String>)> = None;
    let finish = |entry: (Option<String>, Option<String>, Option<String>),
                  line_no: usize|
     -> Result<Allow, String> {
        let (rule, path, reason) = entry;
        let rule = rule.ok_or(format!("line {line_no}: [[allow]] entry missing `rule`"))?;
        let path = path.ok_or(format!("line {line_no}: [[allow]] entry missing `path`"))?;
        let reason = reason.ok_or(format!("line {line_no}: [[allow]] entry missing `reason`"))?;
        if rule_by_id(&rule).is_none() {
            return Err(format!("line {line_no}: unknown rule `{rule}`"));
        }
        if reason.trim().is_empty() {
            return Err(format!("line {line_no}: empty `reason`"));
        }
        Ok(Allow { rule, path, reason })
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(entry) = current.take() {
                allows.push(finish(entry, line_no)?);
            }
            current = Some((None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {line_no}: expected `key = \"value\"`, got `{line}`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or(format!(
                "line {line_no}: `{key}` value must be a quoted string"
            ))?
            .to_string();
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "line {line_no}: `{key}` outside an [[allow]] entry"
            ));
        };
        let slot = match key {
            "rule" => &mut entry.0,
            "path" => &mut entry.1,
            "reason" => &mut entry.2,
            other => return Err(format!("line {line_no}: unknown key `{other}`")),
        };
        if slot.is_some() {
            return Err(format!("line {line_no}: duplicate key `{key}`"));
        }
        *slot = Some(value);
    }
    if let Some(entry) = current.take() {
        let last = text.lines().count();
        allows.push(finish(entry, last)?);
    }
    Ok(Config { allows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_scopes_by_prefix() {
        let cfg = parse(
            "# comment\n\n[[allow]]\nrule = \"nondet-iter\"\npath = \"crates/system/src/kernel.rs\"\nreason = \"keyed only\"\n\n[[allow]]\nrule = \"stray-debug\"\npath = \"crates/pimphony/\"\nreason = \"demo prints\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.allows("nondet-iter", "crates/system/src/kernel.rs"));
        assert!(!cfg.allows("nondet-iter", "crates/system/src/replica.rs"));
        assert!(cfg.allows("stray-debug", "crates/pimphony/src/lib.rs"));
        assert!(!cfg.allows("unwrap-in-lib", "crates/pimphony/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_missing_fields() {
        assert!(
            parse("[[allow]]\nrule = \"no-such-rule\"\npath = \"x\"\nreason = \"r\"\n")
                .unwrap_err()
                .contains("unknown rule")
        );
        assert!(parse("[[allow]]\nrule = \"nondet-iter\"\npath = \"x\"\n")
            .unwrap_err()
            .contains("missing `reason`"));
        assert!(parse("rule = \"nondet-iter\"\n")
            .unwrap_err()
            .contains("outside an [[allow]]"));
        assert!(parse("[[allow]]\nrule = nondet-iter\n")
            .unwrap_err()
            .contains("quoted string"));
    }

    #[test]
    fn empty_config_allows_nothing() {
        let cfg = parse("").unwrap();
        assert!(!cfg.allows("nondet-iter", "crates/system/src/replica.rs"));
    }
}
