//! `doccheck` CLI: the Markdown link checker of the `docs/` layer.
//!
//! ```text
//! doccheck [--root DIR] [FILE...]
//! ```
//!
//! * `--root DIR`  workspace root (default `.`): with no explicit
//!   files, checks `DIR/README.md` plus every `DIR/docs/*.md`.
//! * `FILE...`     check only these Markdown files.
//!
//! Findings print to stdout as `file:line: message`; the exit code is
//! nonzero when any link is broken (there is no non-check mode — a
//! broken doc link is never acceptable). External `http(s)` targets are
//! skipped: the checker runs offline and only guards the repository's
//! own cross-references.

use simlint::doccheck::{check_files, default_docs};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(v) => root = PathBuf::from(v),
                    None => return usage("--root needs a directory"),
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: doccheck [--root DIR] [FILE...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            path => files.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if files.is_empty() {
        files = default_docs(&root);
    }
    if files.is_empty() {
        eprintln!(
            "doccheck: no Markdown files to check under {}",
            root.display()
        );
        return ExitCode::from(2);
    }
    match check_files(&files) {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("doccheck: {} file(s) clean", files.len());
                ExitCode::SUCCESS
            } else {
                eprintln!("doccheck: {} broken link(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("doccheck: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("doccheck: {msg}");
    eprintln!("usage: doccheck [--root DIR] [FILE...]");
    ExitCode::from(2)
}
