//! Decoder-subgraph compiler for PIM (paper §VII-A).
//!
//! The paper implements PIMphony as MLIR passes over transformer decoding
//! graphs. This crate reproduces the part that matters for the evaluation:
//!
//! * [`ir`] — a typed IR for decoder layers (projections, `QKᵀ`, softmax,
//!   `SV`, FFN).
//! * [`pattern`] — pattern matching that finds the PIM-amenable subgraphs
//!   (attention and FC kernels) in a decoder graph.
//! * [`partition`] — workload partitioning across a module's channels:
//!   conventional Head-First Partitioning (HFP) vs PIMphony's
//!   Token-Centric Partitioning (TCP), under tensor or pipeline
//!   parallelism (paper §IV, Fig. 6).
//! * [`lower`] — lowering of attention work to PIM instruction streams,
//!   either statically expanded for `T_max` or DPA-encoded (`Dyn-Loop` /
//!   `Dyn-Modi`) for runtime expansion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ir;
pub mod lower;
pub mod partition;
pub mod pattern;

pub use ir::{DecoderGraph, Op, OpId, OpKind};
pub use lower::{
    compile_layer, lower_attention_dpa, lower_attention_static, lower_sv_dpa, CompiledLayer,
    LoweredFootprint,
};
pub use partition::{ChannelWork, ModulePartition, ParallelConfig, Partitioning, RequestSlice};
