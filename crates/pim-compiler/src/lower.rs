//! Lowering attention work to PIM instruction streams.
//!
//! Two encodings are produced for the same kernel (paper Fig. 10):
//!
//! * **Static** — fully expanded for a worst-case `T_max`; physical row
//!   addresses are baked in, so the stream grows linearly with context.
//! * **DPA** — a compact [`DpaProgram`] using `Dyn-Loop` over the token
//!   axis and `Dyn-Modi` row advancement; virtual rows are resolved by the
//!   on-module dispatcher at decode time.

use pim_isa::dpa::{DpaInstruction, DpaProgram, DynLoop, DynModi, LoopBound, OperandField};
use pim_isa::size_model::{DYN_LOOP_BYTES, DYN_MODI_BYTES, PLAIN_INSTRUCTION_BYTES};
use pim_isa::{ChannelMask, PimInstruction};
use serde::Serialize;

/// Shape of one channel's attention kernel for lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttentionLowering {
    /// Channels the instruction stream is multicast to.
    pub channels: u8,
    /// Per-head feature dimension.
    pub head_dim: u32,
    /// Elements per tile (16 for fp16).
    pub elems_per_tile: u32,
    /// Banks per channel.
    pub banks: u32,
}

impl AttentionLowering {
    /// AiMX-flavoured default.
    pub fn aimx_default() -> Self {
        AttentionLowering {
            channels: 16,
            head_dim: 128,
            elems_per_tile: 16,
            banks: 16,
        }
    }

    fn in_tiles(&self) -> u32 {
        self.head_dim.div_ceil(self.elems_per_tile)
    }

    /// Tokens covered by one loop iteration (one output group spans
    /// `banks` tokens on each of `channels` channels).
    pub fn tokens_per_iteration(&self) -> u32 {
        u32::from(self.channels) * self.banks
    }
}

/// Byte footprint of a lowered kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LoweredFootprint {
    /// Stored instruction bytes.
    pub bytes: u64,
    /// Stored instruction count.
    pub instructions: u64,
}

/// Lowers one `QKᵀ` kernel to a DPA program: write the query once, then a
/// `Dyn-Loop` over token groups with `Dyn-Modi` advancing the virtual
/// row/column and output address.
pub fn lower_attention_dpa(shape: &AttentionLowering) -> DpaProgram {
    let mask = ChannelMask::first(shape.channels);
    let in_tiles = shape.in_tiles();
    let mut program = DpaProgram::new();
    // Query tiles into GBuf.
    program.push(DpaInstruction::Plain(PimInstruction::wr_inp(
        mask, in_tiles, 0, 0,
    )));
    // One iteration per token group: in_tiles MACs + one RD-OUT.
    let body = vec![
        DpaInstruction::Plain(PimInstruction::mac(mask, in_tiles, 0, 0, 0, 0)),
        DpaInstruction::Plain(PimInstruction::rd_out(mask, 1, 0, 0)),
    ];
    program.push(DpaInstruction::Loop(DynLoop {
        bound: LoopBound::TokensDiv {
            divisor: shape.tokens_per_iteration(),
        },
        body,
        modifiers: vec![
            // Advance the MAC's virtual column by the group's tile span;
            // the dispatcher folds overflow into the virtual row.
            DynModi::new(0, OperandField::Col, i64::from(in_tiles)),
            // Stagger the drain target across iterations.
            DynModi::new(1, OperandField::GprAddr, 32),
        ],
    }));
    program
}

/// Lowers one `QKᵀ` kernel to a fully expanded static stream sized for
/// `t_max` tokens.
pub fn lower_attention_static(shape: &AttentionLowering, t_max: u64) -> Vec<PimInstruction> {
    let mask = ChannelMask::first(shape.channels);
    let in_tiles = shape.in_tiles();
    let groups = t_max.div_ceil(u64::from(shape.tokens_per_iteration()));
    let mut out = Vec::with_capacity(1 + 2 * groups as usize);
    out.push(PimInstruction::wr_inp(mask, in_tiles, 0, 0));
    for grp in 0..groups {
        let col = (grp * u64::from(in_tiles)) as u16;
        out.push(PimInstruction::mac(mask, in_tiles, 0, 0, col, 0));
        out.push(PimInstruction::rd_out(mask, 1, (grp * 32) as u32, 0));
    }
    out
}

/// Footprint of a static lowering at `t_max`.
pub fn static_footprint(shape: &AttentionLowering, t_max: u64) -> LoweredFootprint {
    let n = lower_attention_static(shape, t_max).len() as u64;
    LoweredFootprint {
        bytes: n * PLAIN_INSTRUCTION_BYTES,
        instructions: n,
    }
}

/// Footprint of the DPA lowering (context-independent).
pub fn dpa_footprint(shape: &AttentionLowering) -> LoweredFootprint {
    let program = lower_attention_dpa(shape);
    let mut bytes = 0u64;
    let mut instructions = 0u64;
    fn walk(insts: &[DpaInstruction], bytes: &mut u64, count: &mut u64) {
        for i in insts {
            match i {
                DpaInstruction::Plain(_) => {
                    *bytes += PLAIN_INSTRUCTION_BYTES;
                    *count += 1;
                }
                DpaInstruction::Loop(l) => {
                    *bytes += DYN_LOOP_BYTES + l.modifiers.len() as u64 * DYN_MODI_BYTES;
                    *count += 1;
                    walk(&l.body, bytes, count);
                }
            }
        }
    }
    walk(program.instructions(), &mut bytes, &mut instructions);
    LoweredFootprint {
        bytes,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpa_expansion_matches_static_command_counts() {
        let shape = AttentionLowering::aimx_default();
        for t in [4096u64, 32 * 1024, 128 * 1024] {
            let dpa = lower_attention_dpa(&shape).expand(t);
            let stat = lower_attention_static(&shape, t);
            assert_eq!(dpa.len(), stat.len(), "t={t}");
        }
    }

    #[test]
    fn dpa_footprint_is_context_free_and_small() {
        let shape = AttentionLowering::aimx_default();
        let d = dpa_footprint(&shape);
        let s4k = static_footprint(&shape, 4096);
        let s1m = static_footprint(&shape, 1 << 20);
        assert!(d.bytes < s4k.bytes);
        assert!(s1m.bytes > 100 * s4k.bytes / 2, "static grows ~linearly");
        // DPA is hundreds of times smaller at 1M tokens.
        assert!(s1m.bytes / d.bytes > 1000, "ratio {}", s1m.bytes / d.bytes);
    }

    #[test]
    fn static_stream_is_linear_in_tmax() {
        let shape = AttentionLowering::aimx_default();
        let a = static_footprint(&shape, 64 * 1024).instructions;
        let b = static_footprint(&shape, 128 * 1024).instructions;
        let ratio = b as f64 / a as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn dpa_rows_advance_via_modifier() {
        let shape = AttentionLowering::aimx_default();
        let insts = lower_attention_dpa(&shape).expand(3 * 256);
        let mac_cols: Vec<u16> = insts
            .iter()
            .filter(|i| i.kind == pim_isa::InstructionKind::Mac)
            .map(|i| i.col)
            .collect();
        assert_eq!(mac_cols, vec![0, 8, 16]);
    }

    #[test]
    fn tokens_per_iteration_matches_geometry() {
        let shape = AttentionLowering::aimx_default();
        assert_eq!(shape.tokens_per_iteration(), 256);
    }
}

/// Lowers one `SV` kernel to a DPA program: the token axis is the *input*
/// here, so the loop streams score tiles (`WR-INP`) and accumulates, with
/// periodic partial drains (`RD-OUT`) folded in by the dispatcher.
pub fn lower_sv_dpa(shape: &AttentionLowering) -> DpaProgram {
    let mask = ChannelMask::first(shape.channels);
    let out_groups = shape.head_dim.div_ceil(shape.banks).max(1);
    let mut program = DpaProgram::new();
    // One iteration per 16-token score tile: write the tile, then one MAC
    // per output-feature group, advancing the virtual column.
    let mut body = Vec::with_capacity(2 + out_groups as usize);
    body.push(DpaInstruction::Plain(PimInstruction::wr_inp(mask, 1, 0, 0)));
    body.push(DpaInstruction::Plain(PimInstruction::mac(
        mask, out_groups, 0, 0, 0, 0,
    )));
    program.push(DpaInstruction::Loop(DynLoop {
        bound: LoopBound::TokensDiv {
            divisor: shape.elems_per_tile * u32::from(shape.channels),
        },
        body,
        modifiers: vec![
            DynModi::new(0, OperandField::GprAddr, 32),
            DynModi::new(1, OperandField::Col, i64::from(out_groups)),
        ],
    }));
    // Final drains of the accumulated output features.
    program.push(DpaInstruction::Plain(PimInstruction::rd_out(
        mask, out_groups, 0, 0,
    )));
    program
}

/// DPA programs for every PIM-amenable kernel of a decoder layer: one
/// `QKᵀ` and one `SV` program per KV-head instance (context-dependent),
/// plus statically compiled FC GEMVs (context-independent).
#[derive(Debug, Clone, Serialize)]
pub struct CompiledLayer {
    /// The dynamic QKT program.
    pub qkt: DpaProgram,
    /// The dynamic SV program.
    pub sv: DpaProgram,
    /// Static instruction counts per FC op (dout, din, instructions).
    pub fc: Vec<(u32, u32, u64)>,
}

/// Compiles a decoder layer's matched patterns (see
/// [`crate::pattern`]) into PIM programs.
pub fn compile_layer(graph: &crate::ir::DecoderGraph, shape: &AttentionLowering) -> CompiledLayer {
    let attention = crate::pattern::match_attention(graph);
    assert!(
        !attention.is_empty(),
        "decoder layer has no attention pattern"
    );
    let fc = crate::pattern::match_fc(graph)
        .into_iter()
        .map(|m| {
            // One WR-INP pass + one MAC per (group, tile) + drains.
            let tiles = u64::from(m.din.div_ceil(shape.elems_per_tile));
            let groups = u64::from(m.dout.div_ceil(shape.banks));
            (m.dout, m.din, tiles + groups * tiles + groups)
        })
        .collect();
    CompiledLayer {
        qkt: lower_attention_dpa(shape),
        sv: lower_sv_dpa(shape),
        fc,
    }
}

#[cfg(test)]
mod layer_tests {
    use super::*;
    use crate::ir::DecoderGraph;
    use llm_model::LLM_7B_32K;

    #[test]
    fn sv_program_scales_with_tokens() {
        let shape = AttentionLowering::aimx_default();
        let p = lower_sv_dpa(&shape);
        let short = p.expand(4096).len();
        let long = p.expand(65536).len();
        assert!(long > 10 * short, "{short} -> {long}");
    }

    #[test]
    fn sv_program_is_compact() {
        let shape = AttentionLowering::aimx_default();
        assert!(lower_sv_dpa(&shape).stored_len() < 10);
    }

    #[test]
    fn compile_layer_covers_all_kernels() {
        let g = DecoderGraph::decoder_layer(&LLM_7B_32K);
        let shape = AttentionLowering::aimx_default();
        let layer = compile_layer(&g, &shape);
        assert_eq!(layer.fc.len(), 7);
        assert!(layer.qkt.expand(4096).len() > 1);
        assert!(layer.sv.expand(4096).len() > 1);
        // FC instruction counts grow with the op size.
        let ffn = layer
            .fc
            .iter()
            .find(|&&(o, _, _)| o == 12288)
            .expect("ffn up");
        let proj = layer
            .fc
            .iter()
            .find(|&&(o, i, _)| o == 4096 && i == 4096)
            .expect("q proj");
        assert!(ffn.2 > proj.2);
    }

    #[test]
    #[should_panic(expected = "no attention pattern")]
    fn compile_rejects_attention_free_graphs() {
        let g = DecoderGraph::new();
        compile_layer(&g, &AttentionLowering::aimx_default());
    }
}
