//! Typed IR for transformer decoder layers.
//!
//! A [`DecoderGraph`] is a small SSA-ish DAG of [`Op`]s. It exists to give
//! the pattern-matching pass (paper Fig. 12: "PIM-amenable kernel
//! detection") something faithful to match against; it is deliberately
//! minimal compared to MLIR.

use llm_model::ModelConfig;
use serde::Serialize;

/// Index of an op within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct OpId(pub u32);

/// Operation kinds appearing in decoder-layer graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OpKind {
    /// Dense projection / FC layer: `out[dout] = W[dout×din]·x`.
    Gemv {
        /// Output dimension.
        dout: u32,
        /// Input dimension.
        din: u32,
    },
    /// Attention score kernel over the (dynamic-length) KV cache.
    QkT {
        /// Query heads participating.
        heads: u32,
        /// Per-head dimension.
        head_dim: u32,
        /// GQA group size.
        gqa_group: u32,
    },
    /// Softmax over scores (EPU-executed).
    Softmax,
    /// Attention value kernel over the KV cache.
    Sv {
        /// Query heads participating.
        heads: u32,
        /// Per-head dimension.
        head_dim: u32,
        /// GQA group size.
        gqa_group: u32,
    },
    /// Elementwise activation (SiLU/GeLU; AF-unit LUT on PIM).
    Activation,
    /// Residual add / elementwise combine.
    Elementwise,
}

impl OpKind {
    /// Whether the op is a memory-bound GEMV-class kernel PIM should own.
    pub fn is_pim_amenable(&self) -> bool {
        matches!(
            self,
            OpKind::Gemv { .. } | OpKind::QkT { .. } | OpKind::Sv { .. }
        )
    }

    /// Whether the op touches the dynamic-length KV cache.
    pub fn is_attention_kernel(&self) -> bool {
        matches!(self, OpKind::QkT { .. } | OpKind::Sv { .. })
    }
}

/// One operation with its dataflow inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Op {
    /// The op's id.
    pub id: OpId,
    /// Operation kind and shape.
    pub kind: OpKind,
    /// Producer ops.
    pub inputs: Vec<OpId>,
    /// Debug label.
    pub label: &'static str,
}

/// A dataflow graph for one (or more) decoder layers.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DecoderGraph {
    ops: Vec<Op>,
}

impl DecoderGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op, returning its id.
    pub fn add(&mut self, kind: OpKind, inputs: Vec<OpId>, label: &'static str) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Op {
            id,
            kind,
            inputs,
            label,
        });
        id
    }

    /// The ops in insertion (topological) order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Looks up an op.
    pub fn op(&self, id: OpId) -> Option<&Op> {
        self.ops.get(id.0 as usize)
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Builds the canonical single-decoder-layer graph for `model`:
    /// Q/K/V projections → `QKᵀ` → softmax → `SV` → output projection →
    /// gated FFN, with residual adds.
    pub fn decoder_layer(model: &ModelConfig) -> Self {
        let mut g = DecoderGraph::new();
        let d = model.hidden_dim;
        let kv_dim = model.kv_heads() * model.head_dim;
        let input = g.add(OpKind::Elementwise, vec![], "layer-in");
        let q = g.add(OpKind::Gemv { dout: d, din: d }, vec![input], "q-proj");
        let k = g.add(
            OpKind::Gemv {
                dout: kv_dim,
                din: d,
            },
            vec![input],
            "k-proj",
        );
        let v = g.add(
            OpKind::Gemv {
                dout: kv_dim,
                din: d,
            },
            vec![input],
            "v-proj",
        );
        let qkt = g.add(
            OpKind::QkT {
                heads: model.heads,
                head_dim: model.head_dim,
                gqa_group: model.gqa_group,
            },
            vec![q, k],
            "qkt",
        );
        let sm = g.add(OpKind::Softmax, vec![qkt], "softmax");
        let sv = g.add(
            OpKind::Sv {
                heads: model.heads,
                head_dim: model.head_dim,
                gqa_group: model.gqa_group,
            },
            vec![sm, v],
            "sv",
        );
        let o = g.add(OpKind::Gemv { dout: d, din: d }, vec![sv], "o-proj");
        let res1 = g.add(OpKind::Elementwise, vec![input, o], "residual-1");
        let up = g.add(
            OpKind::Gemv {
                dout: model.ffn_dim,
                din: d,
            },
            vec![res1],
            "ffn-up",
        );
        let gate = g.add(
            OpKind::Gemv {
                dout: model.ffn_dim,
                din: d,
            },
            vec![res1],
            "ffn-gate",
        );
        let act = g.add(OpKind::Activation, vec![up, gate], "ffn-act");
        let down = g.add(
            OpKind::Gemv {
                dout: d,
                din: model.ffn_dim,
            },
            vec![act],
            "ffn-down",
        );
        let _res2 = g.add(OpKind::Elementwise, vec![res1, down], "residual-2");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::LLM_7B_32K;

    #[test]
    fn decoder_layer_has_expected_shape() {
        let g = DecoderGraph::decoder_layer(&LLM_7B_32K);
        assert_eq!(g.len(), 14);
        let gemvs = g
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Gemv { .. }))
            .count();
        assert_eq!(gemvs, 7, "q,k,v,o + up,gate,down");
        assert!(g.ops().iter().any(|o| matches!(o.kind, OpKind::QkT { .. })));
        assert!(g.ops().iter().any(|o| matches!(o.kind, OpKind::Sv { .. })));
    }

    #[test]
    fn inputs_reference_earlier_ops_only() {
        let g = DecoderGraph::decoder_layer(&LLM_7B_32K);
        for op in g.ops() {
            for inp in &op.inputs {
                assert!(inp.0 < op.id.0, "{:?} uses later op {:?}", op.id, inp);
            }
        }
    }

    #[test]
    fn amenability_classification() {
        assert!(OpKind::Gemv { dout: 1, din: 1 }.is_pim_amenable());
        assert!(OpKind::QkT {
            heads: 1,
            head_dim: 1,
            gqa_group: 1
        }
        .is_attention_kernel());
        assert!(!OpKind::Softmax.is_pim_amenable());
        assert!(!OpKind::Gemv { dout: 1, din: 1 }.is_attention_kernel());
    }

    #[test]
    fn gqa_projection_dims_shrink() {
        let g = DecoderGraph::decoder_layer(&llm_model::LLM_7B_128K_GQA);
        let k = g.ops().iter().find(|o| o.label == "k-proj").unwrap();
        match k.kind {
            OpKind::Gemv { dout, .. } => assert_eq!(dout, 8 * 128),
            _ => panic!("k-proj must be a GEMV"),
        }
    }
}
