//! Pattern matching over decoder graphs (paper Fig. 12).
//!
//! PIMphony's custom compiler passes detect transformer decoder patterns —
//! the attention pair (`QKᵀ` → softmax → `SV`) and the FC/FFN GEMVs — and
//! hand them to the PIM lowering pipeline.

use crate::ir::{DecoderGraph, OpId, OpKind};
use serde::Serialize;

/// A matched attention subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttentionMatch {
    /// The `QKᵀ` op.
    pub qkt: OpId,
    /// The softmax between the kernels.
    pub softmax: OpId,
    /// The `SV` op.
    pub sv: OpId,
    /// Heads.
    pub heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// GQA group size.
    pub gqa_group: u32,
}

/// A matched FC kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FcMatch {
    /// The GEMV op.
    pub op: OpId,
    /// Output dimension.
    pub dout: u32,
    /// Input dimension.
    pub din: u32,
}

/// Finds every `QKᵀ → softmax → SV` chain in the graph.
pub fn match_attention(graph: &DecoderGraph) -> Vec<AttentionMatch> {
    let mut out = Vec::new();
    for sv in graph.ops() {
        let (heads, head_dim, gqa_group) = match sv.kind {
            OpKind::Sv {
                heads,
                head_dim,
                gqa_group,
            } => (heads, head_dim, gqa_group),
            _ => continue,
        };
        // SV's first input should be a softmax fed by a matching QkT.
        let Some(sm) = sv
            .inputs
            .iter()
            .filter_map(|&i| graph.op(i))
            .find(|o| o.kind == OpKind::Softmax)
        else {
            continue;
        };
        let Some(qkt) = sm.inputs.iter().filter_map(|&i| graph.op(i)).find(|o| {
            matches!(o.kind, OpKind::QkT { heads: h, head_dim: d, gqa_group: g }
                if h == heads && d == head_dim && g == gqa_group)
        }) else {
            continue;
        };
        out.push(AttentionMatch {
            qkt: qkt.id,
            softmax: sm.id,
            sv: sv.id,
            heads,
            head_dim,
            gqa_group,
        });
    }
    out
}

/// Finds every dense GEMV (projections and FFN matmuls).
pub fn match_fc(graph: &DecoderGraph) -> Vec<FcMatch> {
    graph
        .ops()
        .iter()
        .filter_map(|o| match o.kind {
            OpKind::Gemv { dout, din } => Some(FcMatch {
                op: o.id,
                dout,
                din,
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::{LLM_72B_128K_GQA, LLM_7B_32K};

    #[test]
    fn finds_the_attention_chain() {
        let g = DecoderGraph::decoder_layer(&LLM_7B_32K);
        let m = match_attention(&g);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].heads, 32);
        assert_eq!(m[0].gqa_group, 1);
        assert!(m[0].qkt < m[0].softmax && m[0].softmax < m[0].sv);
    }

    #[test]
    fn finds_all_fc_kernels() {
        let g = DecoderGraph::decoder_layer(&LLM_7B_32K);
        assert_eq!(match_fc(&g).len(), 7);
    }

    #[test]
    fn gqa_metadata_propagates() {
        let g = DecoderGraph::decoder_layer(&LLM_72B_128K_GQA);
        let m = match_attention(&g);
        assert_eq!(m[0].gqa_group, 8);
        assert_eq!(m[0].head_dim, 128);
    }

    #[test]
    fn no_match_without_softmax_link() {
        let mut g = DecoderGraph::new();
        let a = g.add(
            OpKind::QkT {
                heads: 2,
                head_dim: 4,
                gqa_group: 1,
            },
            vec![],
            "qkt",
        );
        let _ = g.add(
            OpKind::Sv {
                heads: 2,
                head_dim: 4,
                gqa_group: 1,
            },
            vec![a],
            "sv",
        );
        assert!(match_attention(&g).is_empty());
    }

    #[test]
    fn mismatched_shapes_do_not_match() {
        let mut g = DecoderGraph::new();
        let a = g.add(
            OpKind::QkT {
                heads: 2,
                head_dim: 4,
                gqa_group: 1,
            },
            vec![],
            "qkt",
        );
        let s = g.add(OpKind::Softmax, vec![a], "sm");
        let _ = g.add(
            OpKind::Sv {
                heads: 4,
                head_dim: 4,
                gqa_group: 1,
            },
            vec![s],
            "sv",
        );
        assert!(match_attention(&g).is_empty());
    }
}
