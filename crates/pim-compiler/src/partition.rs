//! Intra-module workload partitioning: HFP vs TCP (paper §IV, Fig. 6).
//!
//! Prior PIM systems use **Head-First Partitioning (HFP)**: each
//! (request, KV-head) pair is placed wholly on one channel. With long
//! contexts the number of such pairs shrinks below the channel count and
//! their sizes diverge, so channels idle (Fig. 6(b,c)).
//!
//! **Token-Centric Partitioning (TCP)** instead splits every head's token
//! axis across *all* channels of the module, so channel activity is
//! decoupled from batch size and request-length skew (Fig. 6(d,e)).

use serde::Serialize;

/// Which intra-module partitioning scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Partitioning {
    /// Conventional head/batch-first placement.
    HeadFirst,
    /// PIMphony's token-centric placement.
    TokenCentric,
}

impl Partitioning {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Partitioning::HeadFirst => "HFP",
            Partitioning::TokenCentric => "TCP",
        }
    }
}

impl std::fmt::Display for Partitioning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Multi-module parallelization setting (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ParallelConfig {
    /// Tensor-parallel ways (heads sharded across modules).
    pub tp: u32,
    /// Pipeline-parallel stages (layers sharded across modules).
    pub pp: u32,
}

impl ParallelConfig {
    /// Creates a config.
    ///
    /// # Panics
    /// Panics if either degree is zero.
    pub fn new(tp: u32, pp: u32) -> Self {
        assert!(tp > 0 && pp > 0, "parallel degrees must be nonzero");
        ParallelConfig { tp, pp }
    }

    /// Modules consumed by one replica (`tp * pp`).
    pub fn modules(&self) -> u32 {
        self.tp * self.pp
    }

    /// All (tp, pp) factorizations of `modules`.
    pub fn factorizations(modules: u32) -> Vec<ParallelConfig> {
        (1..=modules)
            .filter(|tp| modules % tp == 0)
            .map(|tp| ParallelConfig {
                tp,
                pp: modules / tp,
            })
            .collect()
    }
}

impl std::fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(TP={}, PP={})", self.tp, self.pp)
    }
}

/// A contiguous token range of one (request, KV-head) pair assigned to a
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RequestSlice {
    /// Request id.
    pub request: u64,
    /// KV-head index within the module.
    pub kv_head: u32,
    /// First token (inclusive).
    pub token_start: u64,
    /// Last token (exclusive).
    pub token_end: u64,
}

impl RequestSlice {
    /// Tokens in the slice.
    pub fn tokens(&self) -> u64 {
        self.token_end - self.token_start
    }
}

/// One channel's assigned work.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ChannelWork {
    /// Assigned slices.
    pub slices: Vec<RequestSlice>,
}

impl ChannelWork {
    /// Total tokens of attention work on this channel.
    pub fn total_tokens(&self) -> u64 {
        self.slices.iter().map(RequestSlice::tokens).sum()
    }
}

/// The full per-channel assignment for one module's attention stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModulePartition {
    scheme: Partitioning,
    channels: Vec<ChannelWork>,
}

impl ModulePartition {
    /// Partitions the attention work of `requests` (id, current tokens)
    /// over `channels` channels for `kv_heads` KV heads resident on this
    /// module.
    ///
    /// # Panics
    /// Panics if `channels` or `kv_heads` is zero.
    pub fn assign(
        scheme: Partitioning,
        channels: u32,
        kv_heads: u32,
        requests: &[(u64, u64)],
    ) -> Self {
        assert!(channels > 0, "channels must be nonzero");
        assert!(kv_heads > 0, "kv_heads must be nonzero");
        let mut work = vec![ChannelWork::default(); channels as usize];
        match scheme {
            Partitioning::HeadFirst => {
                // Place each (request, head) pair wholly on one channel,
                // round-robin.
                let mut ch = 0usize;
                for &(req, tokens) in requests {
                    for head in 0..kv_heads {
                        work[ch].slices.push(RequestSlice {
                            request: req,
                            kv_head: head,
                            token_start: 0,
                            token_end: tokens,
                        });
                        ch = (ch + 1) % channels as usize;
                    }
                }
            }
            Partitioning::TokenCentric => {
                // Split every head's token axis across all channels.
                for &(req, tokens) in requests {
                    for head in 0..kv_heads {
                        let per = tokens.div_ceil(u64::from(channels));
                        for (c, w) in work.iter_mut().enumerate() {
                            let start = (c as u64 * per).min(tokens);
                            let end = ((c as u64 + 1) * per).min(tokens);
                            if start < end {
                                w.slices.push(RequestSlice {
                                    request: req,
                                    kv_head: head,
                                    token_start: start,
                                    token_end: end,
                                });
                            }
                        }
                    }
                }
            }
        }
        ModulePartition {
            scheme,
            channels: work,
        }
    }

    /// Visits every slice of the partition [`Self::assign`] would build
    /// for the same inputs, **without materializing it**: `f` is called
    /// with `(channel, slice_tokens)` once per slice, channels in
    /// ascending order and slices within a channel in `assign`'s push
    /// order. Hot callers (the stage model prices a partition per
    /// simulated iteration) only need the token counts, and the
    /// materialized form allocates one `Vec` per channel plus up to
    /// `requests × kv_heads × channels` slice records per call — this
    /// visitor replaces that with index arithmetic. Equivalence with
    /// `assign` is pinned by a unit test.
    ///
    /// # Panics
    /// Panics if `channels` or `kv_heads` is zero.
    pub fn for_each_slice(
        scheme: Partitioning,
        channels: u32,
        kv_heads: u32,
        requests: &[(u64, u64)],
        mut f: impl FnMut(u32, u64),
    ) {
        assert!(channels > 0, "channels must be nonzero");
        assert!(kv_heads > 0, "kv_heads must be nonzero");
        match scheme {
            Partitioning::HeadFirst => {
                // assign places flat (request, head) pair `i` on channel
                // `i % channels`, so channel `c` holds pairs c, c +
                // channels, ... in that order (zero-token pairs
                // included, exactly as assign pushes them).
                let total = requests.len() * kv_heads as usize;
                for c in 0..channels {
                    let mut idx = c as usize;
                    while idx < total {
                        f(c, requests[idx / kv_heads as usize].1);
                        idx += channels as usize;
                    }
                }
            }
            Partitioning::TokenCentric => {
                // assign gives channel `c` the c-th `ceil(tokens /
                // channels)`-sized range of every (request, head) pair,
                // pushed in request-major, head-minor order per channel;
                // empty ranges are skipped.
                for c in 0..channels {
                    for &(_, tokens) in requests {
                        let per = tokens.div_ceil(u64::from(channels));
                        let start = (u64::from(c) * per).min(tokens);
                        let end = ((u64::from(c) + 1) * per).min(tokens);
                        if start < end {
                            for _ in 0..kv_heads {
                                f(c, end - start);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The scheme used.
    pub fn scheme(&self) -> Partitioning {
        self.scheme
    }

    /// Per-channel work.
    pub fn channels(&self) -> &[ChannelWork] {
        &self.channels
    }

    /// Per-channel token totals.
    pub fn channel_tokens(&self) -> Vec<u64> {
        self.channels
            .iter()
            .map(ChannelWork::total_tokens)
            .collect()
    }

    /// Channels with any work.
    pub fn active_channels(&self) -> u32 {
        self.channels
            .iter()
            .filter(|c| !c.slices.is_empty())
            .count() as u32
    }

    /// Load balance in `[0, 1]`: mean over max of per-channel tokens —
    /// the module's channel-utilization proxy (1.0 = perfectly balanced,
    /// all channels busy the whole time).
    pub fn balance(&self) -> f64 {
        let tokens = self.channel_tokens();
        let max = tokens.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 0.0;
        }
        let mean = tokens.iter().sum::<u64>() as f64 / tokens.len() as f64;
        mean / max as f64
    }

    /// The makespan proxy: tokens on the most loaded channel (the module
    /// finishes when its slowest channel does).
    pub fn makespan_tokens(&self) -> u64 {
        self.channel_tokens().into_iter().max().unwrap_or(0)
    }

    /// Total tokens across channels (invariant: identical for both
    /// schemes on the same input).
    pub fn total_tokens(&self) -> u64 {
        self.channel_tokens().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_activates_all_channels_for_one_request() {
        // The long-context regime: a single request, one head.
        let hfp = ModulePartition::assign(Partitioning::HeadFirst, 16, 1, &[(0, 64_000)]);
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, 16, 1, &[(0, 64_000)]);
        assert_eq!(hfp.active_channels(), 1);
        assert_eq!(tcp.active_channels(), 16);
        assert!(tcp.balance() > 0.99);
        assert!(hfp.balance() < 0.1);
    }

    #[test]
    fn schemes_cover_the_same_work() {
        let reqs = [(0, 10_000), (1, 20_000), (2, 5_000)];
        let hfp = ModulePartition::assign(Partitioning::HeadFirst, 16, 4, &reqs);
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, 16, 4, &reqs);
        assert_eq!(hfp.total_tokens(), tcp.total_tokens());
    }

    #[test]
    fn tcp_covers_tokens_exactly_once() {
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, 16, 2, &[(7, 10_001)]);
        for head in 0..2 {
            let mut covered = vec![false; 10_001];
            for ch in tcp.channels() {
                for s in ch.slices.iter().filter(|s| s.kv_head == head) {
                    for t in s.token_start..s.token_end {
                        assert!(!covered[t as usize], "token {t} covered twice");
                        covered[t as usize] = true;
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c),
                "head {head} has uncovered tokens"
            );
        }
    }

    #[test]
    fn hfp_imbalance_grows_with_length_skew() {
        let balanced =
            ModulePartition::assign(Partitioning::HeadFirst, 4, 2, &[(0, 1000), (1, 1000)]);
        let skewed =
            ModulePartition::assign(Partitioning::HeadFirst, 4, 2, &[(0, 1000), (1, 16_000)]);
        assert!(skewed.balance() < balanced.balance());
    }

    #[test]
    fn tcp_balance_insensitive_to_skew() {
        let skewed =
            ModulePartition::assign(Partitioning::TokenCentric, 16, 2, &[(0, 1000), (1, 64_000)]);
        assert!(skewed.balance() > 0.95, "balance {}", skewed.balance());
    }

    #[test]
    fn tcp_makespan_beats_hfp() {
        let reqs = [(0, 32_000), (1, 8_000)];
        let hfp = ModulePartition::assign(Partitioning::HeadFirst, 16, 4, &reqs);
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, 16, 4, &reqs);
        assert!(tcp.makespan_tokens() < hfp.makespan_tokens());
    }

    #[test]
    fn factorizations_enumerate_divisors() {
        let f = ParallelConfig::factorizations(8);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|c| c.modules() == 8));
    }

    #[test]
    fn for_each_slice_matches_assign_exactly() {
        // The visitor must reproduce assign's (channel, tokens)
        // sequence in channel-major order for both schemes, including
        // the edge cases: zero-token requests (HFP keeps their empty
        // slices, TCP drops them), tokens below the channel count, and
        // non-dividing token counts.
        let cases: &[&[(u64, u64)]] = &[
            &[(0, 64_000)],
            &[(0, 10_000), (1, 20_000), (2, 5_000)],
            &[(7, 10_001)],
            &[(0, 5)],
            &[(0, 0), (1, 33), (2, 0)],
            &[(0, 1), (1, 16), (2, 17)],
        ];
        for &reqs in cases {
            for scheme in [Partitioning::HeadFirst, Partitioning::TokenCentric] {
                for (channels, kv_heads) in [(16u32, 1u32), (16, 4), (3, 2), (1, 1)] {
                    let assigned = ModulePartition::assign(scheme, channels, kv_heads, reqs);
                    let mut expect: Vec<(u32, u64)> = Vec::new();
                    for (c, w) in assigned.channels().iter().enumerate() {
                        for s in &w.slices {
                            expect.push((c as u32, s.tokens()));
                        }
                    }
                    let mut got: Vec<(u32, u64)> = Vec::new();
                    ModulePartition::for_each_slice(scheme, channels, kv_heads, reqs, |c, t| {
                        got.push((c, t))
                    });
                    assert_eq!(got, expect, "{scheme:?} ch={channels} heads={kv_heads}");
                }
            }
        }
    }

    #[test]
    fn tiny_requests_leave_tcp_channels_idle_gracefully() {
        // 5 tokens over 16 channels: only 5 channels get work.
        let tcp = ModulePartition::assign(Partitioning::TokenCentric, 16, 1, &[(0, 5)]);
        assert_eq!(tcp.active_channels(), 5);
        assert_eq!(tcp.total_tokens(), 5);
    }
}
