//! # PIMphony — a PIM orchestrator for long-context LLM inference
//!
//! Reproduction of *"PIMphony: Overcoming Bandwidth and Capacity
//! Inefficiency in PIM-Based Long-Context LLM Inference System"* (HPCA
//! 2026). PIMphony combines three co-designed techniques:
//!
//! * **TCP** — Token-Centric PIM Partitioning: token-axis parallelism
//!   across all channels of a module, decoupling utilization from batch
//!   size ([`pim_compiler::partition`]).
//! * **DCS** — Dynamic PIM Command Scheduling: a dependency-aware PIM
//!   controller that overlaps I/O with MAC execution
//!   ([`pim_sim::sched`]).
//! * **DPA** — Dynamic PIM Access: on-module virtual-to-physical address
//!   translation enabling lazy, chunked KV-cache allocation
//!   ([`pim_mem`]).
//!
//! The [`Orchestrator`] is the top-level entry point: configure a system
//! (CENT-like PIM-only or NeuPIMs-like xPU+PIM), a model from Table I, a
//! technique set, and a batch-scheduling policy, then evaluate serving
//! traces.
//!
//! Two scheduling policies are available through the builder:
//!
//! * **Wave** (default) — the paper's closed-world evaluation: admit a
//!   batch, decode it to completion, repeat. Reproduces Figs. 13–15/17.
//! * **Continuous** — event-driven continuous batching for online
//!   traffic: requests carry arrival times, join the running batch when
//!   the memory policy has room, and report TTFT/TPOT/E2E latency
//!   percentiles in [`ServingReport::latency`].
//!
//! Multi-replica systems serve through the cluster layer
//! ([`system::cluster`]): arrivals are dispatched in global time order
//! by a pluggable load balancer (`.router(RouterKind::…)` — round-robin,
//! join-shortest-queue, least-loaded by reserved KV bytes, or
//! least-prefill by pending prompt tokens), replica
//! simulations can run in parallel (`.threads(n)`; results are
//! byte-identical whatever the thread count), and reports carry a
//! per-replica breakdown ([`ServingReport::per_replica`]).
//!
//! Experiments are also available as *data*: the builder is a thin
//! fluent wrapper over a declarative [`Scenario`] spec
//! ([`system::scenario`]) — model + system + techniques + multi-tenant
//! workload + cluster + policies in one serializable value.
//! [`Orchestrator::from_scenario`] materializes a spec (e.g. a
//! checked-in `scenarios/*.json` file) into an orchestrator plus the
//! merged tenant-tagged trace; reports then carry per-tenant latency
//! percentiles, SLO attainment, and Jain tenant fairness
//! ([`ServingReport::latency_by_tenant`]).
//!
//! Under KV memory pressure, continuous batching admits in priority
//! order (`workload::Request::priority`) and can preempt:
//! `.evict_restart()` / `.evict_pause()` let a blocked higher-priority
//! arrival evict lower-priority running requests (restart drops their
//! tokens; pause keeps them and re-prefills prompt+tokens as an
//! extended prompt), with eviction counts, wasted re-prefill work and
//! per-priority latency breakdowns in the report;
//! `.kv_capacity_factor(f)` dials the pressure.
//!
//! # Quickstart (paper-figure throughput)
//!
//! ```no_run
//! use pimphony::OrchestratorBuilder;
//! use pimphony::workload::{Dataset, TraceBuilder};
//!
//! let orchestrator = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
//!     .pim_only()
//!     .full_pimphony()
//!     .build();
//! let trace = TraceBuilder::new(Dataset::QmSum).requests(32).decode_len(64).build();
//! let report = orchestrator.serve(&trace);
//! println!("{:.1} tok/s at batch {:.1}", report.tokens_per_second, report.mean_batch);
//! ```
//!
//! # Online serving (continuous batching + latency percentiles)
//!
//! ```no_run
//! use pimphony::OrchestratorBuilder;
//! use pimphony::workload::{Dataset, TraceBuilder};
//!
//! let orchestrator = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
//!     .pim_only()
//!     .full_pimphony()
//!     .continuous_batching()
//!     .build();
//! // 6 req/s Poisson arrivals with production-like response-length spread.
//! let trace = TraceBuilder::new(Dataset::QmSum)
//!     .requests(128)
//!     .decode_range(16, 128)
//!     .poisson(6.0)
//!     .build();
//! let report = orchestrator.serve(&trace);
//! let l = &report.latency;
//! println!(
//!     "{:.1} tok/s | TTFT p50/p95/p99 {:.3}/{:.3}/{:.3}s | TPOT p50 {:.4}s",
//!     report.tokens_per_second, l.ttft.p50, l.ttft.p95, l.ttft.p99, l.tpot.p50,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use llm_model;
pub use pim_compiler;
pub use pim_isa;
pub use pim_mem;
pub use pim_sim;
pub use system;
pub use workload;

/// The declarative scenario spec (re-exported from
/// [`system::scenario`]): one serializable value describing workload +
/// cluster + policy, the data form of everything this builder
/// configures.
pub use system::scenario::{ClusterSpec, Materialized, PolicySpec, Scenario, TenantSpec};

use llm_model::ModelConfig;
use system::{
    Cluster, Evaluator, PreemptionPolicy, PrefillConfig, RouterKind, SchedulingPolicy,
    ServingReport, SystemConfig, Techniques,
};
use workload::Trace;

/// Top-level handle evaluating a PIM serving system on traces.
///
/// Every orchestrator carries the declarative [`Scenario`] it was built
/// from ([`Orchestrator::scenario`]): the builder is a thin fluent
/// wrapper that edits that spec, so the orchestrator's configuration is
/// always serializable and the getters simply read the spec back.
#[derive(Debug)]
pub struct Orchestrator {
    evaluator: Evaluator,
    scenario: Scenario,
}

impl Orchestrator {
    /// Creates an orchestrator from explicit configuration, with the
    /// default (wave) scheduling policy.
    pub fn new(system: SystemConfig, model: ModelConfig, techniques: Techniques) -> Self {
        Self::with_policy(system, model, techniques, SchedulingPolicy::Wave)
    }

    /// Creates an orchestrator with an explicit scheduling policy.
    ///
    /// The evaluator uses `system` verbatim (including any custom
    /// module sizing); the recorded scenario captures its kind and
    /// parallelization, which is the part the spec format describes.
    pub fn with_policy(
        system: SystemConfig,
        model: ModelConfig,
        techniques: Techniques,
        policy: SchedulingPolicy,
    ) -> Self {
        let mut scenario = Scenario::new(model.name);
        scenario.system = system.kind;
        scenario.techniques = techniques;
        scenario.cluster.tp = system.parallel.tp;
        scenario.cluster.pp = system.parallel.pp;
        scenario.policies.scheduling = policy;
        Orchestrator {
            evaluator: Evaluator::new(system, model, techniques).with_policy(policy),
            scenario,
        }
    }

    /// Materializes a declarative scenario into an orchestrator plus
    /// the merged multi-tenant trace it describes — `serve(&trace)`
    /// then runs the whole experiment the spec file named.
    pub fn from_scenario(scenario: &Scenario) -> Result<(Orchestrator, Trace), String> {
        let m = scenario.materialize()?;
        Ok((
            Orchestrator {
                evaluator: m.evaluator,
                scenario: scenario.clone(),
            },
            m.trace,
        ))
    }

    /// Serves a trace through the cluster layer — arrivals are routed to
    /// replicas by the configured load balancer and the replica sims run
    /// on the configured number of threads — returning the
    /// throughput/latency/energy report. Results are independent of the
    /// thread count.
    pub fn serve(&self, trace: &Trace) -> ServingReport {
        let mut router = self.scenario.policies.router.build();
        Cluster::new(&self.evaluator, self.evaluator.scheduling_policy())
            .with_threads(self.scenario.cluster.threads)
            .run(trace, router.as_mut())
    }

    /// One decode iteration for an explicit `(request id, tokens)` batch.
    pub fn iteration(&self, batch: &[(u64, u64)]) -> system::IterationBreakdown {
        self.evaluator.iteration(batch)
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The declarative spec this orchestrator was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The active batch-scheduling policy.
    pub fn policy(&self) -> SchedulingPolicy {
        self.evaluator.scheduling_policy()
    }

    /// The active preemption policy.
    pub fn preemption(&self) -> PreemptionPolicy {
        self.evaluator.preemption_policy()
    }

    /// The active cross-replica load balancer.
    pub fn router(&self) -> RouterKind {
        self.scenario.policies.router
    }

    /// The replica-simulation thread count.
    pub fn threads(&self) -> usize {
        self.scenario.cluster.threads
    }
}

/// Builder for [`Orchestrator`] with the paper's preset configurations.
///
/// A thin fluent wrapper over a declarative [`Scenario`]: every method
/// edits one field of the spec, and [`OrchestratorBuilder::build`]
/// materializes the evaluator from it — so a new serving knob is added
/// to the `Scenario` struct once instead of being plumbed through
/// parallel builder fields. The resolved [`ModelConfig`] rides along so
/// custom (non-Table-I) model configs keep working; everything else
/// lives in the spec, inspectable via
/// [`OrchestratorBuilder::scenario`].
#[derive(Debug, Clone)]
pub struct OrchestratorBuilder {
    scenario: Scenario,
    model: ModelConfig,
}

impl OrchestratorBuilder {
    /// Starts from a model with the paper's PIM-only defaults.
    pub fn new(model: ModelConfig) -> Self {
        OrchestratorBuilder {
            scenario: Scenario::new(model.name),
            model,
        }
    }

    /// The declarative spec the fluent calls have assembled so far.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Uses the CENT-like PIM-only system sizing (Table IV).
    pub fn pim_only(mut self) -> Self {
        self.scenario.system = system::SystemKind::PimOnly;
        self
    }

    /// Uses the NeuPIMs-like xPU+PIM system sizing (Table IV).
    pub fn xpu_pim(mut self) -> Self {
        self.scenario.system = system::SystemKind::XpuPim;
        self
    }

    /// Overrides the (TP, PP) parallelization (both degrees ≥ 1; the
    /// spec-level `tp = 0` "whole node" sentinel is not accepted here —
    /// simply don't call `parallel` to keep the preset sizing).
    pub fn parallel(mut self, tp: u32, pp: u32) -> Self {
        assert!(tp > 0 && pp > 0, "parallel degrees must be positive");
        self.scenario.cluster.tp = tp;
        self.scenario.cluster.pp = pp;
        self
    }

    /// Disables every PIMphony technique (the prior-work baseline).
    pub fn baseline(mut self) -> Self {
        self.scenario.techniques = Techniques::baseline();
        self
    }

    /// Enables all three techniques.
    pub fn full_pimphony(mut self) -> Self {
        self.scenario.techniques = Techniques::pimphony();
        self
    }

    /// Sets an explicit technique combination.
    pub fn techniques(mut self, techniques: Techniques) -> Self {
        self.scenario.techniques = techniques;
        self
    }

    /// Sets an explicit batch-scheduling policy.
    pub fn policy(mut self, policy: SchedulingPolicy) -> Self {
        self.scenario.policies.scheduling = policy;
        self
    }

    /// Serves online traffic with event-driven continuous batching
    /// (requests join running batches as memory frees; the report gains
    /// TTFT/TPOT/E2E percentiles).
    pub fn continuous_batching(self) -> Self {
        self.policy(SchedulingPolicy::Continuous)
    }

    /// Serves closed-world decode waves (the default; reproduces the
    /// paper's figures).
    pub fn wave_serving(self) -> Self {
        self.policy(SchedulingPolicy::Wave)
    }

    /// Sets an explicit prefill configuration (default: disabled, the
    /// historical decode-only simulation).
    pub fn prefill(mut self, prefill: PrefillConfig) -> Self {
        self.scenario.policies.prefill = prefill;
        self
    }

    /// Models prompt processing end-to-end: prompts are prefilled
    /// `chunk_tokens` at a time before decoding (interleaved with
    /// running decode steps under continuous batching), and TTFT covers
    /// arrival → first token including queueing and prefill delay
    /// (decomposed in `ServingReport::latency`).
    pub fn chunked_prefill(self, chunk_tokens: u64) -> Self {
        self.prefill(PrefillConfig::chunked(chunk_tokens))
    }

    /// Sets the preemption policy: what continuous batching may do when
    /// an arrived request cannot be admitted for lack of KV memory
    /// (default: [`PreemptionPolicy::None`], admitted requests always
    /// run to completion). Eviction requires priority diversity in the
    /// trace — victims must have strictly lower priority than the
    /// blocked candidate.
    pub fn preemption(mut self, preemption: PreemptionPolicy) -> Self {
        self.scenario.policies.preemption = preemption;
        self
    }

    /// Under memory pressure, evict lower-priority running requests and
    /// restart them from scratch later (their KV *and* generated tokens
    /// are dropped).
    pub fn evict_restart(self) -> Self {
        self.preemption(PreemptionPolicy::EvictRestart)
    }

    /// Under memory pressure, evict lower-priority running requests but
    /// keep their generated tokens; on resume the prompt plus kept
    /// tokens are re-prefilled as an extended prompt and decoding
    /// continues where it stopped.
    pub fn evict_pause(self) -> Self {
        self.preemption(PreemptionPolicy::EvictPause)
    }

    /// Scales the replica KV pool (default 1.0 = hardware capacity).
    /// Fractions below one model memory pressure — the regime where
    /// preemption policies matter — without re-sizing the system.
    pub fn kv_capacity_factor(mut self, factor: f64) -> Self {
        self.scenario.policies.kv_capacity_factor = factor;
        self
    }

    /// Sets the cross-replica load balancer routing each arrival to a
    /// replica (default: [`RouterKind::RoundRobin`], which reproduces
    /// trace-level partitioning bit-exactly).
    pub fn router(mut self, router: RouterKind) -> Self {
        self.scenario.policies.router = router;
        self
    }

    /// Routes arrivals to the replica with the fewest in-flight requests
    /// (join-shortest-queue) — the bursty-traffic tail-latency policy.
    pub fn join_shortest_queue(self) -> Self {
        self.router(RouterKind::JoinShortestQueue)
    }

    /// Simulates replicas on up to `threads` scoped threads (`0` means
    /// one per available CPU). Reports are byte-identical whatever the
    /// thread count — parallelism only changes wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.scenario.cluster.threads = threads;
        self
    }

    /// Builds the orchestrator by materializing the assembled scenario
    /// (the spec's evaluator path, shared with `--scenario` files —
    /// there is exactly one place knobs turn into an [`Evaluator`]).
    pub fn build(self) -> Orchestrator {
        Orchestrator {
            evaluator: self.scenario.evaluator_for(self.model),
            scenario: self.scenario,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Dataset, TraceBuilder};

    #[test]
    fn builder_presets_produce_working_orchestrators() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(1)
            .requests(6)
            .decode_len(8)
            .build();
        let pim = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .build();
        let xpu = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .xpu_pim()
            .build();
        assert!(pim.serve(&trace).tokens_per_second > 0.0);
        assert!(xpu.serve(&trace).tokens_per_second > 0.0);
    }

    #[test]
    fn baseline_vs_pimphony_end_to_end() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(2)
            .requests(8)
            .decode_len(8)
            .build();
        let base = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .baseline()
            .build();
        let full = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .full_pimphony()
            .build();
        let rb = base.serve(&trace);
        let rf = full.serve(&trace);
        assert!(rf.tokens_per_second > rb.tokens_per_second);
        assert!(rf.attn_utilization > rb.attn_utilization);
    }

    #[test]
    fn builder_is_a_thin_scenario_wrapper() {
        let b = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .parallel(2, 1)
            .continuous_batching()
            .join_shortest_queue()
            .evict_pause()
            .chunked_prefill(256)
            .kv_capacity_factor(0.5)
            .threads(4);
        let s = b.scenario();
        assert_eq!(s.model, "LLM-7B-32K");
        assert_eq!(s.policies.scheduling, SchedulingPolicy::Continuous);
        assert_eq!(s.policies.router, RouterKind::JoinShortestQueue);
        assert_eq!(s.policies.preemption, PreemptionPolicy::EvictPause);
        assert!(s.policies.prefill.enabled);
        assert_eq!(s.policies.prefill.chunk_tokens, 256);
        assert_eq!(s.policies.kv_capacity_factor, 0.5);
        assert_eq!(
            s.cluster,
            ClusterSpec {
                tp: 2,
                pp: 1,
                modules: 0,
                threads: 4,
                pools: Vec::new(),
            }
        );
        // The built orchestrator's evaluator and getters read the spec.
        let o = b.build();
        assert_eq!(o.router(), RouterKind::JoinShortestQueue);
        assert_eq!(o.threads(), 4);
        assert_eq!(o.preemption(), PreemptionPolicy::EvictPause);
        assert_eq!(o.evaluator().kv_capacity_factor(), 0.5);
        assert_eq!(o.evaluator().prefill_config().chunk_tokens, 256);
        assert_eq!(o.scenario().policies.stride, 64);
    }

    #[test]
    fn orchestrator_from_scenario_serves_multi_tenant_specs() {
        let mut s = Scenario::new("LLM-7B-32K");
        s.cluster.tp = 2;
        s.policies.scheduling = SchedulingPolicy::Continuous;
        s.policies.router = RouterKind::JoinShortestQueue;
        let s = s
            .tenant(
                TenantSpec::new("interactive", Dataset::QmSum)
                    .requests(8)
                    .seed(3)
                    .decode(workload::DecodeSpec::Uniform(8, 24))
                    .arrivals(workload::ArrivalProcess::Poisson { rate: 4.0 })
                    .priority(1)
                    .slo_ttft_p99(60.0),
            )
            .tenant(
                TenantSpec::new("batch", Dataset::QmSum)
                    .requests(6)
                    .seed(4)
                    .decode(workload::DecodeSpec::Fixed(32)),
            );
        let (o, trace) = Orchestrator::from_scenario(&s).expect("materialize");
        assert_eq!(trace.len(), 14);
        assert_eq!(o.scenario(), &s);
        let r = o.serve(&trace);
        assert_eq!(r.latency.completed, 14);
        assert_eq!(r.latency_by_tenant.len(), 2);
        assert!((0.0..=1.0).contains(&r.latency_by_tenant[0].slo_attainment));
        assert!(r.tenant_fairness() > 0.0);
        // A broken spec surfaces as an error, not a panic.
        assert!(Orchestrator::from_scenario(&Scenario::new("nope")).is_err());
    }

    #[test]
    fn parallel_override_applies() {
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .parallel(2, 4)
            .build();
        assert_eq!(o.evaluator().system().parallel.tp, 2);
        assert_eq!(o.evaluator().system().parallel.pp, 4);
    }

    #[test]
    fn iteration_is_exposed() {
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K).build();
        let it = o.iteration(&[(0, 8192), (1, 4096)]);
        assert!(it.seconds > 0.0);
        assert!(it.attn_seconds > 0.0);
    }

    #[test]
    fn policy_selection_flows_through_builder() {
        let wave = OrchestratorBuilder::new(llm_model::LLM_7B_32K).build();
        let cont = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .continuous_batching()
            .build();
        assert_eq!(wave.policy(), SchedulingPolicy::Wave);
        assert_eq!(cont.policy(), SchedulingPolicy::Continuous);
        assert_eq!(
            wave.policy(),
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .continuous_batching()
                .wave_serving()
                .build()
                .policy()
        );
    }

    #[test]
    fn router_and_threads_flow_through_builder() {
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .continuous_batching()
            .join_shortest_queue()
            .threads(4)
            .build();
        assert_eq!(o.router(), RouterKind::JoinShortestQueue);
        assert_eq!(o.threads(), 4);
        assert_eq!(
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .router(RouterKind::LeastLoaded)
                .build()
                .router(),
            RouterKind::LeastLoaded
        );
        assert_eq!(
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .build()
                .router(),
            RouterKind::RoundRobin
        );
    }

    #[test]
    fn parallel_serving_matches_sequential_exactly() {
        // 4 replicas, bursty arrivals, JSQ: the report must not depend on
        // the simulation thread count.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(32)
            .decode_range(8, 48)
            .bursty(8.0, 2.5)
            .build();
        let build = |threads| {
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .parallel(2, 1)
                .continuous_batching()
                .join_shortest_queue()
                .threads(threads)
                .build()
        };
        let sequential = build(1).serve(&trace);
        let parallel = build(4).serve(&trace);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn chunked_prefill_flows_through_builder_and_dominates_ttft() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(4)
            .requests(8)
            .decode_range(8, 32)
            .poisson(3.0)
            .build();
        let build = |prefill: bool| {
            let b = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .pim_only()
                .full_pimphony()
                .continuous_batching();
            if prefill { b.chunked_prefill(512) } else { b }.build()
        };
        let decode_only = build(false);
        let end_to_end = build(true);
        assert!(!decode_only.evaluator().prefill_config().enabled);
        assert!(end_to_end.evaluator().prefill_config().enabled);
        assert_eq!(end_to_end.evaluator().prefill_config().chunk_tokens, 512);
        let rd = decode_only.serve(&trace);
        let re = end_to_end.serve(&trace);
        assert_eq!(rd.tokens, re.tokens, "same decode work");
        assert_eq!(rd.prefill_tokens, 0);
        assert!(re.prefill_tokens > 0);
        assert!(re.latency.ttft.p50 > rd.latency.ttft.p50);
        assert!(re.latency.prefill.p50 > 0.0);
    }

    #[test]
    fn continuous_batching_reports_latency_percentiles() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(4)
            .requests(20)
            .decode_range(8, 32)
            .poisson(3.0)
            .build();
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .full_pimphony()
            .continuous_batching()
            .build();
        let r = o.serve(&trace);
        assert_eq!(r.latency.completed, trace.len() as u64);
        assert!(r.latency.ttft.p50 > 0.0);
        assert!(r.latency.ttft.p50 <= r.latency.ttft.p99);
        assert_eq!(r.tokens, trace.total_decode_tokens());
    }
}
