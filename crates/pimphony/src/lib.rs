//! # PIMphony — a PIM orchestrator for long-context LLM inference
//!
//! Reproduction of *"PIMphony: Overcoming Bandwidth and Capacity
//! Inefficiency in PIM-Based Long-Context LLM Inference System"* (HPCA
//! 2026). PIMphony combines three co-designed techniques:
//!
//! * **TCP** — Token-Centric PIM Partitioning: token-axis parallelism
//!   across all channels of a module, decoupling utilization from batch
//!   size ([`pim_compiler::partition`]).
//! * **DCS** — Dynamic PIM Command Scheduling: a dependency-aware PIM
//!   controller that overlaps I/O with MAC execution
//!   ([`pim_sim::sched`]).
//! * **DPA** — Dynamic PIM Access: on-module virtual-to-physical address
//!   translation enabling lazy, chunked KV-cache allocation
//!   ([`pim_mem`]).
//!
//! The [`Orchestrator`] is the top-level entry point: configure a system
//! (CENT-like PIM-only or NeuPIMs-like xPU+PIM), a model from Table I, a
//! technique set, and a batch-scheduling policy, then evaluate serving
//! traces.
//!
//! Two scheduling policies are available through the builder:
//!
//! * **Wave** (default) — the paper's closed-world evaluation: admit a
//!   batch, decode it to completion, repeat. Reproduces Figs. 13–15/17.
//! * **Continuous** — event-driven continuous batching for online
//!   traffic: requests carry arrival times, join the running batch when
//!   the memory policy has room, and report TTFT/TPOT/E2E latency
//!   percentiles in [`ServingReport::latency`].
//!
//! Multi-replica systems serve through the cluster layer
//! ([`system::cluster`]): arrivals are dispatched in global time order
//! by a pluggable load balancer (`.router(RouterKind::…)` — round-robin,
//! join-shortest-queue, least-loaded by reserved KV bytes, or
//! least-prefill by pending prompt tokens), replica
//! simulations can run in parallel (`.threads(n)`; results are
//! byte-identical whatever the thread count), and reports carry a
//! per-replica breakdown ([`ServingReport::per_replica`]).
//!
//! Under KV memory pressure, continuous batching admits in priority
//! order (`workload::Request::priority`) and can preempt:
//! `.evict_restart()` / `.evict_pause()` let a blocked higher-priority
//! arrival evict lower-priority running requests (restart drops their
//! tokens; pause keeps them and re-prefills prompt+tokens as an
//! extended prompt), with eviction counts, wasted re-prefill work and
//! per-priority latency breakdowns in the report;
//! `.kv_capacity_factor(f)` dials the pressure.
//!
//! # Quickstart (paper-figure throughput)
//!
//! ```no_run
//! use pimphony::OrchestratorBuilder;
//! use pimphony::workload::{Dataset, TraceBuilder};
//!
//! let orchestrator = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
//!     .pim_only()
//!     .full_pimphony()
//!     .build();
//! let trace = TraceBuilder::new(Dataset::QmSum).requests(32).decode_len(64).build();
//! let report = orchestrator.serve(&trace);
//! println!("{:.1} tok/s at batch {:.1}", report.tokens_per_second, report.mean_batch);
//! ```
//!
//! # Online serving (continuous batching + latency percentiles)
//!
//! ```no_run
//! use pimphony::OrchestratorBuilder;
//! use pimphony::workload::{Dataset, TraceBuilder};
//!
//! let orchestrator = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
//!     .pim_only()
//!     .full_pimphony()
//!     .continuous_batching()
//!     .build();
//! // 6 req/s Poisson arrivals with production-like response-length spread.
//! let trace = TraceBuilder::new(Dataset::QmSum)
//!     .requests(128)
//!     .decode_range(16, 128)
//!     .poisson(6.0)
//!     .build();
//! let report = orchestrator.serve(&trace);
//! let l = &report.latency;
//! println!(
//!     "{:.1} tok/s | TTFT p50/p95/p99 {:.3}/{:.3}/{:.3}s | TPOT p50 {:.4}s",
//!     report.tokens_per_second, l.ttft.p50, l.ttft.p95, l.ttft.p99, l.tpot.p50,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use llm_model;
pub use pim_compiler;
pub use pim_isa;
pub use pim_mem;
pub use pim_sim;
pub use system;
pub use workload;

use llm_model::ModelConfig;
use pim_compiler::ParallelConfig;
use system::{
    Cluster, Evaluator, PreemptionPolicy, PrefillConfig, RouterKind, SchedulingPolicy,
    ServingReport, SystemConfig, Techniques,
};
use workload::Trace;

/// Top-level handle evaluating a PIM serving system on traces.
#[derive(Debug)]
pub struct Orchestrator {
    evaluator: Evaluator,
    router: RouterKind,
    threads: usize,
}

impl Orchestrator {
    /// Creates an orchestrator from explicit configuration, with the
    /// default (wave) scheduling policy.
    pub fn new(system: SystemConfig, model: ModelConfig, techniques: Techniques) -> Self {
        Self::with_policy(system, model, techniques, SchedulingPolicy::Wave)
    }

    /// Creates an orchestrator with an explicit scheduling policy.
    pub fn with_policy(
        system: SystemConfig,
        model: ModelConfig,
        techniques: Techniques,
        policy: SchedulingPolicy,
    ) -> Self {
        Orchestrator {
            evaluator: Evaluator::new(system, model, techniques).with_policy(policy),
            router: RouterKind::RoundRobin,
            threads: 1,
        }
    }

    /// Serves a trace through the cluster layer — arrivals are routed to
    /// replicas by the configured load balancer and the replica sims run
    /// on the configured number of threads — returning the
    /// throughput/latency/energy report. Results are independent of the
    /// thread count.
    pub fn serve(&self, trace: &Trace) -> ServingReport {
        let mut router = self.router.build();
        Cluster::new(&self.evaluator, self.evaluator.scheduling_policy())
            .with_threads(self.threads)
            .run(trace, router.as_mut())
    }

    /// One decode iteration for an explicit `(request id, tokens)` batch.
    pub fn iteration(&self, batch: &[(u64, u64)]) -> system::IterationBreakdown {
        self.evaluator.iteration(batch)
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The active batch-scheduling policy.
    pub fn policy(&self) -> SchedulingPolicy {
        self.evaluator.scheduling_policy()
    }

    /// The active preemption policy.
    pub fn preemption(&self) -> PreemptionPolicy {
        self.evaluator.preemption_policy()
    }

    /// The active cross-replica load balancer.
    pub fn router(&self) -> RouterKind {
        self.router
    }

    /// The replica-simulation thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Builder for [`Orchestrator`] with the paper's preset configurations.
#[derive(Debug, Clone)]
pub struct OrchestratorBuilder {
    model: ModelConfig,
    system: SystemConfig,
    techniques: Techniques,
    policy: SchedulingPolicy,
    preemption: PreemptionPolicy,
    prefill: PrefillConfig,
    kv_capacity_factor: f64,
    router: RouterKind,
    threads: usize,
}

impl OrchestratorBuilder {
    /// Starts from a model with the paper's PIM-only defaults.
    pub fn new(model: ModelConfig) -> Self {
        OrchestratorBuilder {
            model,
            system: SystemConfig::cent_for(&model),
            techniques: Techniques::pimphony(),
            policy: SchedulingPolicy::Wave,
            preemption: PreemptionPolicy::None,
            prefill: PrefillConfig::disabled(),
            kv_capacity_factor: 1.0,
            router: RouterKind::RoundRobin,
            threads: 1,
        }
    }

    /// Uses the CENT-like PIM-only system sizing (Table IV).
    pub fn pim_only(mut self) -> Self {
        self.system = SystemConfig::cent_for(&self.model);
        self
    }

    /// Uses the NeuPIMs-like xPU+PIM system sizing (Table IV).
    pub fn xpu_pim(mut self) -> Self {
        self.system = SystemConfig::neupims_for(&self.model);
        self
    }

    /// Overrides the (TP, PP) parallelization.
    pub fn parallel(mut self, tp: u32, pp: u32) -> Self {
        self.system = self.system.with_parallel(ParallelConfig::new(tp, pp));
        self
    }

    /// Disables every PIMphony technique (the prior-work baseline).
    pub fn baseline(mut self) -> Self {
        self.techniques = Techniques::baseline();
        self
    }

    /// Enables all three techniques.
    pub fn full_pimphony(mut self) -> Self {
        self.techniques = Techniques::pimphony();
        self
    }

    /// Sets an explicit technique combination.
    pub fn techniques(mut self, techniques: Techniques) -> Self {
        self.techniques = techniques;
        self
    }

    /// Sets an explicit batch-scheduling policy.
    pub fn policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Serves online traffic with event-driven continuous batching
    /// (requests join running batches as memory frees; the report gains
    /// TTFT/TPOT/E2E percentiles).
    pub fn continuous_batching(self) -> Self {
        self.policy(SchedulingPolicy::Continuous)
    }

    /// Serves closed-world decode waves (the default; reproduces the
    /// paper's figures).
    pub fn wave_serving(self) -> Self {
        self.policy(SchedulingPolicy::Wave)
    }

    /// Sets an explicit prefill configuration (default: disabled, the
    /// historical decode-only simulation).
    pub fn prefill(mut self, prefill: PrefillConfig) -> Self {
        self.prefill = prefill;
        self
    }

    /// Models prompt processing end-to-end: prompts are prefilled
    /// `chunk_tokens` at a time before decoding (interleaved with
    /// running decode steps under continuous batching), and TTFT covers
    /// arrival → first token including queueing and prefill delay
    /// (decomposed in `ServingReport::latency`).
    pub fn chunked_prefill(self, chunk_tokens: u64) -> Self {
        self.prefill(PrefillConfig::chunked(chunk_tokens))
    }

    /// Sets the preemption policy: what continuous batching may do when
    /// an arrived request cannot be admitted for lack of KV memory
    /// (default: [`PreemptionPolicy::None`], admitted requests always
    /// run to completion). Eviction requires priority diversity in the
    /// trace — victims must have strictly lower priority than the
    /// blocked candidate.
    pub fn preemption(mut self, preemption: PreemptionPolicy) -> Self {
        self.preemption = preemption;
        self
    }

    /// Under memory pressure, evict lower-priority running requests and
    /// restart them from scratch later (their KV *and* generated tokens
    /// are dropped).
    pub fn evict_restart(self) -> Self {
        self.preemption(PreemptionPolicy::EvictRestart)
    }

    /// Under memory pressure, evict lower-priority running requests but
    /// keep their generated tokens; on resume the prompt plus kept
    /// tokens are re-prefilled as an extended prompt and decoding
    /// continues where it stopped.
    pub fn evict_pause(self) -> Self {
        self.preemption(PreemptionPolicy::EvictPause)
    }

    /// Scales the replica KV pool (default 1.0 = hardware capacity).
    /// Fractions below one model memory pressure — the regime where
    /// preemption policies matter — without re-sizing the system.
    pub fn kv_capacity_factor(mut self, factor: f64) -> Self {
        self.kv_capacity_factor = factor;
        self
    }

    /// Sets the cross-replica load balancer routing each arrival to a
    /// replica (default: [`RouterKind::RoundRobin`], which reproduces
    /// trace-level partitioning bit-exactly).
    pub fn router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Routes arrivals to the replica with the fewest in-flight requests
    /// (join-shortest-queue) — the bursty-traffic tail-latency policy.
    pub fn join_shortest_queue(self) -> Self {
        self.router(RouterKind::JoinShortestQueue)
    }

    /// Simulates replicas on up to `threads` scoped threads (`0` means
    /// one per available CPU). Reports are byte-identical whatever the
    /// thread count — parallelism only changes wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds the orchestrator.
    pub fn build(self) -> Orchestrator {
        Orchestrator {
            evaluator: Evaluator::new(self.system, self.model, self.techniques)
                .with_policy(self.policy)
                .with_preemption(self.preemption)
                .with_prefill(self.prefill)
                .with_kv_capacity_factor(self.kv_capacity_factor),
            router: self.router,
            threads: self.threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Dataset, TraceBuilder};

    #[test]
    fn builder_presets_produce_working_orchestrators() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(1)
            .requests(6)
            .decode_len(8)
            .build();
        let pim = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .build();
        let xpu = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .xpu_pim()
            .build();
        assert!(pim.serve(&trace).tokens_per_second > 0.0);
        assert!(xpu.serve(&trace).tokens_per_second > 0.0);
    }

    #[test]
    fn baseline_vs_pimphony_end_to_end() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(2)
            .requests(8)
            .decode_len(8)
            .build();
        let base = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .baseline()
            .build();
        let full = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .full_pimphony()
            .build();
        let rb = base.serve(&trace);
        let rf = full.serve(&trace);
        assert!(rf.tokens_per_second > rb.tokens_per_second);
        assert!(rf.attn_utilization > rb.attn_utilization);
    }

    #[test]
    fn parallel_override_applies() {
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .parallel(2, 4)
            .build();
        assert_eq!(o.evaluator().system().parallel.tp, 2);
        assert_eq!(o.evaluator().system().parallel.pp, 4);
    }

    #[test]
    fn iteration_is_exposed() {
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K).build();
        let it = o.iteration(&[(0, 8192), (1, 4096)]);
        assert!(it.seconds > 0.0);
        assert!(it.attn_seconds > 0.0);
    }

    #[test]
    fn policy_selection_flows_through_builder() {
        let wave = OrchestratorBuilder::new(llm_model::LLM_7B_32K).build();
        let cont = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .continuous_batching()
            .build();
        assert_eq!(wave.policy(), SchedulingPolicy::Wave);
        assert_eq!(cont.policy(), SchedulingPolicy::Continuous);
        assert_eq!(
            wave.policy(),
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .continuous_batching()
                .wave_serving()
                .build()
                .policy()
        );
    }

    #[test]
    fn router_and_threads_flow_through_builder() {
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .continuous_batching()
            .join_shortest_queue()
            .threads(4)
            .build();
        assert_eq!(o.router(), RouterKind::JoinShortestQueue);
        assert_eq!(o.threads(), 4);
        assert_eq!(
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .router(RouterKind::LeastLoaded)
                .build()
                .router(),
            RouterKind::LeastLoaded
        );
        assert_eq!(
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .build()
                .router(),
            RouterKind::RoundRobin
        );
    }

    #[test]
    fn parallel_serving_matches_sequential_exactly() {
        // 4 replicas, bursty arrivals, JSQ: the report must not depend on
        // the simulation thread count.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(32)
            .decode_range(8, 48)
            .bursty(8.0, 2.5)
            .build();
        let build = |threads| {
            OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .parallel(2, 1)
                .continuous_batching()
                .join_shortest_queue()
                .threads(threads)
                .build()
        };
        let sequential = build(1).serve(&trace);
        let parallel = build(4).serve(&trace);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn chunked_prefill_flows_through_builder_and_dominates_ttft() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(4)
            .requests(8)
            .decode_range(8, 32)
            .poisson(3.0)
            .build();
        let build = |prefill: bool| {
            let b = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
                .pim_only()
                .full_pimphony()
                .continuous_batching();
            if prefill { b.chunked_prefill(512) } else { b }.build()
        };
        let decode_only = build(false);
        let end_to_end = build(true);
        assert!(!decode_only.evaluator().prefill_config().enabled);
        assert!(end_to_end.evaluator().prefill_config().enabled);
        assert_eq!(end_to_end.evaluator().prefill_config().chunk_tokens, 512);
        let rd = decode_only.serve(&trace);
        let re = end_to_end.serve(&trace);
        assert_eq!(rd.tokens, re.tokens, "same decode work");
        assert_eq!(rd.prefill_tokens, 0);
        assert!(re.prefill_tokens > 0);
        assert!(re.latency.ttft.p50 > rd.latency.ttft.p50);
        assert!(re.latency.prefill.p50 > 0.0);
    }

    #[test]
    fn continuous_batching_reports_latency_percentiles() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(4)
            .requests(20)
            .decode_range(8, 32)
            .poisson(3.0)
            .build();
        let o = OrchestratorBuilder::new(llm_model::LLM_7B_32K)
            .pim_only()
            .full_pimphony()
            .continuous_batching()
            .build();
        let r = o.serve(&trace);
        assert_eq!(r.latency.completed, trace.len() as u64);
        assert!(r.latency.ttft.p50 > 0.0);
        assert!(r.latency.ttft.p50 <= r.latency.ttft.p99);
        assert_eq!(r.tokens, trace.total_decode_tokens());
    }
}
