//! DRAM-PIM timing parameters.
//!
//! All values are in memory-controller cycles. The defaults are flavoured
//! after SK hynix AiM/AiMX GDDR6-PIM publications; they are *calibration
//! inputs*, not claims — the reproduction targets relative behaviour
//! (stalls, overlap, utilization), which is governed by the ratios between
//! these constants.

use serde::{Deserialize, Serialize};

/// Timing constants for one PIM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Minimum command-to-command issue interval on the command/data bus
    /// (`t_CCDS` in the paper's Fig. 7).
    pub t_ccds: u64,
    /// Execution time of a `WR-INP` (32 B tile transfer into GBuf).
    pub t_wr_inp: u64,
    /// Execution time of a `MAC` (per-bank dot product + accumulate).
    pub t_mac: u64,
    /// Execution time of an `RD-OUT` (2 B x 16 banks drain).
    pub t_rd_out: u64,
    /// Row activation time (`t_ACT`).
    pub t_act: u64,
    /// Precharge time (`t_PRE`).
    pub t_pre: u64,
    /// Average refresh interval (`t_REFI`); `0` disables refresh.
    pub t_refi: u64,
    /// Refresh cycle time (`t_RFC`).
    pub t_rfc: u64,
}

impl Timing {
    /// AiMX-flavoured defaults used throughout the evaluation.
    pub fn aimx() -> Self {
        Timing {
            t_ccds: 2,
            t_wr_inp: 8,
            t_mac: 8,
            t_rd_out: 8,
            t_act: 24,
            t_pre: 16,
            t_refi: 3900,
            t_rfc: 350,
        }
    }

    /// Same as [`Timing::aimx`] but with refresh disabled — useful for
    /// deterministic micro-examples such as the Fig. 7 timing diagram.
    pub fn aimx_no_refresh() -> Self {
        Timing {
            t_refi: 0,
            ..Self::aimx()
        }
    }

    /// Row switch penalty (`t_PRE + t_ACT`).
    pub fn row_switch(&self) -> u64 {
        self.t_pre + self.t_act
    }

    /// Execution time of a command of the given ISA kind.
    pub fn exec_time(&self, kind: pim_isa::InstructionKind) -> u64 {
        match kind {
            pim_isa::InstructionKind::WrInp => self.t_wr_inp,
            pim_isa::InstructionKind::Mac => self.t_mac,
            pim_isa::InstructionKind::RdOut => self.t_rd_out,
        }
    }
}

impl Default for Timing {
    fn default() -> Self {
        Self::aimx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let t = Timing::default();
        assert!(t.t_ccds <= t.t_wr_inp);
        assert!(t.t_ccds <= t.t_mac);
        assert!(t.t_ccds <= t.t_rd_out);
        assert!(t.t_rfc < t.t_refi);
    }

    #[test]
    fn no_refresh_variant_disables_refi() {
        assert_eq!(Timing::aimx_no_refresh().t_refi, 0);
        assert_eq!(Timing::aimx_no_refresh().t_mac, Timing::aimx().t_mac);
    }

    #[test]
    fn row_switch_sums_pre_and_act() {
        let t = Timing::aimx();
        assert_eq!(t.row_switch(), t.t_pre + t.t_act);
    }
}
