//! Execution schedules and latency/energy breakdown reports.

use pim_isa::CommandId;
use serde::{Deserialize, Serialize};

/// Per-command issue and completion times produced by a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandTiming {
    /// Command identity (mirrors the stream).
    pub id: CommandId,
    /// Cycle the command was issued on the command bus.
    pub issue: u64,
    /// Cycle its effect (write/accumulate/drain) is complete.
    pub complete: u64,
}

/// Stall attribution categories (paper Fig. 8's stacked bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Cycles the MAC pipeline was usefully busy (`n_mac * t_CCDS`).
    pub mac: u64,
    /// Input-transfer time and stalls waiting on GBuf writes (`DT-GBuf`).
    pub dt_gbuf: u64,
    /// Output-drain time and stalls waiting on OutReg/OBuf (`DT-OutReg`).
    pub dt_outreg: u64,
    /// DRAM activate/precharge cycles.
    pub act_pre: u64,
    /// Refresh cycles.
    pub refresh: u64,
    /// Residual pipeline stalls not attributable to the above.
    pub pipeline: u64,
}

impl Breakdown {
    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.mac + self.dt_gbuf + self.dt_outreg + self.act_pre + self.refresh + self.pipeline
    }
}

/// Result of scheduling one command stream on one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Per-command timings, in program order.
    pub timings: Vec<CommandTiming>,
    /// Makespan: completion cycle of the last command.
    pub cycles: u64,
    /// Stall attribution.
    pub breakdown: Breakdown,
    /// Number of `MAC` commands executed.
    pub mac_count: u64,
    /// Number of `WR-INP` commands executed.
    pub wr_inp_count: u64,
    /// Number of `RD-OUT` commands executed.
    pub rd_out_count: u64,
    /// Number of DRAM row switches (ACT/PRE events).
    pub row_switches: u64,
    /// Number of refresh windows crossed.
    pub refresh_events: u64,
}

impl ExecutionReport {
    /// MAC-pipeline utilization in `[0, 1]`: the fraction of the makespan
    /// during which the MAC units were fed at peak issue rate.
    pub fn mac_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.breakdown.mac as f64 / self.cycles as f64).min(1.0)
    }

    /// Issue cycle of the command with `id`, if present.
    pub fn issue_of(&self, id: CommandId) -> Option<u64> {
        self.timings.iter().find(|t| t.id == id).map(|t| t.issue)
    }

    /// Effective MAC throughput in multiply-accumulate lane-operations per
    /// cycle, given the channel geometry's lane count.
    pub fn mac_ops_per_cycle(&self, mac_lanes: u32) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.mac_count as f64 * f64::from(mac_lanes) / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let r = ExecutionReport {
            timings: vec![],
            cycles: 100,
            breakdown: Breakdown {
                mac: 40,
                ..Default::default()
            },
            mac_count: 20,
            wr_inp_count: 0,
            rd_out_count: 0,
            row_switches: 0,
            refresh_events: 0,
        };
        assert!((r.mac_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_report_zero_utilization() {
        let r = ExecutionReport {
            timings: vec![],
            cycles: 0,
            breakdown: Breakdown::default(),
            mac_count: 0,
            wr_inp_count: 0,
            rd_out_count: 0,
            row_switches: 0,
            refresh_events: 0,
        };
        assert_eq!(r.mac_utilization(), 0.0);
        assert_eq!(r.mac_ops_per_cycle(256), 0.0);
    }

    #[test]
    fn breakdown_total_sums_fields() {
        let b = Breakdown {
            mac: 1,
            dt_gbuf: 2,
            dt_outreg: 3,
            act_pre: 4,
            refresh: 5,
            pipeline: 6,
        };
        assert_eq!(b.total(), 21);
    }
}
