//! PIM command schedulers.
//!
//! Three controller designs are modeled (paper §V):
//!
//! * [`SchedulerKind::Static`] — the conventional in-order controller that
//!   separates consecutive commands by worst-case gaps derived from command
//!   execution times, with no per-entry dependency tracking.
//! * [`SchedulerKind::PingPong`] — the prior-work double-buffering scheme:
//!   I/O and MAC may overlap only when touching different buffer *halves*;
//!   hand-offs between halves stall (modeled as half-granular dependency
//!   tracking).
//! * [`SchedulerKind::Dcs`] — PIMphony's Dynamic Command Scheduling:
//!   per-entry D-Table/S-Table tracking, split I/O and compute queues with
//!   out-of-order issue across queues, and the `is-MAC` fast path that lets
//!   back-to-back MACs on one OBuf entry issue at `t_CCDS`.
//!
//! All schedulers only reorder *timing*; they never change results. The
//! [`crate::checker`] module replays any schedule against the hazard rules
//! to prove this.

mod dynamic;
mod static_sched;

pub use dynamic::{DynamicScheduler, Tracking};
pub use static_sched::StaticScheduler;

use crate::geometry::Geometry;
use crate::report::ExecutionReport;
use crate::timing::Timing;
use pim_isa::command::CommandStream;
use serde::{Deserialize, Serialize};

/// Which controller scheduling policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Conservative in-order issue with type-derived gaps.
    Static,
    /// Double-buffered overlap at buffer-half granularity.
    PingPong,
    /// PIMphony's dependency-aware dynamic scheduling.
    Dcs,
}

impl SchedulerKind {
    /// All scheduler kinds, for sweeps.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Static,
        SchedulerKind::PingPong,
        SchedulerKind::Dcs,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Static => "static",
            SchedulerKind::PingPong => "ping-pong",
            SchedulerKind::Dcs => "dcs",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Schedules `stream` on one channel under the given policy.
///
/// # Example
///
/// ```
/// use pim_isa::command::{CommandStream, PimCommand};
/// use pim_sim::{schedule, Geometry, SchedulerKind, Timing};
///
/// let mut s = CommandStream::new();
/// s.push(PimCommand::wr_inp(0, 0, 0));
/// s.push(PimCommand::mac(1, 0, 0, 0, 0));
/// s.push(PimCommand::rd_out(2, 0, 0));
/// let report = schedule(&s, SchedulerKind::Dcs, &Timing::aimx_no_refresh(), &Geometry::pimphony());
/// assert_eq!(report.timings.len(), 3);
/// ```
pub fn schedule(
    stream: &CommandStream,
    kind: SchedulerKind,
    timing: &Timing,
    geometry: &Geometry,
) -> ExecutionReport {
    match kind {
        SchedulerKind::Static => StaticScheduler::new(*timing, *geometry).run(stream),
        SchedulerKind::PingPong => {
            DynamicScheduler::new(*timing, *geometry, Tracking::PerHalf).run(stream)
        }
        SchedulerKind::Dcs => {
            DynamicScheduler::new(*timing, *geometry, Tracking::PerEntry).run(stream)
        }
    }
}

/// Shared refresh bookkeeping used by both engines.
#[derive(Debug, Clone)]
pub(crate) struct RefreshState {
    next: u64,
    interval: u64,
    duration: u64,
    pub events: u64,
    pub cycles: u64,
}

impl RefreshState {
    pub(crate) fn new(timing: &Timing) -> Self {
        RefreshState {
            next: if timing.t_refi == 0 {
                u64::MAX
            } else {
                timing.t_refi
            },
            interval: timing.t_refi.max(1),
            duration: timing.t_rfc,
            events: 0,
            cycles: 0,
        }
    }

    /// Pushes a candidate issue time past any refresh windows it collides
    /// with, accounting the stall.
    pub(crate) fn adjust(&mut self, mut t: u64) -> u64 {
        while t >= self.next {
            let window_end = self.next + self.duration;
            if t < window_end {
                self.cycles += window_end - t;
                t = window_end;
            }
            self.next += self.interval;
            self.events += 1;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::PimCommand;

    fn tiny_stream() -> CommandStream {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        s
    }

    #[test]
    fn all_schedulers_cover_all_commands() {
        let s = tiny_stream();
        for kind in SchedulerKind::ALL {
            let r = schedule(&s, kind, &Timing::aimx_no_refresh(), &Geometry::pimphony());
            assert_eq!(r.timings.len(), 3, "{kind}");
            assert!(r.cycles > 0, "{kind}");
        }
    }

    #[test]
    fn refresh_pushes_past_window() {
        let t = Timing {
            t_refi: 100,
            t_rfc: 10,
            ..Timing::aimx()
        };
        let mut r = RefreshState::new(&t);
        assert_eq!(r.adjust(50), 50);
        assert_eq!(r.adjust(100), 110);
        assert_eq!(r.events, 1);
        assert_eq!(r.cycles, 10);
        // Next window at 200.
        assert_eq!(r.adjust(150), 150);
        assert_eq!(r.adjust(205), 210);
    }

    #[test]
    fn refresh_disabled_when_refi_zero() {
        let t = Timing::aimx_no_refresh();
        let mut r = RefreshState::new(&t);
        assert_eq!(r.adjust(u64::MAX / 2), u64::MAX / 2);
        assert_eq!(r.events, 0);
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            SchedulerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
