//! The conventional static in-order PIM controller (paper §V-A).
//!
//! Commands issue strictly in program order. Because the controller tracks
//! no per-entry state, it must assume any adjacent pair of commands of
//! conflicting *types* may conflict, and separates them by the predecessor's
//! full execution time:
//!
//! * `WR-INP → MAC`: wait `t_WR-INP` (the input tile might be the MAC's).
//! * `MAC → RD-OUT` and `MAC → WR-INP`: wait `t_MAC`.
//! * `RD-OUT → MAC`: wait `t_RD-OUT`.
//! * Same-type neighbours pipeline at `t_CCDS` (the hardware supports
//!   back-to-back same-type streaming).

use super::RefreshState;
use crate::geometry::Geometry;
use crate::report::{Breakdown, CommandTiming, ExecutionReport};
use crate::timing::Timing;
use pim_isa::command::{CommandKind, CommandStream};

/// In-order scheduler with type-derived conservative gaps.
#[derive(Debug, Clone)]
pub struct StaticScheduler {
    timing: Timing,
    #[allow(dead_code)]
    geometry: Geometry,
}

impl StaticScheduler {
    /// Creates a static scheduler for a channel.
    pub fn new(timing: Timing, geometry: Geometry) -> Self {
        StaticScheduler { timing, geometry }
    }

    /// Minimum issue gap after `prev` before `cur` may issue.
    fn gap(&self, prev: &CommandKind, cur: &CommandKind) -> u64 {
        let t = &self.timing;
        match (prev, cur) {
            (CommandKind::WrInp { .. }, CommandKind::Mac { .. }) => t.t_wr_inp,
            (CommandKind::Mac { .. }, CommandKind::RdOut { .. }) => t.t_mac,
            (CommandKind::Mac { .. }, CommandKind::WrInp { .. }) => t.t_mac,
            (CommandKind::RdOut { .. }, CommandKind::Mac { .. }) => t.t_rd_out,
            (CommandKind::RdOut { .. }, CommandKind::WrInp { .. }) => t.t_rd_out,
            _ => t.t_ccds,
        }
    }

    /// Schedules the stream, returning timings and a stall breakdown.
    pub fn run(&self, stream: &CommandStream) -> ExecutionReport {
        let t = self.timing;
        let mut refresh = RefreshState::new(&t);
        let mut timings = Vec::with_capacity(stream.len());
        let mut breakdown = Breakdown::default();
        let mut prev_kind: Option<CommandKind> = None;
        let mut prev_issue: u64 = 0;
        let mut open_row: Option<u32> = None;
        let mut row_ready: u64 = 0;
        let mut makespan = 0;
        let (mut n_w, mut n_m, mut n_r, mut switches) = (0u64, 0u64, 0u64, 0u64);

        for cmd in stream.iter() {
            let min_issue = match prev_kind {
                None => 0,
                Some(prev) => prev_issue + self.gap(&prev, &cmd.kind),
            };
            let mut issue = min_issue;
            // Row management applies to MACs only.
            let mut switched = false;
            if let CommandKind::Mac { row, .. } = cmd.kind {
                if open_row != Some(row) {
                    switched = true;
                } else {
                    issue = issue.max(row_ready);
                }
            }
            let issue_before_refresh = issue;
            issue = refresh.adjust(issue);
            let refresh_stall = issue - issue_before_refresh;

            // Attribute the gap beyond the pipelined minimum to the
            // predecessor's type.
            if let Some(prev) = prev_kind {
                let base = prev_issue + t.t_ccds;
                if issue_before_refresh > base {
                    let stall = issue_before_refresh - base;
                    match prev {
                        CommandKind::WrInp { .. } => breakdown.dt_gbuf += stall,
                        CommandKind::Mac { .. } => breakdown.pipeline += stall,
                        CommandKind::RdOut { .. } => breakdown.dt_outreg += stall,
                    }
                }
            }
            breakdown.refresh += refresh_stall;

            // For subsequent gap computation, a row-switching MAC behaves
            // as if issued once its row finished opening (the static
            // controller waits out the full ACT/PRE window).
            let mut effective_issue = issue;
            let complete = match cmd.kind {
                CommandKind::WrInp { .. } => {
                    n_w += 1;
                    issue + t.t_wr_inp
                }
                CommandKind::Mac { row, .. } => {
                    n_m += 1;
                    if switched {
                        switches += 1;
                        open_row = Some(row);
                        // Pipelined row opening (see the dynamic engine):
                        // a switch following a long same-row run is hidden.
                        let new_ready = issue.max(row_ready + t.row_switch());
                        breakdown.act_pre += new_ready - issue;
                        row_ready = new_ready;
                        effective_issue = row_ready;
                        row_ready + t.t_mac
                    } else {
                        issue + t.t_mac
                    }
                }
                CommandKind::RdOut { .. } => {
                    n_r += 1;
                    issue + t.t_rd_out
                }
            };
            makespan = makespan.max(complete);
            timings.push(CommandTiming {
                id: cmd.id,
                issue,
                complete,
            });
            prev_kind = Some(cmd.kind);
            prev_issue = effective_issue;
        }

        breakdown.mac = n_m * t.t_ccds;
        let attributed = breakdown.total();
        breakdown.pipeline += makespan.saturating_sub(attributed);

        ExecutionReport {
            timings,
            cycles: makespan,
            breakdown,
            mac_count: n_m,
            wr_inp_count: n_w,
            rd_out_count: n_r,
            row_switches: switches,
            refresh_events: refresh.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::PimCommand;

    fn sched() -> StaticScheduler {
        StaticScheduler::new(Timing::aimx_no_refresh(), Geometry::baseline())
    }

    #[test]
    fn in_order_issue() {
        let mut s = CommandStream::new();
        for i in 0..6 {
            s.push(PimCommand::wr_inp(i, i as u16, 0));
        }
        let r = sched().run(&s);
        let issues: Vec<u64> = r.timings.iter().map(|t| t.issue).collect();
        // Same-type commands pipeline at t_CCDS = 2 (paper Fig. 7(b)).
        assert_eq!(issues, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn mac_after_write_waits_full_write() {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        let r = sched().run(&s);
        let t = Timing::aimx_no_refresh();
        assert_eq!(r.timings[1].issue, t.t_wr_inp);
    }

    #[test]
    fn rd_out_after_mac_waits_full_mac() {
        let mut s = CommandStream::new();
        s.push(PimCommand::mac(0, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(1, 0, 0));
        let r = sched().run(&s);
        let t = Timing::aimx_no_refresh();
        // MAC at 0 opens a row, so RD-OUT waits row-open + t_mac.
        assert_eq!(r.timings[1].issue, t.row_switch() + t.t_mac);
        assert_eq!(r.row_switches, 1);
    }

    #[test]
    fn row_switch_counted_once_per_row() {
        let mut s = CommandStream::new();
        s.push(PimCommand::mac(0, 0, 0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 1, 0));
        s.push(PimCommand::mac(2, 0, 1, 0, 0));
        let r = sched().run(&s);
        assert_eq!(r.row_switches, 2);
        // Back-to-back switches cannot hide behind MAC runs, so both cost
        // activation time.
        assert!(r.breakdown.act_pre > Timing::aimx().row_switch());
    }

    #[test]
    fn refresh_accounted() {
        let t = Timing {
            t_refi: 20,
            t_rfc: 5,
            ..Timing::aimx()
        };
        let sched = StaticScheduler::new(t, Geometry::baseline());
        let mut s = CommandStream::new();
        for i in 0..40 {
            s.push(PimCommand::wr_inp(i, (i % 8) as u16, 0));
        }
        let r = sched.run(&s);
        assert!(r.refresh_events > 0);
        assert!(r.breakdown.refresh > 0);
    }

    #[test]
    fn breakdown_sums_to_makespan() {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        let r = sched().run(&s);
        assert_eq!(r.breakdown.total(), r.cycles);
    }
}
