//! Dynamic PIM Command Scheduling (paper §V-C) and its ping-pong ablation.
//!
//! The controller splits commands into an I/O transfer queue (`WR-INP`,
//! `RD-OUT`) and a compute queue (`MAC`). Each queue issues in order, but
//! the two queues issue out-of-order with respect to each other whenever
//! per-entry dependencies allow — exactly the D-Table / S-Table mechanism
//! of Fig. 7(c):
//!
//! * The **D-Table** records, per buffer entry, the most recent command
//!   that accessed it; an arriving command's Dependency ID (DID) points at
//!   that command. DIDs are assigned in *program order* as commands arrive.
//! * The **S-Table** records, per entry, the access's expiry timestamp and
//!   an `is-MAC` flag; a command may issue only once its DID's entry has
//!   expired. Consecutive MACs accumulating into the same OBuf entry take
//!   the `is-MAC` fast path and issue at `t_CCDS`.
//!
//! [`Tracking::PerHalf`] coarsens the tables to two regions per buffer,
//! which reproduces *ping-pong buffering*: overlap is possible only across
//! halves, and half hand-offs stall until the previous occupant drains
//! (paper §VIII-C, Fig. 18).

use super::RefreshState;
use crate::geometry::Geometry;
use crate::report::{Breakdown, CommandTiming, ExecutionReport};
use crate::timing::Timing;
use pim_isa::command::{CommandKind, CommandStream};

/// Dependency-tracking granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tracking {
    /// Per-entry D-Table/S-Table (DCS).
    PerEntry,
    /// Two regions per buffer (ping-pong double buffering).
    PerHalf,
}

/// How a dependency's release time derives from its producer's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepRule {
    /// Wait for the producer to fully complete.
    Completion,
    /// `is-MAC` fast path / bus pipelining: producer issue + `t_CCDS`.
    IssuePlusCcds,
}

/// A resolved dependency: index of the producing command + release rule.
#[derive(Debug, Clone, Copy)]
struct Dep {
    producer: usize,
    rule: DepRule,
}

/// Which buffer was touched, and how (for D-Table threading).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Write,
    MacRead,
    MacAcc,
    Drain,
}

/// Out-of-order (across queues) dependency-aware scheduler.
#[derive(Debug, Clone)]
pub struct DynamicScheduler {
    timing: Timing,
    geometry: Geometry,
    tracking: Tracking,
}

impl DynamicScheduler {
    /// Creates a dynamic scheduler with the given tracking granularity.
    pub fn new(timing: Timing, geometry: Geometry, tracking: Tracking) -> Self {
        DynamicScheduler {
            timing,
            geometry,
            tracking,
        }
    }

    fn gbuf_region(&self, entry: u16) -> usize {
        match self.tracking {
            Tracking::PerEntry => entry as usize,
            Tracking::PerHalf => usize::from(u32::from(entry) >= self.geometry.gbuf_entries / 2),
        }
    }

    fn obuf_region(&self, entry: u16) -> usize {
        match self.tracking {
            Tracking::PerEntry => entry as usize,
            Tracking::PerHalf => {
                usize::from(u32::from(entry) >= (self.geometry.out_entries / 2).max(1))
            }
        }
    }

    /// Walks the stream in program order, assigning each command its GBuf
    /// and OBuf dependencies exactly as the D-Table would.
    fn assign_deps(&self, stream: &CommandStream) -> Vec<(Option<Dep>, Option<Dep>)> {
        let gbuf_regions = match self.tracking {
            Tracking::PerEntry => self.geometry.gbuf_entries as usize,
            Tracking::PerHalf => 2,
        };
        let obuf_regions = match self.tracking {
            Tracking::PerEntry => self.geometry.out_entries as usize,
            Tracking::PerHalf => 2,
        };
        let mut gbuf: Vec<Option<(usize, AccessKind)>> = vec![None; gbuf_regions.max(1)];
        let mut obuf: Vec<Option<(usize, AccessKind)>> = vec![None; obuf_regions.max(1)];
        let mut deps = Vec::with_capacity(stream.len());

        for (idx, cmd) in stream.iter().enumerate() {
            let mut g_dep = None;
            let mut o_dep = None;
            match cmd.kind {
                CommandKind::WrInp { gbuf_idx, .. } => {
                    let r = self.gbuf_region(gbuf_idx);
                    if let Some((p, kind)) = gbuf[r] {
                        g_dep = Some(match kind {
                            // Write-after-write streams over the pipelined
                            // data bus; issue order suffices.
                            AccessKind::Write => Dep {
                                producer: p,
                                rule: DepRule::IssuePlusCcds,
                            },
                            // WAR after a MAC read: the read must complete
                            // before its input may be overwritten.
                            _ => Dep {
                                producer: p,
                                rule: DepRule::Completion,
                            },
                        });
                    }
                    gbuf[r] = Some((idx, AccessKind::Write));
                }
                CommandKind::Mac {
                    gbuf_idx, out_idx, ..
                } => {
                    let r = self.gbuf_region(gbuf_idx);
                    if let Some((p, kind)) = gbuf[r] {
                        if kind == AccessKind::Write {
                            // RAW: the input tile must be fully written.
                            g_dep = Some(Dep {
                                producer: p,
                                rule: DepRule::Completion,
                            });
                        }
                    }
                    gbuf[r] = Some((idx, AccessKind::MacRead));
                    let ro = self.obuf_region(out_idx);
                    if let Some((p, kind)) = obuf[ro] {
                        o_dep = Some(match kind {
                            // is-MAC fast path: accumulator chaining.
                            AccessKind::MacAcc => Dep {
                                producer: p,
                                rule: DepRule::IssuePlusCcds,
                            },
                            _ => Dep {
                                producer: p,
                                rule: DepRule::Completion,
                            },
                        });
                    }
                    obuf[ro] = Some((idx, AccessKind::MacAcc));
                }
                CommandKind::RdOut { out_idx, .. } => {
                    let ro = self.obuf_region(out_idx);
                    if let Some((p, kind)) = obuf[ro] {
                        o_dep = Some(match kind {
                            // RAW: the accumulation must be complete.
                            AccessKind::MacAcc => Dep {
                                producer: p,
                                rule: DepRule::Completion,
                            },
                            AccessKind::Drain => Dep {
                                producer: p,
                                rule: DepRule::IssuePlusCcds,
                            },
                            _ => Dep {
                                producer: p,
                                rule: DepRule::Completion,
                            },
                        });
                    }
                    obuf[ro] = Some((idx, AccessKind::Drain));
                }
            }
            deps.push((g_dep, o_dep));
        }
        deps
    }

    /// Schedules the stream.
    pub fn run(&self, stream: &CommandStream) -> ExecutionReport {
        let t = self.timing;
        let cmds: Vec<_> = stream.iter().collect();
        let deps = self.assign_deps(stream);

        let mut io_q: std::collections::VecDeque<usize> = Default::default();
        let mut cp_q: std::collections::VecDeque<usize> = Default::default();
        for (idx, cmd) in cmds.iter().enumerate() {
            if cmd.kind.is_io() {
                io_q.push_back(idx);
            } else {
                cp_q.push_back(idx);
            }
        }

        let mut issue_at: Vec<Option<u64>> = vec![None; cmds.len()];
        let mut complete_at: Vec<Option<u64>> = vec![None; cmds.len()];
        let mut refresh = RefreshState::new(&t);
        let mut breakdown = Breakdown::default();
        let mut bus_free: u64 = 0;
        let mut open_row: Option<u32> = None;
        let mut row_ready: u64 = 0;
        let mut last_mac_complete: u64 = 0;
        let mut makespan: u64 = 0;
        let (mut n_w, mut n_m, mut n_r, mut switches) = (0u64, 0u64, 0u64, 0u64);

        /// Release time of a dependency, or `None` if the producer has not
        /// issued yet (the consumer must keep waiting).
        fn release(
            dep: Option<Dep>,
            issue_at: &[Option<u64>],
            complete_at: &[Option<u64>],
            t_ccds: u64,
        ) -> Option<u64> {
            match dep {
                None => Some(0),
                Some(d) => match (issue_at[d.producer], complete_at[d.producer]) {
                    (Some(i), Some(c)) => Some(match d.rule {
                        DepRule::Completion => c,
                        DepRule::IssuePlusCcds => i + t_ccds,
                    }),
                    _ => None,
                },
            }
        }

        while !io_q.is_empty() || !cp_q.is_empty() {
            // Earliest-issue candidate from each queue head: (ready time,
            // gbuf release, obuf release). `None` = blocked on an unissued
            // producer.
            let eval = |idx: usize| -> Option<(u64, u64, u64, u64)> {
                let (g_dep, o_dep) = deps[idx];
                let g = release(g_dep, &issue_at, &complete_at, t.t_ccds)?;
                let o = release(o_dep, &issue_at, &complete_at, t.t_ccds)?;
                let mut row = 0;
                if let CommandKind::Mac { row: r, .. } = cmds[idx].kind {
                    if open_row == Some(r) {
                        row = row_ready;
                    }
                }
                Some((bus_free.max(g).max(o).max(row), g, o, row))
            };

            let io_head = io_q.front().and_then(|&i| eval(i).map(|e| (i, e)));
            let cp_head = cp_q.front().and_then(|&i| eval(i).map(|e| (i, e)));

            // Pick the queue whose head is ready first; ties go to compute
            // to keep the MAC pipeline fed.
            let take_compute = match (io_head, cp_head) {
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some((_, (io_t, ..))), Some((_, (cp_t, ..)))) => cp_t <= io_t,
                (None, None) => {
                    unreachable!("deadlock: both queue heads blocked on unissued producers")
                }
            };
            let (idx, (ready, g_rel, o_rel, row_rel)) = if take_compute {
                cp_q.pop_front();
                cp_head.expect("compute head")
            } else {
                io_q.pop_front();
                io_head.expect("io head")
            };

            let issue = refresh.adjust(ready);
            breakdown.refresh += issue - ready;

            // Attribute stall beyond bus availability to its binding
            // constraint.
            let stall = ready.saturating_sub(bus_free);
            if stall > 0 {
                if g_rel >= o_rel && g_rel >= row_rel {
                    breakdown.dt_gbuf += stall;
                } else if o_rel >= row_rel {
                    breakdown.dt_outreg += stall;
                } else {
                    breakdown.act_pre += stall;
                }
            }

            let complete = match cmds[idx].kind {
                CommandKind::WrInp { .. } => {
                    n_w += 1;
                    issue + t.t_wr_inp
                }
                CommandKind::Mac { row, .. } => {
                    n_m += 1;
                    let complete = if open_row == Some(row) {
                        issue.max(row_ready) + t.t_mac
                    } else {
                        switches += 1;
                        open_row = Some(row);
                        // Row opening pipelines behind ongoing reads (bank
                        // groups prepare the next row while the current one
                        // streams): back-to-back switches are spaced by the
                        // row cycle, but a switch after a long MAC run is
                        // fully hidden.
                        let new_ready = issue.max(row_ready + t.row_switch());
                        breakdown.act_pre += new_ready - issue;
                        row_ready = new_ready;
                        row_ready + t.t_mac
                    };
                    last_mac_complete = last_mac_complete.max(complete);
                    complete
                }
                CommandKind::RdOut { .. } => {
                    n_r += 1;
                    issue + t.t_rd_out
                }
            };

            bus_free = issue + t.t_ccds;
            makespan = makespan.max(complete);
            issue_at[idx] = Some(issue);
            complete_at[idx] = Some(complete);
        }

        let timings: Vec<CommandTiming> = cmds
            .iter()
            .enumerate()
            .map(|(i, cmd)| CommandTiming {
                id: cmd.id,
                issue: issue_at[i].expect("scheduled"),
                complete: complete_at[i].expect("scheduled"),
            })
            .collect();
        breakdown.mac = n_m * t.t_ccds;
        let attributed = breakdown.total();
        breakdown.pipeline += makespan.saturating_sub(attributed);

        ExecutionReport {
            timings,
            cycles: makespan,
            breakdown,
            mac_count: n_m,
            wr_inp_count: n_w,
            rd_out_count: n_r,
            row_switches: switches,
            refresh_events: refresh.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::PimCommand;

    fn dcs() -> DynamicScheduler {
        DynamicScheduler::new(
            Timing::aimx_no_refresh(),
            Geometry::pimphony(),
            Tracking::PerEntry,
        )
    }

    fn stream_wmr() -> CommandStream {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        s
    }

    #[test]
    fn raw_dependency_enforced() {
        let r = dcs().run(&stream_wmr());
        let t = Timing::aimx_no_refresh();
        // MAC cannot start before the WR-INP completes.
        assert!(r.timings[1].issue >= t.t_wr_inp);
        // RD-OUT cannot issue before the MAC completes.
        assert!(r.timings[2].issue >= r.timings[1].complete);
    }

    #[test]
    fn independent_mac_overlaps_pending_write() {
        // W0 -> gbuf0, M1 reads gbuf0, W2 -> gbuf1: M1 may issue before W2.
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::wr_inp(2, 1, 32));
        let r = dcs().run(&s);
        // W2 is independent of M1, so it issues while M1's data is still
        // being accumulated (out-of-order across queues).
        let m1 = r.timings[1];
        let w2 = r.timings[2];
        assert!(w2.issue < m1.complete || m1.issue < w2.complete);
        // And W2 should not be delayed until M1 completes.
        assert!(w2.issue < m1.complete, "w2 {} m1 {}", w2.issue, m1.complete);
    }

    #[test]
    fn is_mac_fast_path_chains_at_ccds() {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::wr_inp(1, 1, 0));
        s.push(PimCommand::wr_inp(2, 2, 0));
        // M3 opens the row; M4 and M5 then chain on the open row.
        s.push(PimCommand::mac(3, 0, 0, 0, 0));
        s.push(PimCommand::mac(4, 1, 0, 1, 0));
        s.push(PimCommand::mac(5, 2, 0, 2, 0));
        let r = dcs().run(&s);
        let t = Timing::aimx_no_refresh();
        let m4 = r.timings[4];
        let m5 = r.timings[5];
        assert_eq!(m5.issue - m4.issue, t.t_ccds);
    }

    #[test]
    fn dcs_beats_static_on_fig7_style_stream() {
        // Fig. 7(a): 3 inputs, two output groups of 3 MACs each, 2 drains.
        let mut s = CommandStream::new();
        let mut id = 0;
        for e in 0..3u16 {
            s.push(PimCommand::wr_inp(id, e, 0));
            id += 1;
        }
        for col in 0..3u16 {
            s.push(PimCommand::mac(id, col, 0, col, 0));
            id += 1;
        }
        s.push(PimCommand::rd_out(id, 0, 0));
        id += 1;
        for col in 0..3u16 {
            s.push(PimCommand::mac(id, col, 0, 3 + col, 1));
            id += 1;
        }
        s.push(PimCommand::rd_out(id, 1, 0));

        // The paper's Fig. 7 diagram isolates scheduling from activation:
        // the row is treated as already open.
        let t = Timing {
            t_act: 0,
            t_pre: 0,
            ..Timing::aimx_no_refresh()
        };
        let g = Geometry::pimphony();
        let stat = crate::sched::StaticScheduler::new(t, g).run(&s);
        let dyn_ = DynamicScheduler::new(t, g, Tracking::PerEntry).run(&s);
        assert!(
            dyn_.cycles < stat.cycles,
            "DCS {} should beat static {}",
            dyn_.cycles,
            stat.cycles
        );
        // Paper's example reduces 34 -> 22 cycles (~35%); require >= 25%.
        assert!((dyn_.cycles as f64) <= 0.75 * stat.cycles as f64);
    }

    #[test]
    fn ping_pong_between_static_and_dcs() {
        // Alternating refill/consume pattern over many entries.
        let g = Geometry::pimphony();
        let t = Timing::aimx_no_refresh();
        let mut s = CommandStream::new();
        let mut id = 0;
        // Four passes over the full GBuf so refills conflict with reads.
        for pass in 0..4u32 {
            for e in 0..g.gbuf_entries as u16 {
                s.push(PimCommand::wr_inp(id, e, 0));
                id += 1;
            }
            for e in 0..g.gbuf_entries as u16 {
                s.push(PimCommand::mac(id, e, pass, e % 32, e % 16));
                id += 1;
            }
        }
        let stat = crate::sched::StaticScheduler::new(t, g).run(&s);
        let pp = DynamicScheduler::new(t, g, Tracking::PerHalf).run(&s);
        let dcs = DynamicScheduler::new(t, g, Tracking::PerEntry).run(&s);
        assert!(
            dcs.cycles <= pp.cycles,
            "dcs {} vs pp {}",
            dcs.cycles,
            pp.cycles
        );
        assert!(
            pp.cycles <= stat.cycles,
            "pp {} vs static {}",
            pp.cycles,
            stat.cycles
        );
    }

    #[test]
    fn war_on_gbuf_entry_blocks_overwrite() {
        // M reads gbuf0; a later W to gbuf0 must wait for the MAC.
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::wr_inp(2, 0, 32));
        let r = dcs().run(&s);
        assert!(r.timings[2].issue >= r.timings[1].complete);
    }

    #[test]
    fn drain_then_reaccumulate_waits_for_drain() {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        s.push(PimCommand::mac(3, 0, 0, 1, 0));
        let r = dcs().run(&s);
        assert!(r.timings[3].issue >= r.timings[2].complete);
    }

    #[test]
    fn timings_in_program_order_by_id() {
        let r = dcs().run(&stream_wmr());
        for w in r.timings.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn bus_never_double_booked() {
        let g = Geometry::pimphony();
        let t = Timing::aimx_no_refresh();
        let mut s = CommandStream::new();
        let mut id = 0;
        for e in 0..8u16 {
            s.push(PimCommand::wr_inp(id, e, 0));
            id += 1;
        }
        for e in 0..8u16 {
            s.push(PimCommand::mac(id, e, 0, e, e % 4));
            id += 1;
        }
        let r = DynamicScheduler::new(t, g, Tracking::PerEntry).run(&s);
        let mut issues: Vec<u64> = r.timings.iter().map(|x| x.issue).collect();
        issues.sort_unstable();
        for w in issues.windows(2) {
            assert!(w[1] - w[0] >= t.t_ccds, "bus spacing violated: {:?}", w);
        }
    }
}
