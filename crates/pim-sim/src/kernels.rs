//! Command-stream builders for the kernels PIM executes.
//!
//! * [`GemvKernel`] — a dense `out = W·x` GEMV (FC layers, and the Fig. 8
//!   dimension sweep).
//! * [`QktKernel`] — the Attention score kernel `QKᵀ` for the tokens
//!   assigned to one channel (din = d_h is small ⇒ poor output reuse,
//!   frequent `RD-OUT`).
//! * [`SvKernel`] — the Attention value kernel `SV` (din = tokens is large
//!   ⇒ GBuf swapping, frequent `WR-INP`).
//!
//! The GQA *row-reuse mapping* (paper §V-C) is supported by both attention
//! kernels: all inputs (queries/scores) that share row-resident KV data are
//! processed before switching DRAM rows, trading extra `WR-INP` traffic for
//! ACT/PRE savings — the exact trade-off DCS unlocks (Fig. 9).

use crate::functional::FunctionalChannel;
use crate::geometry::Geometry;
use pim_isa::command::{CommandKind, CommandStream};

fn div_ceil_u32(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

/// Shape of a dense GEMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemvSpec {
    /// Output length (rows of `W`).
    pub dout: u32,
    /// Input length (columns of `W`).
    pub din: u32,
}

/// Builder for a GEMV command stream plus its functional data layout.
#[derive(Debug, Clone)]
pub struct GemvKernel {
    spec: GemvSpec,
    geometry: Geometry,
}

impl GemvKernel {
    /// Creates a GEMV kernel.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(spec: GemvSpec, geometry: Geometry) -> Self {
        assert!(
            spec.dout > 0 && spec.din > 0,
            "GEMV dimensions must be nonzero"
        );
        GemvKernel { spec, geometry }
    }

    /// The kernel shape.
    pub fn spec(&self) -> GemvSpec {
        self.spec
    }

    /// Input tiles (`ceil(din / lanes)`).
    pub fn in_tiles(&self) -> u32 {
        div_ceil_u32(self.spec.din, self.geometry.elems_per_tile)
    }

    /// Output groups (`ceil(dout / banks)`), 16 outputs each.
    pub fn n_groups(&self) -> u32 {
        div_ceil_u32(self.spec.dout, self.geometry.banks)
    }

    /// Whether the whole input vector fits in the Global Buffer.
    pub fn input_fits(&self) -> bool {
        self.in_tiles() <= self.geometry.gbuf_entries
    }

    /// Per-bank linear tile index of weight tile `(grp, t)`.
    ///
    /// The compiler co-designs the weight layout with the mapping: when
    /// the input fits, groups are laid out contiguously (group-outer
    /// iteration); otherwise tiles are blocked per input chunk so the
    /// chunk-outer sweep touches consecutive rows.
    fn tile_index(&self, grp: u32, t: u32) -> u64 {
        let in_tiles = self.in_tiles();
        let n_groups = self.n_groups();
        if self.input_fits() {
            u64::from(grp) * u64::from(in_tiles) + u64::from(t)
        } else {
            let cap = self.geometry.gbuf_entries;
            let cs = (t / cap) * cap;
            let ce = (cs + cap).min(in_tiles);
            u64::from(cs) * u64::from(n_groups)
                + u64::from(grp) * u64::from(ce - cs)
                + u64::from(t - cs)
        }
    }

    /// Builds the command stream.
    ///
    /// When the input fits in the Global Buffer it is written once and
    /// output groups proceed in blocks of `out_entries` accumulators.
    /// Otherwise the input streams through in GBuf-sized chunks exactly
    /// once; every group produces a *partial* sum per chunk that is
    /// drained to the GPR and accumulated by the EPU — trading extra
    /// `RD-OUT`s for input reuse.
    pub fn stream(&self) -> CommandStream {
        let g = &self.geometry;
        let in_tiles = self.in_tiles();
        let n_groups = self.n_groups();
        let mut s = CommandStream::new();

        if self.input_fits() {
            let block = g.out_entries.min(n_groups).max(1);
            for t in 0..in_tiles {
                s.push_next(CommandKind::WrInp {
                    gbuf_idx: t as u16,
                    gpr_addr: t * 32,
                });
            }
            let mut gb_start = 0;
            while gb_start < n_groups {
                let gb_end = (gb_start + block).min(n_groups);
                for grp in gb_start..gb_end {
                    for t in 0..in_tiles {
                        let (row, col) = g.tile_to_row_col(self.tile_index(grp, t));
                        s.push_next(CommandKind::Mac {
                            gbuf_idx: t as u16,
                            row,
                            col,
                            out_idx: (grp - gb_start) as u16,
                        });
                    }
                }
                for grp in gb_start..gb_end {
                    s.push_next(CommandKind::RdOut {
                        out_idx: (grp - gb_start) as u16,
                        gpr_addr: grp * 32,
                    });
                }
                gb_start = gb_end;
            }
        } else {
            let chunk_cap = g.gbuf_entries;
            let out_slots = g.out_entries.max(1) as u16;
            let mut slot: u16 = 0;
            let mut chunk_start = 0;
            while chunk_start < in_tiles {
                let chunk_end = (chunk_start + chunk_cap).min(in_tiles);
                for t in chunk_start..chunk_end {
                    s.push_next(CommandKind::WrInp {
                        gbuf_idx: (t - chunk_start) as u16,
                        gpr_addr: t * 32,
                    });
                }
                for grp in 0..n_groups {
                    for t in chunk_start..chunk_end {
                        let (row, col) = g.tile_to_row_col(self.tile_index(grp, t));
                        s.push_next(CommandKind::Mac {
                            gbuf_idx: (t - chunk_start) as u16,
                            row,
                            col,
                            out_idx: slot,
                        });
                    }
                    s.push_next(CommandKind::RdOut {
                        out_idx: slot,
                        gpr_addr: grp * 32,
                    });
                    slot = (slot + 1) % out_slots;
                }
                chunk_start = chunk_end;
            }
        }
        s
    }

    /// Loads weights into a functional channel: `w(o, i)` is `W[o][i]`.
    pub fn load_weights<F: Fn(usize, usize) -> f32>(&self, ch: &mut FunctionalChannel, w: F) {
        let g = &self.geometry;
        let lanes = g.elems_per_tile as usize;
        let in_tiles = self.in_tiles();
        for grp in 0..self.n_groups() {
            for t in 0..in_tiles {
                let (row, col) = g.tile_to_row_col(self.tile_index(grp, t));
                for bank in 0..g.banks {
                    let o = (grp * g.banks + bank) as usize;
                    let mut tile = vec![0.0f32; lanes];
                    if o < self.spec.dout as usize {
                        for (e, v) in tile.iter_mut().enumerate() {
                            let i = t as usize * lanes + e;
                            if i < self.spec.din as usize {
                                *v = w(o, i);
                            }
                        }
                    }
                    ch.store_tile(bank, row, col, tile);
                }
            }
        }
    }

    /// Input tiles for every `WR-INP` of [`GemvKernel::stream`], in order.
    /// The input streams through exactly once in both mappings.
    pub fn input_tiles(&self, x: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(x.len(), self.spec.din as usize, "input length mismatch");
        let lanes = self.geometry.elems_per_tile as usize;
        let in_tiles = self.in_tiles();
        let mut tiles = Vec::with_capacity(in_tiles as usize);
        for t in 0..in_tiles {
            let mut tile = vec![0.0f32; lanes];
            for (e, v) in tile.iter_mut().enumerate() {
                let i = t as usize * lanes + e;
                if i < x.len() {
                    *v = x[i];
                }
            }
            tiles.push(tile);
        }
        tiles
    }

    /// Reassembles the output vector from a functional channel's drain
    /// log, summing per-chunk partial drains (the EPU-side accumulation).
    pub fn output_from(&self, ch: &FunctionalChannel) -> Vec<f32> {
        self.accumulate_drains(ch.drained().iter().map(|(_, v)| v.as_slice()))
    }

    /// Accumulates an ordered drain sequence into the output vector.
    /// Drains are emitted group-ascending (and chunk-outer when the input
    /// does not fit).
    pub fn accumulate_drains<'a>(&self, drains: impl Iterator<Item = &'a [f32]>) -> Vec<f32> {
        let banks = self.geometry.banks as usize;
        let n_groups = self.n_groups() as usize;
        let mut out = vec![0.0f32; self.spec.dout as usize];
        for (j, vals) in drains.enumerate() {
            let grp = j % n_groups;
            for (bank, &v) in vals.iter().enumerate() {
                let o = grp * banks + bank;
                if o < out.len() {
                    out[o] += v;
                }
            }
        }
        out
    }
}

/// Shape of a per-channel attention kernel under token-centric partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionSpec {
    /// Tokens assigned to this channel (the TCP token slice).
    pub tokens: u32,
    /// Per-head feature dimension `d_h`.
    pub head_dim: u32,
    /// GQA group size `g` (query heads sharing this KV); 1 for MHA.
    pub group_size: u32,
    /// Use the row-reuse mapping (process all `g` inputs sharing the open
    /// DRAM row before switching rows).
    pub row_reuse: bool,
}

impl AttentionSpec {
    /// MHA spec without row reuse.
    pub fn mha(tokens: u32, head_dim: u32) -> Self {
        AttentionSpec {
            tokens,
            head_dim,
            group_size: 1,
            row_reuse: false,
        }
    }

    /// GQA spec with the row-reuse mapping.
    pub fn gqa(tokens: u32, head_dim: u32, group_size: u32) -> Self {
        AttentionSpec {
            tokens,
            head_dim,
            group_size,
            row_reuse: true,
        }
    }
}

/// `QKᵀ` score kernel for one channel's token slice.
#[derive(Debug, Clone)]
pub struct QktKernel {
    spec: AttentionSpec,
    geometry: Geometry,
}

impl QktKernel {
    /// Creates a QKᵀ kernel.
    ///
    /// # Panics
    /// Panics if any dimension is zero or the query does not fit in GBuf.
    pub fn new(spec: AttentionSpec, geometry: Geometry) -> Self {
        assert!(spec.tokens > 0 && spec.head_dim > 0 && spec.group_size > 0);
        let in_tiles = div_ceil_u32(spec.head_dim, geometry.elems_per_tile);
        assert!(
            in_tiles <= geometry.gbuf_entries,
            "query vector must fit in the Global Buffer"
        );
        QktKernel { spec, geometry }
    }

    /// The kernel shape.
    pub fn spec(&self) -> AttentionSpec {
        self.spec
    }

    fn in_tiles(&self) -> u32 {
        div_ceil_u32(self.spec.head_dim, self.geometry.elems_per_tile)
    }

    /// Token groups (16 scores per group, one per bank).
    pub fn n_groups(&self) -> u32 {
        div_ceil_u32(self.spec.tokens, self.geometry.banks)
    }

    /// Builds the command stream.
    pub fn stream(&self) -> CommandStream {
        let g = &self.geometry;
        let in_tiles = self.in_tiles();
        let n_groups = self.n_groups();
        let queries = self.spec.group_size;
        let mut s = CommandStream::new();
        let mut out_slot: u16 = 0;
        let mut bump = |s: &mut CommandStream, grp: u32, q: u32| {
            for t in 0..in_tiles {
                let tile_idx = u64::from(grp) * u64::from(in_tiles) + u64::from(t);
                let (row, col) = g.tile_to_row_col(tile_idx);
                s.push_next(CommandKind::Mac {
                    gbuf_idx: t as u16,
                    row,
                    col,
                    out_idx: out_slot,
                });
            }
            s.push_next(CommandKind::RdOut {
                out_idx: out_slot,
                gpr_addr: (q * n_groups + grp) * 32,
            });
            out_slot = (out_slot + 1) % g.out_entries.max(1) as u16;
        };
        let write_query = |s: &mut CommandStream, q: u32| {
            for t in 0..in_tiles {
                s.push_next(CommandKind::WrInp {
                    gbuf_idx: t as u16,
                    gpr_addr: (q * in_tiles + t) * 32,
                });
            }
        };

        if self.spec.row_reuse && queries > 1 {
            // Row-reuse mapping: for each DRAM row, swap each query in and
            // finish every group resident in that row before moving on.
            let mut grp = 0;
            while grp < n_groups {
                // Groups whose first tile shares this row.
                let (row0, _) = g.tile_to_row_col(u64::from(grp) * u64::from(in_tiles));
                let mut grp_end = grp;
                while grp_end < n_groups {
                    let (r, _) = g.tile_to_row_col(u64::from(grp_end) * u64::from(in_tiles));
                    if r != row0 {
                        break;
                    }
                    grp_end += 1;
                }
                for q in 0..queries {
                    write_query(&mut s, q);
                    for gg in grp..grp_end {
                        bump(&mut s, gg, q);
                    }
                }
                grp = grp_end;
            }
        } else {
            // Head-sequential mapping: write each query once, then sweep
            // the whole KV (rows re-opened per query when g > 1).
            for q in 0..queries {
                write_query(&mut s, q);
                for grp in 0..n_groups {
                    bump(&mut s, grp, q);
                }
            }
        }
        s
    }

    /// Loads the key cache: `k(token, d)` is `K[token][d]`.
    pub fn load_keys<F: Fn(usize, usize) -> f32>(&self, ch: &mut FunctionalChannel, k: F) {
        let gemv = GemvKernel::new(
            GemvSpec {
                dout: self.spec.tokens,
                din: self.spec.head_dim,
            },
            self.geometry,
        );
        gemv.load_weights(ch, k);
    }

    /// Input tiles for every `WR-INP`, in stream order. `queries[q]` is the
    /// `q`-th query vector of length `head_dim`.
    pub fn input_tiles(&self, queries: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(queries.len(), self.spec.group_size as usize, "query count");
        let lanes = self.geometry.elems_per_tile as usize;
        let in_tiles = self.in_tiles();
        let tile_of = |q: usize, t: u32| -> Vec<f32> {
            let mut tile = vec![0.0f32; lanes];
            for (e, v) in tile.iter_mut().enumerate() {
                let i = t as usize * lanes + e;
                if i < queries[q].len() {
                    *v = queries[q][i];
                }
            }
            tile
        };
        let mut tiles = Vec::new();
        // Mirror the stream's WR-INP order.
        for cmd in self.stream().iter() {
            if let CommandKind::WrInp { gpr_addr, .. } = cmd.kind {
                let flat = gpr_addr / 32;
                let q = (flat / in_tiles) as usize;
                let t = flat % in_tiles;
                tiles.push(tile_of(q, t));
            }
        }
        tiles
    }

    /// Reassembles per-query score vectors from the drain log.
    pub fn scores_from(&self, ch: &FunctionalChannel) -> Vec<Vec<f32>> {
        let banks = self.geometry.banks as usize;
        let n_groups = self.n_groups();
        let mut out = vec![vec![0.0f32; self.spec.tokens as usize]; self.spec.group_size as usize];
        // Drain gpr_addr encodes (q * n_groups + grp) * 32.
        let stream = self.stream();
        let drains: Vec<u32> = stream
            .iter()
            .filter_map(|c| match c.kind {
                CommandKind::RdOut { gpr_addr, .. } => Some(gpr_addr / 32),
                _ => None,
            })
            .collect();
        for ((_, vals), flat) in ch.drained().iter().zip(drains) {
            let q = (flat / n_groups) as usize;
            let grp = (flat % n_groups) as usize;
            for (bank, &v) in vals.iter().enumerate() {
                let tok = grp * banks + bank;
                if tok < out[q].len() {
                    out[q][tok] = v;
                }
            }
        }
        out
    }
}

/// `SV` value kernel for one channel's token slice.
///
/// Each channel reduces over its assigned tokens; the per-channel partial
/// outputs are then reduced across channels via the PIM HUB (modeled at the
/// module level, paper §IV-C).
#[derive(Debug, Clone)]
pub struct SvKernel {
    spec: AttentionSpec,
    geometry: Geometry,
}

impl SvKernel {
    /// Creates an SV kernel.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(spec: AttentionSpec, geometry: Geometry) -> Self {
        assert!(spec.tokens > 0 && spec.head_dim > 0 && spec.group_size > 0);
        SvKernel { spec, geometry }
    }

    /// The kernel shape.
    pub fn spec(&self) -> AttentionSpec {
        self.spec
    }

    fn in_tiles(&self) -> u32 {
        div_ceil_u32(self.spec.tokens, self.geometry.elems_per_tile)
    }

    /// Output feature groups (`ceil(d_h / banks)`).
    pub fn n_groups(&self) -> u32 {
        div_ceil_u32(self.spec.head_dim, self.geometry.banks)
    }

    /// Builds the command stream.
    ///
    /// For `g == 1` this is a plain chunked GEMV. For GQA with row reuse,
    /// the Global Buffer is split among the `g` queries so that every DRAM
    /// row of the value cache is visited once while all queries' score
    /// chunks are multiplied against it.
    pub fn stream(&self) -> CommandStream {
        let g = &self.geometry;
        let queries = self.spec.group_size;
        if queries == 1 || !self.spec.row_reuse {
            // Query-sequential: one chunked GEMV per query.
            let gemv = GemvKernel::new(
                GemvSpec {
                    dout: self.spec.head_dim,
                    din: self.spec.tokens,
                },
                self.geometry,
            );
            let mut s = CommandStream::new();
            for _ in 0..queries {
                for cmd in gemv.stream().iter() {
                    s.push_next(cmd.kind);
                }
            }
            return s;
        }

        // Row-reuse mapping with GBuf partitioned among queries.
        let in_tiles = self.in_tiles();
        let n_groups = self.n_groups();
        let slots_per_q = (g.gbuf_entries / queries).max(1);
        // Accumulators: one per (query, group) pair, blocked by OBuf size.
        let pairs: Vec<(u32, u32)> = (0..n_groups)
            .flat_map(|grp| (0..queries).map(move |q| (grp, q)))
            .collect();
        let block = g.out_entries.max(1) as usize;
        let mut s = CommandStream::new();
        for pair_block in pairs.chunks(block) {
            let qs: Vec<u32> = {
                let mut v: Vec<u32> = pair_block.iter().map(|&(_, q)| q).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let mut chunk_start = 0;
            while chunk_start < in_tiles {
                let chunk_end = (chunk_start + slots_per_q).min(in_tiles);
                for (qi, &q) in qs.iter().enumerate() {
                    for t in chunk_start..chunk_end {
                        s.push_next(CommandKind::WrInp {
                            gbuf_idx: (qi as u32 * slots_per_q + (t - chunk_start)) as u16,
                            gpr_addr: (q * in_tiles + t) * 32,
                        });
                    }
                }
                // Group-outer, tile, then queries: every weight tile is
                // read once per chunk for all queries sharing it, and rows
                // advance monotonically (the row-reuse mapping).
                let grps: Vec<u32> = {
                    let mut v: Vec<u32> = pair_block.iter().map(|&(grp, _)| grp).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                for &grp in &grps {
                    for t in chunk_start..chunk_end {
                        let tile_idx = u64::from(grp) * u64::from(in_tiles) + u64::from(t);
                        let (row, col) = g.tile_to_row_col(tile_idx);
                        for (slot, &(bg, q)) in pair_block.iter().enumerate() {
                            if bg != grp {
                                continue;
                            }
                            let qi = qs.iter().position(|&x| x == q).expect("query present") as u32;
                            s.push_next(CommandKind::Mac {
                                gbuf_idx: (qi * slots_per_q + (t - chunk_start)) as u16,
                                row,
                                col,
                                out_idx: slot as u16,
                            });
                        }
                    }
                }
                chunk_start = chunk_end;
            }
            for (slot, &(grp, q)) in pair_block.iter().enumerate() {
                s.push_next(CommandKind::RdOut {
                    out_idx: slot as u16,
                    gpr_addr: (q * n_groups + grp) * 32,
                });
            }
        }
        s
    }

    /// Loads the value cache: `v(token, d)` is `V[token][d]`.
    pub fn load_values<F: Fn(usize, usize) -> f32>(&self, ch: &mut FunctionalChannel, v: F) {
        // As a GEMV, W[o][i] = V[i][o].
        let gemv = GemvKernel::new(
            GemvSpec {
                dout: self.spec.head_dim,
                din: self.spec.tokens,
            },
            self.geometry,
        );
        gemv.load_weights(ch, |o, i| v(i, o));
    }

    /// Input tiles for every `WR-INP`, in stream order. `scores[q]` is the
    /// `q`-th score vector over this channel's tokens.
    pub fn input_tiles(&self, scores: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(
            scores.len(),
            self.spec.group_size as usize,
            "score-vector count"
        );
        let lanes = self.geometry.elems_per_tile as usize;
        let in_tiles = self.in_tiles();
        let tile_of = |q: usize, t: u32| -> Vec<f32> {
            let mut tile = vec![0.0f32; lanes];
            for (e, v) in tile.iter_mut().enumerate() {
                let i = t as usize * lanes + e;
                if i < scores[q].len() {
                    *v = scores[q][i];
                }
            }
            tile
        };
        let queries = self.spec.group_size;
        if queries == 1 || !self.spec.row_reuse {
            let gemv = GemvKernel::new(
                GemvSpec {
                    dout: self.spec.head_dim,
                    din: self.spec.tokens,
                },
                self.geometry,
            );
            let mut tiles = Vec::new();
            for (q, s) in scores.iter().enumerate() {
                let _ = s;
                let per_query = gemv.input_tiles(&scores[q]);
                tiles.extend(per_query);
            }
            return tiles;
        }
        let mut tiles = Vec::new();
        for cmd in self.stream().iter() {
            if let CommandKind::WrInp { gpr_addr, .. } = cmd.kind {
                let flat = gpr_addr / 32;
                let q = (flat / in_tiles) as usize;
                let t = flat % in_tiles;
                tiles.push(tile_of(q, t));
            }
        }
        tiles
    }

    /// Reassembles per-query output features from the drain log.
    pub fn outputs_from(&self, ch: &FunctionalChannel) -> Vec<Vec<f32>> {
        let banks = self.geometry.banks as usize;
        let n_groups = self.n_groups();
        let queries = self.spec.group_size as usize;
        let mut out = vec![vec![0.0f32; self.spec.head_dim as usize]; queries];
        if queries == 1 || !self.spec.row_reuse {
            // Drains appear query-major; within a query they follow the
            // GEMV drain order (with per-chunk partials when the scores do
            // not fit in GBuf).
            let gemv = GemvKernel::new(
                GemvSpec {
                    dout: self.spec.head_dim,
                    din: self.spec.tokens,
                },
                self.geometry,
            );
            let per_q = ch.drained().len() / queries;
            for (q, out_q) in out.iter_mut().enumerate() {
                let seg = &ch.drained()[q * per_q..(q + 1) * per_q];
                *out_q = gemv.accumulate_drains(seg.iter().map(|(_, v)| v.as_slice()));
            }
            return out;
        }
        let stream = self.stream();
        let drains: Vec<u32> = stream
            .iter()
            .filter_map(|c| match c.kind {
                CommandKind::RdOut { gpr_addr, .. } => Some(gpr_addr / 32),
                _ => None,
            })
            .collect();
        for ((_, vals), flat) in ch.drained().iter().zip(drains) {
            let q = (flat / n_groups) as usize;
            let grp = (flat % n_groups) as usize;
            for (bank, &v) in vals.iter().enumerate() {
                let o = grp * banks + bank;
                if o < out[q].len() {
                    out[q][o] = v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the reference math
mod tests {
    use super::*;
    use crate::functional::FunctionalChannel;

    fn small_geom() -> Geometry {
        Geometry {
            banks: 4,
            gbuf_entries: 8,
            out_entries: 2,
            row_tiles: 8,
            elems_per_tile: 4,
        }
    }

    fn reference_gemv(
        dout: usize,
        din: usize,
        w: impl Fn(usize, usize) -> f32,
        x: &[f32],
    ) -> Vec<f32> {
        (0..dout)
            .map(|o| (0..din).map(|i| w(o, i) * x[i]).sum())
            .collect()
    }

    #[test]
    fn gemv_matches_reference_small() {
        let geom = small_geom();
        let spec = GemvSpec { dout: 12, din: 20 };
        let k = GemvKernel::new(spec, geom);
        let w = |o: usize, i: usize| (o as f32 + 1.0) * 0.5 + i as f32 * 0.25;
        let x: Vec<f32> = (0..20).map(|i| (i as f32) * 0.1 - 1.0).collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_weights(&mut ch, w);
        let stream = k.stream();
        ch.execute(&stream, &k.input_tiles(&x));
        let got = k.output_from(&ch);
        let want = reference_gemv(12, 20, w, &x);
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn gemv_large_input_needs_swapping() {
        let geom = small_geom(); // 8-entry GBuf, 4-elem tiles => fits 32 elems
        let k = GemvKernel::new(GemvSpec { dout: 16, din: 64 }, geom);
        assert!(!k.input_fits());
        let (w, m, r) = k.stream().kind_counts();
        // Input streams once (16 tiles over 2 chunks); 4 output groups
        // drain a partial sum per chunk.
        assert_eq!(w, 16);
        assert_eq!(m, 4 * 16);
        assert_eq!(r, 4 * 2);
    }

    #[test]
    fn gemv_large_input_still_correct() {
        let geom = small_geom();
        let spec = GemvSpec { dout: 16, din: 64 };
        let k = GemvKernel::new(spec, geom);
        let w = |o: usize, i: usize| ((o * 31 + i * 7) % 11) as f32 - 5.0;
        let x: Vec<f32> = (0..64).map(|i| ((i * 13) % 7) as f32 * 0.5).collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_weights(&mut ch, w);
        ch.execute(&k.stream(), &k.input_tiles(&x));
        let got = k.output_from(&ch);
        let want = reference_gemv(16, 64, w, &x);
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn qkt_scores_match_reference_mha() {
        let geom = small_geom();
        let spec = AttentionSpec::mha(24, 8);
        let k = QktKernel::new(spec, geom);
        let key = |tok: usize, d: usize| ((tok * 3 + d) % 5) as f32 - 2.0;
        let q: Vec<f32> = (0..8).map(|d| d as f32 * 0.5).collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_keys(&mut ch, key);
        ch.execute(&k.stream(), &k.input_tiles(std::slice::from_ref(&q)));
        let scores = k.scores_from(&ch);
        for tok in 0..24 {
            let want: f32 = (0..8).map(|d| key(tok, d) * q[d]).sum();
            assert!((scores[0][tok] - want).abs() < 1e-3);
        }
    }

    #[test]
    fn qkt_gqa_row_reuse_matches_reference() {
        let geom = small_geom();
        let spec = AttentionSpec::gqa(32, 8, 3);
        let k = QktKernel::new(spec, geom);
        let key = |tok: usize, d: usize| ((tok + d * 2) % 7) as f32 * 0.25;
        let queries: Vec<Vec<f32>> = (0..3)
            .map(|q| (0..8).map(|d| (q + d) as f32 * 0.1).collect())
            .collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_keys(&mut ch, key);
        ch.execute(&k.stream(), &k.input_tiles(&queries));
        let scores = k.scores_from(&ch);
        for (q, qv) in queries.iter().enumerate() {
            for tok in 0..32 {
                let want: f32 = (0..8).map(|d| key(tok, d) * qv[d]).sum();
                assert!((scores[q][tok] - want).abs() < 1e-3, "q={q} tok={tok}");
            }
        }
    }

    #[test]
    fn qkt_row_reuse_reduces_row_switches() {
        let geom = Geometry::baseline();
        let base = AttentionSpec {
            tokens: 2048,
            head_dim: 128,
            group_size: 4,
            row_reuse: false,
        };
        let reuse = AttentionSpec {
            row_reuse: true,
            ..base
        };
        let s_base = QktKernel::new(base, geom).stream();
        let s_reuse = QktKernel::new(reuse, geom).stream();
        let switches = |s: &CommandStream| {
            let mut open = None;
            let mut n = 0u32;
            for c in s.iter() {
                if let CommandKind::Mac { row, .. } = c.kind {
                    if open != Some(row) {
                        open = Some(row);
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(switches(&s_reuse) < switches(&s_base));
        // ... at the cost of more input traffic.
        assert!(s_reuse.kind_counts().0 > s_base.kind_counts().0);
    }

    #[test]
    fn sv_matches_reference_mha() {
        let geom = small_geom();
        let spec = AttentionSpec::mha(40, 8);
        let k = SvKernel::new(spec, geom);
        let val = |tok: usize, d: usize| ((tok * 5 + d * 3) % 9) as f32 * 0.125 - 0.5;
        let s: Vec<f32> = (0..40).map(|t| ((t * 11) % 13) as f32 * 0.1).collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_values(&mut ch, val);
        ch.execute(&k.stream(), &k.input_tiles(std::slice::from_ref(&s)));
        let out = k.outputs_from(&ch);
        for d in 0..8 {
            let want: f32 = (0..40).map(|t| s[t] * val(t, d)).sum();
            assert!(
                (out[0][d] - want).abs() < 1e-2,
                "d={d}: {} vs {want}",
                out[0][d]
            );
        }
    }

    #[test]
    fn sv_gqa_row_reuse_matches_reference() {
        let geom = small_geom();
        let spec = AttentionSpec::gqa(32, 8, 2);
        let k = SvKernel::new(spec, geom);
        let val = |tok: usize, d: usize| ((tok + d) % 4) as f32 * 0.5;
        let scores: Vec<Vec<f32>> = (0..2)
            .map(|q| (0..32).map(|t| ((q * 17 + t) % 5) as f32 * 0.2).collect())
            .collect();
        let mut ch = FunctionalChannel::new(geom);
        k.load_values(&mut ch, val);
        ch.execute(&k.stream(), &k.input_tiles(&scores));
        let out = k.outputs_from(&ch);
        for q in 0..2 {
            for d in 0..8 {
                let want: f32 = (0..32).map(|t| scores[q][t] * val(t, d)).sum();
                assert!((out[q][d] - want).abs() < 1e-2, "q={q} d={d}");
            }
        }
    }

    #[test]
    fn qkt_is_rd_out_heavy_sv_is_wr_inp_heavy() {
        let geom = Geometry::baseline();
        let qkt = QktKernel::new(AttentionSpec::mha(4096, 128), geom).stream();
        let sv = SvKernel::new(AttentionSpec::mha(4096, 128), geom).stream();
        let (qw, _, qr) = qkt.kind_counts();
        let (sw, _, sr) = sv.kind_counts();
        assert!(qr > qw, "QKT drains more than it writes: {qr} vs {qw}");
        assert!(sw > sr, "SV writes more than it drains: {sw} vs {sr}");
    }
}
