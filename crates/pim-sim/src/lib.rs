//! Cycle-level DRAM-PIM channel simulator for the PIMphony reproduction.
//!
//! This crate models one AiM-style PIM channel at command granularity:
//!
//! * [`Timing`] / [`Geometry`] — DRAM-PIM timing constants and channel
//!   shape (banks, Global Buffer, Output Registers/Buffers, row size).
//! * [`sched`] — the three controller policies the paper compares:
//!   conventional *static* in-order scheduling, *ping-pong* double
//!   buffering, and PIMphony's *Dynamic Command Scheduling* (DCS).
//! * [`kernels`] — command-stream builders for GEMV, `QKᵀ` and `SV`,
//!   including the GQA row-reuse mapping.
//! * [`functional`] — value-level execution proving kernels compute
//!   correct results independent of the scheduler.
//! * [`checker`] — a hazard replay checker proving schedules are safe.
//!
//! # Example: DCS vs static on a small GEMV
//!
//! ```
//! use pim_sim::kernels::{GemvKernel, GemvSpec};
//! use pim_sim::{schedule, Geometry, SchedulerKind, Timing};
//!
//! let geom = Geometry::pimphony();
//! let stream = GemvKernel::new(GemvSpec { dout: 256, din: 128 }, geom).stream();
//! let timing = Timing::aimx_no_refresh();
//! let s = schedule(&stream, SchedulerKind::Static, &timing, &geom);
//! let d = schedule(&stream, SchedulerKind::Dcs, &timing, &geom);
//! assert!(d.cycles <= s.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod epu;
pub mod functional;
pub mod geometry;
pub mod kernels;
pub mod module;
pub mod report;
pub mod sched;
pub mod timing;

pub use geometry::Geometry;
pub use report::{Breakdown, CommandTiming, ExecutionReport};
pub use sched::{schedule, SchedulerKind};
pub use timing::Timing;
