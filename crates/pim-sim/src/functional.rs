//! Functional (value-level) execution of PIM command streams.
//!
//! Schedulers only reorder *timing*; semantics are defined by program
//! order. This module executes a command stream's arithmetic so tests can
//! assert that kernels compute the right values (e.g. a GEMV stream equals
//! a reference matrix-vector product) regardless of scheduler.
//!
//! Values are `f32`. Real AiM hardware accumulates fp16 inputs into wider
//! accumulators; using `f32` end-to-end preserves the dataflow while
//! keeping tests exact.

use crate::geometry::Geometry;
use pim_isa::command::{CommandKind, CommandStream};
use pim_isa::CommandId;
use std::collections::BTreeMap;

/// Functional state of one PIM channel.
#[derive(Debug, Clone)]
pub struct FunctionalChannel {
    geometry: Geometry,
    /// Per-bank DRAM tiles: `(row, col) -> tile`.
    banks: Vec<BTreeMap<(u32, u16), Vec<f32>>>,
    /// Global Buffer tiles.
    gbuf: Vec<Vec<f32>>,
    /// Output accumulators: `[out_entry][bank]`.
    obuf: Vec<Vec<f32>>,
    /// Drained outputs in drain order: one scalar per bank per `RD-OUT`.
    drained: Vec<(CommandId, Vec<f32>)>,
}

impl FunctionalChannel {
    /// Creates a zeroed channel.
    pub fn new(geometry: Geometry) -> Self {
        let lanes = geometry.elems_per_tile as usize;
        FunctionalChannel {
            geometry,
            banks: vec![BTreeMap::new(); geometry.banks as usize],
            gbuf: vec![vec![0.0; lanes]; geometry.gbuf_entries as usize],
            obuf: vec![vec![0.0; geometry.banks as usize]; geometry.out_entries as usize],
            drained: Vec::new(),
        }
    }

    /// The channel geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Stores a weight tile into `bank` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if `bank` is out of range or the tile length mismatches.
    pub fn store_tile(&mut self, bank: u32, row: u32, col: u16, tile: Vec<f32>) {
        assert_eq!(
            tile.len(),
            self.geometry.elems_per_tile as usize,
            "tile length"
        );
        self.banks[bank as usize].insert((row, col), tile);
    }

    /// Reads back a stored tile (zeros if never written).
    pub fn tile(&self, bank: u32, row: u32, col: u16) -> Vec<f32> {
        self.banks[bank as usize]
            .get(&(row, col))
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.geometry.elems_per_tile as usize])
    }

    /// Executes `stream` in program order, pulling `WR-INP` payloads from
    /// `inputs` (one tile per `WR-INP`, in stream order).
    ///
    /// `RD-OUT` drains the accumulator (read-and-clear), appending one
    /// scalar per bank to the drain log.
    ///
    /// # Panics
    /// Panics if `inputs` runs out of tiles, or an index exceeds the
    /// channel geometry.
    pub fn execute(&mut self, stream: &CommandStream, inputs: &[Vec<f32>]) {
        let mut next_input = 0usize;
        for cmd in stream.iter() {
            match cmd.kind {
                CommandKind::WrInp { gbuf_idx, .. } => {
                    let tile = inputs
                        .get(next_input)
                        .unwrap_or_else(|| panic!("WR-INP #{next_input} has no input tile"));
                    assert_eq!(tile.len(), self.geometry.elems_per_tile as usize);
                    self.gbuf[gbuf_idx as usize].copy_from_slice(tile);
                    next_input += 1;
                }
                CommandKind::Mac {
                    gbuf_idx,
                    row,
                    col,
                    out_idx,
                } => {
                    let x = &self.gbuf[gbuf_idx as usize];
                    for bank in 0..self.geometry.banks as usize {
                        let w = self.banks[bank].get(&(row, col));
                        let dot: f32 = match w {
                            Some(w) => w.iter().zip(x.iter()).map(|(a, b)| a * b).sum(),
                            None => 0.0,
                        };
                        self.obuf[out_idx as usize][bank] += dot;
                    }
                }
                CommandKind::RdOut { out_idx, .. } => {
                    let vals = self.obuf[out_idx as usize].clone();
                    for v in self.obuf[out_idx as usize].iter_mut() {
                        *v = 0.0;
                    }
                    self.drained.push((cmd.id, vals));
                }
            }
        }
    }

    /// The drain log: `(RD-OUT id, per-bank values)` in drain order.
    pub fn drained(&self) -> &[(CommandId, Vec<f32>)] {
        &self.drained
    }

    /// Flattens the drain log into one output vector (bank-major within
    /// each drain).
    pub fn drained_flat(&self) -> Vec<f32> {
        self.drained
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::PimCommand;

    fn geom() -> Geometry {
        Geometry {
            banks: 2,
            gbuf_entries: 4,
            out_entries: 2,
            row_tiles: 4,
            elems_per_tile: 2,
        }
    }

    #[test]
    fn mac_accumulates_dot_products() {
        let mut ch = FunctionalChannel::new(geom());
        ch.store_tile(0, 0, 0, vec![1.0, 2.0]);
        ch.store_tile(1, 0, 0, vec![3.0, 4.0]);
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        ch.execute(&s, &[vec![10.0, 20.0]]);
        // bank0: 1*10 + 2*20 = 50; bank1: 3*10 + 4*20 = 110.
        assert_eq!(ch.drained_flat(), vec![50.0, 110.0]);
    }

    #[test]
    fn rd_out_clears_accumulator() {
        let mut ch = FunctionalChannel::new(geom());
        ch.store_tile(0, 0, 0, vec![1.0, 0.0]);
        ch.store_tile(1, 0, 0, vec![1.0, 0.0]);
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        s.push(PimCommand::mac(3, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(4, 0, 0));
        ch.execute(&s, &[vec![5.0, 0.0]]);
        let d = ch.drained();
        assert_eq!(d[0].1, vec![5.0, 5.0]);
        assert_eq!(
            d[1].1,
            vec![5.0, 5.0],
            "second accumulation starts from zero"
        );
    }

    #[test]
    fn missing_weight_tiles_read_as_zero() {
        let mut ch = FunctionalChannel::new(geom());
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 9, 3, 1));
        s.push(PimCommand::rd_out(2, 1, 0));
        ch.execute(&s, &[vec![1.0, 1.0]]);
        assert_eq!(ch.drained_flat(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no input tile")]
    fn missing_input_panics() {
        let mut ch = FunctionalChannel::new(geom());
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        ch.execute(&s, &[]);
    }

    #[test]
    fn overwrite_gbuf_uses_new_value() {
        let mut ch = FunctionalChannel::new(geom());
        ch.store_tile(0, 0, 0, vec![1.0, 1.0]);
        ch.store_tile(1, 0, 0, vec![1.0, 1.0]);
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::wr_inp(1, 0, 0));
        s.push(PimCommand::mac(2, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(3, 0, 0));
        ch.execute(&s, &[vec![1.0, 0.0], vec![0.0, 2.0]]);
        assert_eq!(ch.drained_flat(), vec![2.0, 2.0]);
    }
}
