//! Module-level functional simulation: TCP attention across channels.
//!
//! A PIM module holds multiple channels behind a HUB (paper Fig. 3(a)).
//! Under Token-Centric Partitioning, one attention head executes as:
//!
//! 1. each channel runs `QKᵀ` over its token slice,
//! 2. the HUB gathers the per-channel score segments into the GPR, where
//!    concatenation is free and the EPU applies softmax (paper §IV-C),
//! 3. each channel runs `SV` over its token slice against the softmaxed
//!    scores,
//! 4. the EPU reduces the per-channel partial outputs.
//!
//! This module executes that flow *functionally* end-to-end, so tests can
//! assert that a TCP-partitioned module computes exactly the reference
//! attention — the correctness half of the TCP claim (the performance
//! half lives in the schedulers and the system model).

use crate::epu::Epu;
use crate::functional::FunctionalChannel;
use crate::geometry::Geometry;
use crate::kernels::{AttentionSpec, QktKernel, SvKernel};

/// A multi-channel PIM module with a HUB-side EPU.
#[derive(Debug, Clone)]
pub struct PimModule {
    geometry: Geometry,
    n_channels: u32,
    epu: Epu,
}

/// Result of one attention-head execution.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadOutput {
    /// Per-query attention outputs (`g × d_h`).
    pub outputs: Vec<Vec<f32>>,
    /// Per-query softmaxed scores over all tokens (exposed for tests and
    /// downstream analysis).
    pub probabilities: Vec<Vec<f32>>,
}

impl PimModule {
    /// Creates a module with `n_channels` channels of the given geometry.
    ///
    /// # Panics
    /// Panics if `n_channels` is zero.
    pub fn new(n_channels: u32, geometry: Geometry) -> Self {
        assert!(n_channels > 0, "a module needs at least one channel");
        PimModule {
            geometry,
            n_channels,
            epu: Epu::default(),
        }
    }

    /// Channels in the module.
    pub fn channels(&self) -> u32 {
        self.n_channels
    }

    /// Token range assigned to channel `ch` out of `tokens` (TCP's even
    /// contiguous split).
    pub fn token_slice(&self, tokens: usize, ch: u32) -> (usize, usize) {
        let per = tokens.div_ceil(self.n_channels as usize);
        let start = (ch as usize * per).min(tokens);
        let end = ((ch as usize + 1) * per).min(tokens);
        (start, end)
    }

    /// Executes one attention head under TCP.
    ///
    /// * `keys` / `values`: the KV cache, `T × d_h` each.
    /// * `queries`: `g` query vectors of length `d_h` (GQA group).
    /// * `scale`: score scaling (`1/sqrt(d_h)` conventionally).
    ///
    /// # Panics
    /// Panics on empty or mismatched inputs.
    pub fn attention_head(
        &self,
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
        queries: &[Vec<f32>],
        scale: f32,
    ) -> HeadOutput {
        let tokens = keys.len();
        assert!(tokens > 0, "empty KV cache");
        assert_eq!(values.len(), tokens, "K/V length mismatch");
        assert!(!queries.is_empty(), "no queries");
        let head_dim = queries[0].len();
        let g = queries.len() as u32;

        // Phase 1: per-channel QKT over the channel's token slice.
        let mut scores = vec![vec![0.0f32; tokens]; queries.len()];
        for ch in 0..self.n_channels {
            let (start, end) = self.token_slice(tokens, ch);
            if start >= end {
                continue;
            }
            let spec = AttentionSpec {
                tokens: (end - start) as u32,
                head_dim: head_dim as u32,
                group_size: g,
                row_reuse: g > 1,
            };
            let kernel = QktKernel::new(spec, self.geometry);
            let mut channel = FunctionalChannel::new(self.geometry);
            kernel.load_keys(&mut channel, |tok, d| keys[start + tok][d]);
            channel.execute(&kernel.stream(), &kernel.input_tiles(queries));
            let seg = kernel.scores_from(&channel);
            for (q, qseg) in seg.iter().enumerate() {
                // HUB/GPR gather: concatenation only (paper §IV-C).
                scores[q][start..end].copy_from_slice(&qseg[..end - start]);
            }
        }

        // Phase 2: EPU softmax over the concatenated scores.
        let probabilities: Vec<Vec<f32>> = scores
            .iter()
            .map(|s| {
                let scaled: Vec<f32> = s.iter().map(|&x| x * scale).collect();
                self.epu.softmax(&scaled)
            })
            .collect();

        // Phase 3: per-channel SV partial reduction over token slices.
        let mut partials_per_query: Vec<Vec<Vec<f32>>> =
            vec![Vec::with_capacity(self.n_channels as usize); queries.len()];
        for ch in 0..self.n_channels {
            let (start, end) = self.token_slice(tokens, ch);
            if start >= end {
                continue;
            }
            let spec = AttentionSpec {
                tokens: (end - start) as u32,
                head_dim: head_dim as u32,
                group_size: g,
                row_reuse: g > 1,
            };
            let kernel = SvKernel::new(spec, self.geometry);
            let mut channel = FunctionalChannel::new(self.geometry);
            kernel.load_values(&mut channel, |tok, d| values[start + tok][d]);
            let slice_scores: Vec<Vec<f32>> = probabilities
                .iter()
                .map(|p| p[start..end].to_vec())
                .collect();
            channel.execute(&kernel.stream(), &kernel.input_tiles(&slice_scores));
            for (q, out) in kernel.outputs_from(&channel).into_iter().enumerate() {
                partials_per_query[q].push(out);
            }
        }

        // Phase 4: EPU inter-channel reduction.
        let outputs = partials_per_query
            .into_iter()
            .map(|partials| self.epu.reduce_partials(&partials))
            .collect();
        HeadOutput {
            outputs,
            probabilities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> Geometry {
        Geometry {
            banks: 4,
            gbuf_entries: 8,
            out_entries: 2,
            row_tiles: 8,
            elems_per_tile: 4,
        }
    }

    fn reference_attention(
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
        query: &[f32],
        scale: f32,
    ) -> Vec<f32> {
        let scores: Vec<f32> = keys
            .iter()
            .map(|k| k.iter().zip(query).map(|(a, b)| a * b).sum::<f32>() * scale)
            .collect();
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let head_dim = values[0].len();
        (0..head_dim)
            .map(|d| {
                exps.iter()
                    .zip(values)
                    .map(|(&e, v)| e / sum * v[d])
                    .sum::<f32>()
            })
            .collect()
    }

    fn kv(tokens: usize, head_dim: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let keys = (0..tokens)
            .map(|t| {
                (0..head_dim)
                    .map(|d| ((t * 3 + d) % 7) as f32 * 0.2 - 0.5)
                    .collect()
            })
            .collect();
        let values = (0..tokens)
            .map(|t| {
                (0..head_dim)
                    .map(|d| ((t + d * 5) % 9) as f32 * 0.25 - 1.0)
                    .collect()
            })
            .collect();
        (keys, values)
    }

    #[test]
    fn tcp_module_matches_reference_attention_mha() {
        let module = PimModule::new(4, small_geom());
        let (keys, values) = kv(37, 8);
        let query: Vec<f32> = (0..8).map(|d| d as f32 * 0.3 - 1.0).collect();
        let out = module.attention_head(&keys, &values, std::slice::from_ref(&query), 0.35);
        let want = reference_attention(&keys, &values, &query, 0.35);
        for (a, b) in out.outputs[0].iter().zip(&want) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn tcp_module_matches_reference_attention_gqa() {
        let module = PimModule::new(4, small_geom());
        let (keys, values) = kv(29, 8);
        let queries: Vec<Vec<f32>> = (0..3)
            .map(|q| {
                (0..8)
                    .map(|d| ((q * 2 + d) % 5) as f32 * 0.4 - 0.8)
                    .collect()
            })
            .collect();
        let out = module.attention_head(&keys, &values, &queries, 0.35);
        for (q, qv) in queries.iter().enumerate() {
            let want = reference_attention(&keys, &values, qv, 0.35);
            for (a, b) in out.outputs[q].iter().zip(&want) {
                assert!((a - b).abs() < 5e-3, "q={q}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn channel_count_does_not_change_results() {
        let (keys, values) = kv(41, 8);
        let query: Vec<f32> = (0..8).map(|d| (d % 3) as f32 * 0.5).collect();
        let one = PimModule::new(1, small_geom()).attention_head(
            &keys,
            &values,
            std::slice::from_ref(&query),
            1.0,
        );
        let many = PimModule::new(8, small_geom()).attention_head(&keys, &values, &[query], 1.0);
        for (a, b) in one.outputs[0].iter().zip(&many.outputs[0]) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn probabilities_form_distributions() {
        let module = PimModule::new(3, small_geom());
        let (keys, values) = kv(17, 8);
        let out = module.attention_head(
            &keys,
            &values,
            &[(0..8).map(|d| d as f32 * 0.1).collect()],
            0.5,
        );
        let sum: f32 = out.probabilities[0].iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn token_slices_tile_the_context() {
        let module = PimModule::new(5, small_geom());
        let mut next = 0;
        for ch in 0..5 {
            let (s, e) = module.token_slice(23, ch);
            assert_eq!(s, next.min(23));
            next = e;
        }
        assert_eq!(next, 23);
    }

    #[test]
    #[should_panic(expected = "empty KV cache")]
    fn empty_kv_panics() {
        let module = PimModule::new(2, small_geom());
        module.attention_head(&[], &[], &[vec![0.0; 8]], 1.0);
    }
}
