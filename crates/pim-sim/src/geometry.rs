//! Physical geometry of one PIM channel.

use serde::{Deserialize, Serialize};

/// Static shape parameters of a PIM channel (paper §II-B, §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Banks per channel, each with a 16-lane MAC unit.
    pub banks: u32,
    /// Global Buffer capacity in 32 B tile entries (2 KB => 64).
    pub gbuf_entries: u32,
    /// Output register/buffer entries. The conventional AiM design exposes
    /// 4 B per bank (= 2 fp16 accumulator entries); PIMphony's I/O-aware
    /// buffering expands this into a multi-entry Output Buffer.
    pub out_entries: u32,
    /// Tiles per DRAM row per bank (1 KB row / 32 B tile => 32).
    pub row_tiles: u32,
    /// fp16 elements per 32 B tile.
    pub elems_per_tile: u32,
}

impl Geometry {
    /// Conventional AiM channel: 16 banks, 64-entry GBuf, 2-entry OutRegs.
    pub fn baseline() -> Self {
        Geometry {
            banks: 16,
            gbuf_entries: 64,
            out_entries: 2,
            row_tiles: 32,
            elems_per_tile: 16,
        }
    }

    /// PIMphony channel with expanded Output Buffers (16 entries).
    pub fn pimphony() -> Self {
        Geometry {
            out_entries: 16,
            ..Self::baseline()
        }
    }

    /// Bytes per tile (32 B for 16 fp16 lanes).
    pub fn tile_bytes(&self) -> u32 {
        self.elems_per_tile * 2
    }

    /// Peak MAC lanes in the channel (`banks * elems_per_tile`).
    pub fn mac_lanes(&self) -> u32 {
        self.banks * self.elems_per_tile
    }

    /// Maps a linear per-bank tile index to `(row, col)`.
    pub fn tile_to_row_col(&self, tile_index: u64) -> (u32, u16) {
        let row = (tile_index / u64::from(self.row_tiles)) as u32;
        let col = (tile_index % u64::from(self.row_tiles)) as u16;
        (row, col)
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_aim_spec() {
        let g = Geometry::baseline();
        assert_eq!(g.banks, 16);
        // 2 KB GBuf of 32 B tiles.
        assert_eq!(g.gbuf_entries * g.tile_bytes(), 2048);
        assert_eq!(g.out_entries, 2);
    }

    #[test]
    fn pimphony_expands_out_buffers_only() {
        let b = Geometry::baseline();
        let p = Geometry::pimphony();
        assert!(p.out_entries > b.out_entries);
        assert_eq!(p.gbuf_entries, b.gbuf_entries);
        assert_eq!(p.banks, b.banks);
    }

    #[test]
    fn tile_row_col_round_trip() {
        let g = Geometry::baseline();
        assert_eq!(g.tile_to_row_col(0), (0, 0));
        assert_eq!(g.tile_to_row_col(31), (0, 31));
        assert_eq!(g.tile_to_row_col(32), (1, 0));
        assert_eq!(g.tile_to_row_col(100), (3, 4));
    }

    #[test]
    fn mac_lanes_product() {
        assert_eq!(Geometry::baseline().mac_lanes(), 256);
    }
}
