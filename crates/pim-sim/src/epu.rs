//! Extra Processing Unit (EPU) and Activation Function Unit (paper
//! Fig. 3(a)).
//!
//! The PIM HUB contains an EPU for auxiliary operations — notably the
//! softmax between `QKᵀ` and `SV` — and an Activation Function Unit that
//! evaluates non-linearities via Look-Up-Table approximation. Under TCP,
//! the EPU also performs the inter-channel reduction of `SV` partial sums
//! gathered in the GPR (paper §IV-C).

use serde::Serialize;

/// A piecewise-linear look-up table approximating `f` over `[lo, hi]`.
///
/// # Example
///
/// ```
/// use pim_sim::epu::LutTable;
/// let lut = LutTable::tabulate(|x| x.exp(), -8.0, 0.0, 256);
/// assert!((lut.approximate(-1.0) - (-1.0f32).exp()).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct LutTable {
    lo: f32,
    hi: f32,
    values: Vec<f32>,
}

impl LutTable {
    /// Samples `f` at `entries + 1` uniformly spaced points.
    ///
    /// # Panics
    /// Panics if `entries == 0` or `lo >= hi`.
    pub fn tabulate<F: Fn(f32) -> f32>(f: F, lo: f32, hi: f32, entries: usize) -> Self {
        assert!(entries > 0, "LUT needs at least one segment");
        assert!(lo < hi, "invalid LUT range");
        let values = (0..=entries)
            .map(|i| f(lo + (hi - lo) * i as f32 / entries as f32))
            .collect();
        LutTable { lo, hi, values }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.values.len() - 1
    }

    /// Piecewise-linear approximation of the tabulated function; inputs
    /// outside the range clamp to the endpoints.
    pub fn approximate(&self, x: f32) -> f32 {
        let n = self.segments() as f32;
        let t = ((x - self.lo) / (self.hi - self.lo) * n).clamp(0.0, n);
        let i = (t as usize).min(self.segments() - 1);
        let frac = t - i as f32;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }
}

/// EPU timing parameters (elements processed per cycle).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EpuConfig {
    /// Softmax elements per cycle (vector lanes in the EPU).
    pub softmax_lanes: u32,
    /// Reduction elements per cycle (GPR-side adder width).
    pub reduce_lanes: u32,
    /// LUT segments for the exp approximation.
    pub exp_segments: usize,
}

impl Default for EpuConfig {
    fn default() -> Self {
        EpuConfig {
            softmax_lanes: 16,
            reduce_lanes: 16,
            exp_segments: 256,
        }
    }
}

/// The HUB's Extra Processing Unit.
#[derive(Debug, Clone)]
pub struct Epu {
    config: EpuConfig,
    exp_lut: LutTable,
}

impl Epu {
    /// Creates an EPU with the given configuration.
    pub fn new(config: EpuConfig) -> Self {
        // Softmax inputs are shifted to (-inf, 0], so tabulating exp on
        // [-16, 0] covers everything that matters numerically.
        let exp_lut = LutTable::tabulate(|x| x.exp(), -16.0, 0.0, config.exp_segments);
        Epu { config, exp_lut }
    }

    /// The configuration.
    pub fn config(&self) -> &EpuConfig {
        &self.config
    }

    /// Numerically stabilized softmax using the LUT exp — the operation
    /// the EPU performs between `QKᵀ` and `SV`.
    pub fn softmax(&self, scores: &[f32]) -> Vec<f32> {
        if scores.is_empty() {
            return Vec::new();
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores
            .iter()
            .map(|&s| self.exp_lut.approximate(s - max))
            .collect();
        let sum: f32 = exps.iter().sum();
        if sum <= 0.0 {
            // Degenerate input: fall back to uniform.
            return vec![1.0 / scores.len() as f32; scores.len()];
        }
        exps.iter().map(|&e| e / sum).collect()
    }

    /// EPU cycles to softmax a score vector of `tokens` elements (two
    /// passes: max+exp, then normalize).
    pub fn softmax_cycles(&self, tokens: u64) -> u64 {
        2 * tokens.div_ceil(u64::from(self.config.softmax_lanes))
    }

    /// Reduces per-channel `SV` partial outputs gathered in the GPR (TCP's
    /// inter-channel reduction, paper §IV-C): element-wise sum.
    ///
    /// # Panics
    /// Panics if the partial vectors have different lengths.
    pub fn reduce_partials(&self, partials: &[Vec<f32>]) -> Vec<f32> {
        let Some(first) = partials.first() else {
            return Vec::new();
        };
        let mut out = first.clone();
        for p in &partials[1..] {
            assert_eq!(p.len(), out.len(), "partial length mismatch");
            for (o, v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
        out
    }

    /// EPU cycles for the inter-channel reduction of `channels` partial
    /// vectors of `dims` elements.
    pub fn reduce_cycles(&self, channels: u32, dims: u32) -> u64 {
        u64::from(channels.saturating_sub(1)) * u64::from(dims.div_ceil(self.config.reduce_lanes))
    }
}

impl Default for Epu {
    fn default() -> Self {
        Self::new(EpuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_exp_error_is_small() {
        let lut = LutTable::tabulate(|x| x.exp(), -16.0, 0.0, 256);
        let mut worst = 0.0f32;
        for i in 0..1000 {
            let x = -16.0 + 16.0 * i as f32 / 1000.0;
            worst = worst.max((lut.approximate(x) - x.exp()).abs());
        }
        assert!(worst < 2e-3, "worst LUT error {worst}");
    }

    #[test]
    fn lut_clamps_out_of_range() {
        let lut = LutTable::tabulate(|x| x, 0.0, 1.0, 16);
        assert_eq!(lut.approximate(-5.0), 0.0);
        assert_eq!(lut.approximate(7.0), 1.0);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let epu = Epu::default();
        let s = epu.softmax(&[1.0, 2.0, 3.0, -1.0, 0.5]);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Monotone in the input.
        assert!(s[2] > s[1] && s[1] > s[0] && s[0] > s[3]);
    }

    #[test]
    fn softmax_matches_reference_closely() {
        let epu = Epu::default();
        let scores = [0.3f32, -2.0, 1.7, 0.0, 4.2, -0.9];
        let got = epu.softmax(&scores);
        let max = 4.2f32;
        let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (g, e) in got.iter().zip(exps.iter()) {
            assert!((g - e / sum).abs() < 1e-3, "{g} vs {}", e / sum);
        }
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(Epu::default().softmax(&[]).is_empty());
    }

    #[test]
    fn reduction_sums_partials() {
        let epu = Epu::default();
        let partials = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        assert_eq!(epu.reduce_partials(&partials), vec![111.0, 222.0]);
        assert!(epu.reduce_partials(&[]).is_empty());
    }

    #[test]
    fn cycle_models_scale_sanely() {
        let epu = Epu::default();
        assert_eq!(epu.softmax_cycles(16), 2);
        assert!(epu.softmax_cycles(1 << 20) > epu.softmax_cycles(1 << 10));
        // 16 channels reducing a 128-dim head: 15 adds of 8 beats.
        assert_eq!(epu.reduce_cycles(16, 128), 15 * 8);
        assert_eq!(epu.reduce_cycles(1, 128), 0);
    }
}
