//! Hazard replay checker: proves a schedule never violates data hazards.
//!
//! The Dynamic Command Scheduler reorders I/O against compute. This module
//! replays any [`ExecutionReport`] against the per-entry hazard rules and
//! reports every violation, establishing that reordering is *safe* — the
//! cornerstone of the claim that DCS changes timing, never values.

use crate::report::ExecutionReport;
use pim_isa::command::{CommandKind, CommandStream};
use pim_isa::CommandId;
use std::collections::BTreeMap;
use std::fmt;

/// One detected hazard violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Earlier command (in program order) of the conflicting pair.
    pub first: CommandId,
    /// Later command whose timing violates the dependency.
    pub second: CommandId,
    /// Human-readable description of the violated rule.
    pub rule: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.first, self.second, self.rule)
    }
}

/// Replays `report` against `stream`'s program-order hazards.
///
/// Rules (entry-granular):
/// * `WR-INP w` then `MAC m` reading the same GBuf entry: `m.issue >= w.complete` (RAW).
/// * `MAC m` then `WR-INP w` writing the same GBuf entry: `w.issue >= m.issue` (WAR;
///   the read is sampled at issue, so overwrite may not begin earlier).
/// * `WR-INP w1` then `WR-INP w2` to the same entry: `w2.issue >= w1.issue` (WAW order).
/// * `MAC m` then `RD-OUT r` on the same OBuf entry: `r.issue >= m.complete` (RAW).
/// * `RD-OUT r` then `MAC m` on the same OBuf entry: `m.issue >= r.complete` (WAR).
/// * `RD-OUT r1` then `RD-OUT r2` on the same entry: `r2.issue >= r1.issue`.
/// * `MAC` then `MAC` on the same OBuf entry: accumulation is commutative,
///   but issue order must be preserved.
///
/// Returns all violations (empty = schedule is hazard-free).
pub fn check_schedule(stream: &CommandStream, report: &ExecutionReport) -> Vec<Violation> {
    let timing: BTreeMap<CommandId, (u64, u64)> = report
        .timings
        .iter()
        .map(|t| (t.id, (t.issue, t.complete)))
        .collect();
    let mut violations = Vec::new();

    // Last accessors per entry, walked in program order.
    #[derive(Clone, Copy)]
    struct Access {
        id: CommandId,
        kind: AccessKind,
    }
    #[derive(Clone, Copy, PartialEq)]
    enum AccessKind {
        Write,
        MacRead,
        MacAcc,
        Drain,
    }

    let mut gbuf: BTreeMap<u16, Access> = BTreeMap::new();
    let mut obuf: BTreeMap<u16, Access> = BTreeMap::new();

    let push = |violations: &mut Vec<Violation>,
                first: CommandId,
                second: CommandId,
                ok: bool,
                rule: &'static str| {
        if !ok {
            violations.push(Violation {
                first,
                second,
                rule,
            });
        }
    };

    for cmd in stream.iter() {
        let (issue, _complete) = match timing.get(&cmd.id) {
            Some(&t) => t,
            None => {
                violations.push(Violation {
                    first: cmd.id,
                    second: cmd.id,
                    rule: "command missing from schedule",
                });
                continue;
            }
        };
        match cmd.kind {
            CommandKind::WrInp { gbuf_idx, .. } => {
                if let Some(prev) = gbuf.get(&gbuf_idx) {
                    let (p_issue, p_complete) = timing[&prev.id];
                    match prev.kind {
                        AccessKind::Write => push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_issue,
                            "WAW on GBuf entry out of order",
                        ),
                        AccessKind::MacRead => push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_issue.min(p_complete),
                            "WAR: overwrite before MAC sampled its input",
                        ),
                        _ => {}
                    }
                }
                gbuf.insert(
                    gbuf_idx,
                    Access {
                        id: cmd.id,
                        kind: AccessKind::Write,
                    },
                );
            }
            CommandKind::Mac {
                gbuf_idx, out_idx, ..
            } => {
                if let Some(prev) = gbuf.get(&gbuf_idx) {
                    if prev.kind == AccessKind::Write {
                        let (_, p_complete) = timing[&prev.id];
                        push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_complete,
                            "RAW: MAC read before WR-INP completed",
                        );
                    }
                }
                if let Some(prev) = obuf.get(&out_idx) {
                    let (p_issue, p_complete) = timing[&prev.id];
                    match prev.kind {
                        AccessKind::Drain => push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_complete,
                            "WAR: accumulate before drain completed",
                        ),
                        AccessKind::MacAcc => push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_issue,
                            "MAC accumulation order on OBuf entry",
                        ),
                        _ => {}
                    }
                }
                gbuf.insert(
                    gbuf_idx,
                    Access {
                        id: cmd.id,
                        kind: AccessKind::MacRead,
                    },
                );
                obuf.insert(
                    out_idx,
                    Access {
                        id: cmd.id,
                        kind: AccessKind::MacAcc,
                    },
                );
            }
            CommandKind::RdOut { out_idx, .. } => {
                if let Some(prev) = obuf.get(&out_idx) {
                    let (p_issue, p_complete) = timing[&prev.id];
                    match prev.kind {
                        AccessKind::MacAcc => push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_complete,
                            "RAW: drain before MAC accumulation completed",
                        ),
                        AccessKind::Drain => push(
                            &mut violations,
                            prev.id,
                            cmd.id,
                            issue >= p_issue,
                            "drain order on OBuf entry",
                        ),
                        _ => {}
                    }
                }
                obuf.insert(
                    out_idx,
                    Access {
                        id: cmd.id,
                        kind: AccessKind::Drain,
                    },
                );
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Breakdown, CommandTiming};
    use pim_isa::PimCommand;

    fn report_from(timings: Vec<CommandTiming>) -> ExecutionReport {
        let cycles = timings.iter().map(|t| t.complete).max().unwrap_or(0);
        ExecutionReport {
            timings,
            cycles,
            breakdown: Breakdown::default(),
            mac_count: 0,
            wr_inp_count: 0,
            rd_out_count: 0,
            row_switches: 0,
            refresh_events: 0,
        }
    }

    fn wmr_stream() -> CommandStream {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(0, 0, 0));
        s.push(PimCommand::mac(1, 0, 0, 0, 0));
        s.push(PimCommand::rd_out(2, 0, 0));
        s
    }

    #[test]
    fn clean_schedule_has_no_violations() {
        let s = wmr_stream();
        let r = report_from(vec![
            CommandTiming {
                id: CommandId(0),
                issue: 0,
                complete: 8,
            },
            CommandTiming {
                id: CommandId(1),
                issue: 8,
                complete: 16,
            },
            CommandTiming {
                id: CommandId(2),
                issue: 16,
                complete: 24,
            },
        ]);
        assert!(check_schedule(&s, &r).is_empty());
    }

    #[test]
    fn early_mac_read_is_flagged() {
        let s = wmr_stream();
        let r = report_from(vec![
            CommandTiming {
                id: CommandId(0),
                issue: 0,
                complete: 8,
            },
            CommandTiming {
                id: CommandId(1),
                issue: 4,
                complete: 12,
            }, // too early
            CommandTiming {
                id: CommandId(2),
                issue: 12,
                complete: 20,
            },
        ]);
        let v = check_schedule(&s, &r);
        assert_eq!(v.len(), 1);
        assert!(v[0].rule.contains("RAW: MAC read"));
    }

    #[test]
    fn early_drain_is_flagged() {
        let s = wmr_stream();
        let r = report_from(vec![
            CommandTiming {
                id: CommandId(0),
                issue: 0,
                complete: 8,
            },
            CommandTiming {
                id: CommandId(1),
                issue: 8,
                complete: 16,
            },
            CommandTiming {
                id: CommandId(2),
                issue: 10,
                complete: 18,
            }, // too early
        ]);
        let v = check_schedule(&s, &r);
        assert_eq!(v.len(), 1);
        assert!(v[0].rule.contains("drain before MAC"));
    }

    #[test]
    fn missing_command_is_flagged() {
        let s = wmr_stream();
        let r = report_from(vec![CommandTiming {
            id: CommandId(0),
            issue: 0,
            complete: 8,
        }]);
        let v = check_schedule(&s, &r);
        assert!(v.iter().any(|x| x.rule.contains("missing")));
    }

    #[test]
    fn all_schedulers_pass_checker_on_mixed_stream() {
        use crate::sched::{schedule, SchedulerKind};
        use crate::{Geometry, Timing};
        let mut s = CommandStream::new();
        let mut id = 0;
        for rep in 0..3u16 {
            for e in 0..4u16 {
                s.push(PimCommand::wr_inp(id, e, 0));
                id += 1;
            }
            for e in 0..4u16 {
                s.push(PimCommand::mac(id, e, rep as u32, e, e % 2));
                id += 1;
            }
            for o in 0..2u16 {
                s.push(PimCommand::rd_out(id, o, 0));
                id += 1;
            }
        }
        for kind in SchedulerKind::ALL {
            let r = schedule(&s, kind, &Timing::aimx_no_refresh(), &Geometry::pimphony());
            let v = check_schedule(&s, &r);
            assert!(v.is_empty(), "{kind}: {:?}", v);
        }
    }
}
