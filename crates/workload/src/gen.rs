//! Request and trace generation.
//!
//! Context lengths are drawn from a normal distribution truncated to the
//! dataset's `[min, max]` range (rejection sampling), matching Table II's
//! moments. Decode lengths default to a fixed budget, as the paper's
//! throughput metric is decode-phase tokens/second.

use crate::dataset::{Dataset, DatasetStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Stable identifier within its trace.
    pub id: u64,
    /// Prompt (context) length in tokens.
    pub context_len: u64,
    /// Tokens to generate in the decode phase.
    pub decode_len: u64,
}

impl Request {
    /// Context plus generated tokens at decode completion.
    pub fn final_len(&self) -> u64 {
        self.context_len + self.decode_len
    }
}

/// An ordered set of requests presented to the serving system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over requests.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Mean context length (0 for an empty trace).
    pub fn mean_context(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().map(|r| r.context_len as f64).sum::<f64>() / self.len() as f64
    }

    /// Standard deviation of context lengths.
    pub fn std_context(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_context();
        let var = self
            .requests
            .iter()
            .map(|r| (r.context_len as f64 - mean).powi(2))
            .sum::<f64>()
            / self.len() as f64;
        var.sqrt()
    }

    /// Minimum and maximum context lengths, or `None` if empty.
    pub fn context_range(&self) -> Option<(u64, u64)> {
        let min = self.requests.iter().map(|r| r.context_len).min()?;
        let max = self.requests.iter().map(|r| r.context_len).max()?;
        Some((min, max))
    }

    /// Total decode tokens across the trace.
    pub fn total_decode_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.decode_len).sum()
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Trace { requests: iter.into_iter().collect() }
    }
}

/// Builder for reproducible traces.
///
/// # Example
///
/// ```
/// use workload::{Dataset, TraceBuilder};
/// let trace = TraceBuilder::new(Dataset::QmSum).seed(7).requests(64).build();
/// assert_eq!(trace.len(), 64);
/// let (min, max) = trace.context_range().unwrap();
/// assert!(min >= Dataset::QmSum.stats().min && max <= Dataset::QmSum.stats().max);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    stats: DatasetStats,
    seed: u64,
    n: usize,
    decode_len: u64,
    sigma_clip: Option<f64>,
}

impl TraceBuilder {
    /// Starts a builder for one of the Table II datasets.
    pub fn new(dataset: Dataset) -> Self {
        TraceBuilder {
            stats: dataset.stats(),
            seed: 0,
            n: 128,
            decode_len: 256,
            sigma_clip: None,
        }
    }

    /// Starts a builder from custom statistics (used by the Fig. 17
    /// 3-sigma synthetic sweep).
    pub fn from_stats(stats: DatasetStats) -> Self {
        TraceBuilder { stats, seed: 0, n: 128, decode_len: 256, sigma_clip: None }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of requests.
    pub fn requests(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the per-request decode budget.
    pub fn decode_len(mut self, tokens: u64) -> Self {
        self.decode_len = tokens;
        self
    }

    /// Additionally truncates samples to `mean ± k·std` (the paper's
    /// "3-sigma context variation" uses `k = 3`).
    pub fn sigma_clip(mut self, k: f64) -> Self {
        self.sigma_clip = Some(k);
        self
    }

    /// Generates the trace.
    pub fn build(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (mut lo, mut hi) = (self.stats.min as f64, self.stats.max as f64);
        if let Some(k) = self.sigma_clip {
            lo = lo.max(self.stats.mean - k * self.stats.std);
            hi = hi.min(self.stats.mean + k * self.stats.std);
        }
        let mut requests = Vec::with_capacity(self.n);
        for id in 0..self.n as u64 {
            let len = sample_truncated_normal(&mut rng, self.stats.mean, self.stats.std, lo, hi);
            requests.push(Request {
                id,
                context_len: len.round().max(1.0) as u64,
                decode_len: self.decode_len,
            });
        }
        Trace { requests }
    }
}

/// Box–Muller normal sample truncated to `[lo, hi]` by rejection (with a
/// clamp fallback after 64 rejections to guarantee termination).
fn sample_truncated_normal(rng: &mut StdRng, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    for _ in 0..64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = mean + std * z;
        if x >= lo && x <= hi {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_reproducible() {
        let a = TraceBuilder::new(Dataset::Musique).seed(42).requests(32).build();
        let b = TraceBuilder::new(Dataset::Musique).seed(42).requests(32).build();
        assert_eq!(a, b);
        let c = TraceBuilder::new(Dataset::Musique).seed(43).requests(32).build();
        assert_ne!(a, c);
    }

    #[test]
    fn samples_respect_table2_bounds() {
        for d in Dataset::ALL {
            let t = TraceBuilder::new(d).seed(1).requests(500).build();
            let s = d.stats();
            let (min, max) = t.context_range().unwrap();
            assert!(min >= s.min, "{d}: {min} < {}", s.min);
            assert!(max <= s.max, "{d}: {max} > {}", s.max);
        }
    }

    #[test]
    fn sample_moments_roughly_match() {
        let t = TraceBuilder::new(Dataset::QmSum).seed(9).requests(4000).build();
        let s = Dataset::QmSum.stats();
        let mean_err = (t.mean_context() - s.mean).abs() / s.mean;
        assert!(mean_err < 0.08, "mean off by {:.1}%", mean_err * 100.0);
        // Truncation shrinks the std a bit; accept a broad band.
        let std_ratio = t.std_context() / s.std;
        assert!((0.6..=1.2).contains(&std_ratio), "std ratio {std_ratio}");
    }

    #[test]
    fn sigma_clip_narrows_spread() {
        let wide = TraceBuilder::new(Dataset::MultiFieldQa).seed(5).requests(1000).build();
        let narrow = TraceBuilder::new(Dataset::MultiFieldQa)
            .seed(5)
            .requests(1000)
            .sigma_clip(1.0)
            .build();
        assert!(narrow.std_context() < wide.std_context());
    }

    #[test]
    fn decode_budget_applies() {
        let t = TraceBuilder::new(Dataset::QmSum).decode_len(77).requests(3).build();
        assert!(t.iter().all(|r| r.decode_len == 77));
        assert_eq!(t.total_decode_tokens(), 231);
        assert!(t.iter().all(|r| r.final_len() == r.context_len + 77));
    }

    #[test]
    fn empty_trace_stats_are_defined() {
        let t = Trace::new();
        assert_eq!(t.mean_context(), 0.0);
        assert_eq!(t.std_context(), 0.0);
        assert_eq!(t.context_range(), None);
        assert!(t.is_empty());
    }
}
