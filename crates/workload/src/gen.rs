//! Request and trace generation.
//!
//! Context lengths are drawn from a normal distribution truncated to the
//! dataset's `[min, max]` range (rejection sampling), matching Table II's
//! moments. Decode lengths default to a fixed budget, as the paper's
//! throughput metric is decode-phase tokens/second; online-serving
//! studies can widen them with [`TraceBuilder::decode_range`].
//!
//! For open-loop (continuous-batching) experiments, requests additionally
//! carry an **arrival time**. [`ArrivalProcess::Batch`] (the default)
//! reproduces the paper's closed-world evaluation where every request is
//! available at time zero; [`ArrivalProcess::Poisson`] models steady
//! traffic with exponential interarrivals; [`ArrivalProcess::Bursty`]
//! uses gamma interarrivals with a coefficient of variation above one, so
//! requests cluster into bursts at the same average rate.

use crate::dataset::{Dataset, DatasetStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Stable identifier within its trace.
    pub id: u64,
    /// Prompt (context) length in tokens — the tokens the prefill stage
    /// must process before the first token can be generated (see
    /// [`Request::prompt_len`]).
    pub context_len: u64,
    /// Tokens to generate in the decode phase.
    pub decode_len: u64,
    /// Arrival time in integer microseconds since the trace epoch
    /// (microseconds keep `Request` hashable and exactly comparable).
    pub arrival_us: u64,
    /// Scheduling priority class: higher values are more urgent.
    /// Priority 0 (the default) reproduces plain FCFS; under the serving
    /// stack's preemption policies a higher-priority arrival may evict
    /// strictly-lower-priority running requests to claim their KV
    /// reservation.
    pub priority: u8,
    /// Tenant (traffic-class) id the request belongs to — 0 for
    /// single-tenant traces. Tenants are the unit of the serving
    /// report's per-tenant latency/SLO/fairness breakdown; the id is
    /// purely a label and never influences scheduling (priorities do
    /// that).
    pub tenant: u8,
    /// Leading prompt tokens shared verbatim with every other request
    /// of the same tenant (a common system prompt / few-shot template).
    /// Always `<= context_len`. Pure metadata for the serving stack's
    /// prefix cache: with paged KV + prefix caching enabled, these
    /// tokens can map already-computed pages and skip their prefill; 0
    /// (the default) means no sharing and is bit-identical to traces
    /// generated before this field existed.
    pub shared_prefix: u64,
}

impl Request {
    /// Context plus generated tokens at decode completion.
    pub fn final_len(&self) -> u64 {
        self.context_len + self.decode_len
    }

    /// The prompt length the prefill stage processes, in tokens.
    /// Synonym for `context_len`, named for the serving-side semantics:
    /// a prefill-enabled simulation must compute attention and FC over
    /// exactly these tokens before the request's first decode step.
    pub fn prompt_len(&self) -> u64 {
        self.context_len
    }

    /// Arrival time in seconds since the trace epoch.
    pub fn arrival_secs(&self) -> f64 {
        self.arrival_us as f64 * 1e-6
    }
}

/// An ordered set of requests presented to the serving system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over requests.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Mean context length (0 for an empty trace).
    pub fn mean_context(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| r.context_len as f64)
            .sum::<f64>()
            / self.len() as f64
    }

    /// Standard deviation of context lengths.
    pub fn std_context(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_context();
        let var = self
            .requests
            .iter()
            .map(|r| (r.context_len as f64 - mean).powi(2))
            .sum::<f64>()
            / self.len() as f64;
        var.sqrt()
    }

    /// Minimum and maximum context lengths, or `None` if empty.
    pub fn context_range(&self) -> Option<(u64, u64)> {
        let min = self.requests.iter().map(|r| r.context_len).min()?;
        let max = self.requests.iter().map(|r| r.context_len).max()?;
        Some((min, max))
    }

    /// Total decode tokens across the trace.
    pub fn total_decode_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.decode_len).sum()
    }

    /// Total prompt tokens across the trace — the work a
    /// prefill-enabled simulation must process exactly once.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.prompt_len()).sum()
    }

    /// Worst-case final length across the trace (0 if empty) — the
    /// `T_max` the serving configuration is compiled for.
    pub fn max_final_len(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.final_len())
            .max()
            .unwrap_or(0)
    }

    /// The requests in global arrival order (`(arrival_us, id)`,
    /// stable), the stream a cluster front-end consumes. Builder traces
    /// already arrive in this order, so for them this is the identity.
    pub fn arrival_ordered(&self) -> Vec<Request> {
        let mut ordered = self.requests.clone();
        ordered.sort_by_key(|r| (r.arrival_us, r.id));
        ordered
    }

    /// Last arrival time in seconds (0 for batch traces and empty traces).
    pub fn last_arrival_secs(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| r.arrival_us)
            .max()
            .unwrap_or(0) as f64
            * 1e-6
    }

    /// Offered load in requests/second over the arrival span, or `None`
    /// for batch traces whose arrivals all coincide.
    pub fn offered_rate(&self) -> Option<f64> {
        let span = self.last_arrival_secs();
        (span > 0.0).then(|| self.len() as f64 / span)
    }

    /// The distinct tenant ids present, ascending.
    pub fn tenants(&self) -> Vec<u8> {
        let mut t: Vec<u8> = self.requests.iter().map(|r| r.tenant).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Merges per-tenant traces into one globally arrival-ordered
    /// trace: ids are offset by the cumulative request count so they
    /// stay unique across tenants, then the merged stream is sorted by
    /// `(arrival_us, id)` — the order a shared cluster front-end sees.
    /// Merging a single trace is the identity (ids untouched; builder
    /// traces are already arrival-ordered), which is what keeps
    /// one-tenant scenarios bit-exact with plain [`TraceBuilder`]
    /// traces.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut requests = Vec::new();
        let mut offset = 0u64;
        for t in traces {
            let n = t.requests.len() as u64;
            requests.extend(t.requests.into_iter().map(|mut r| {
                r.id += offset;
                r
            }));
            offset += n;
        }
        requests.sort_by_key(|r| (r.arrival_us, r.id));
        Trace { requests }
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Trace {
            requests: iter.into_iter().collect(),
        }
    }
}

/// The request arrival-time process of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Closed world: every request is available at time zero (the paper's
    /// wave-serving evaluation).
    Batch,
    /// Steady open-loop traffic: exponential interarrivals at `rate`
    /// requests/second.
    Poisson {
        /// Mean arrival rate in requests/second.
        rate: f64,
    },
    /// Bursty open-loop traffic: gamma interarrivals with coefficient of
    /// variation `cv > 1` at the same mean `rate` (cv = 1 degenerates to
    /// Poisson).
    Bursty {
        /// Mean arrival rate in requests/second.
        rate: f64,
        /// Coefficient of variation of the interarrival time (≥ 1).
        cv: f64,
    },
}

impl ArrivalProcess {
    /// Mean arrival rate in requests/second (`None` for batch arrivals).
    pub fn rate(&self) -> Option<f64> {
        match *self {
            ArrivalProcess::Batch => None,
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Bursty { rate, .. } => Some(rate),
        }
    }

    /// Draws one interarrival gap in seconds.
    fn sample_gap(&self, rng: &mut StdRng) -> f64 {
        match *self {
            ArrivalProcess::Batch => 0.0,
            ArrivalProcess::Poisson { rate } => sample_exponential(rng) / rate,
            ArrivalProcess::Bursty { rate, cv } => {
                // Gamma with mean 1/rate and cv: shape k = 1/cv², scale
                // chosen so k·scale = 1/rate.
                let shape = (1.0 / (cv * cv)).max(1e-3);
                sample_gamma(rng, shape) / (shape * rate)
            }
        }
    }
}

/// The per-request decode budget specification.
///
/// `Fixed` draws nothing from the RNG; `Uniform` draws one value per
/// request (even when `lo == hi`), so the two are *not* interchangeable
/// on seeded traces — scenario specs must preserve which one they mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeSpec {
    /// Every request decodes exactly this many tokens.
    Fixed(u64),
    /// Each request's budget is drawn uniformly over the inclusive
    /// range (requires `1 <= lo <= hi`).
    Uniform(u64, u64),
}

impl DecodeSpec {
    /// Whether the spec is well-formed (uniform needs `1 <= lo <= hi`).
    pub fn is_valid(&self) -> bool {
        match *self {
            DecodeSpec::Fixed(_) => true,
            DecodeSpec::Uniform(lo, hi) => lo >= 1 && lo <= hi,
        }
    }
}

/// Builder for reproducible traces.
///
/// # Example
///
/// ```
/// use workload::{Dataset, TraceBuilder};
/// let trace = TraceBuilder::new(Dataset::QmSum).seed(7).requests(64).build();
/// assert_eq!(trace.len(), 64);
/// let (min, max) = trace.context_range().unwrap();
/// assert!(min >= Dataset::QmSum.stats().min && max <= Dataset::QmSum.stats().max);
/// // Closed-world by default; opt into open-loop arrivals:
/// let online = TraceBuilder::new(Dataset::QmSum).seed(7).requests(64).poisson(5.0).build();
/// assert!(online.last_arrival_secs() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    stats: DatasetStats,
    seed: u64,
    n: usize,
    decode: DecodeSpec,
    sigma_clip: Option<f64>,
    arrivals: ArrivalProcess,
    priority_levels: u8,
    fixed_priority: Option<u8>,
    tenant: u8,
    shared_prefix: u64,
}

impl TraceBuilder {
    /// Starts a builder for one of the Table II datasets.
    pub fn new(dataset: Dataset) -> Self {
        Self::from_stats(dataset.stats())
    }

    /// Starts a builder from custom statistics (used by the Fig. 17
    /// 3-sigma synthetic sweep).
    pub fn from_stats(stats: DatasetStats) -> Self {
        TraceBuilder {
            stats,
            seed: 0,
            n: 128,
            decode: DecodeSpec::Fixed(256),
            sigma_clip: None,
            arrivals: ArrivalProcess::Batch,
            priority_levels: 1,
            fixed_priority: None,
            tenant: 0,
            shared_prefix: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of requests.
    pub fn requests(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets a fixed per-request decode budget.
    pub fn decode_len(mut self, tokens: u64) -> Self {
        self.decode = DecodeSpec::Fixed(tokens);
        self
    }

    /// Draws each request's decode budget uniformly from `[lo, hi]`
    /// (inclusive) — response lengths vary in production traffic, which
    /// is what gives continuous batching its refill advantage.
    pub fn decode_range(mut self, lo: u64, hi: u64) -> Self {
        self.decode = DecodeSpec::Uniform(lo, hi);
        self
    }

    /// Sets the decode budget from an explicit [`DecodeSpec`] (the form
    /// scenario specs deserialize into).
    pub fn decode(mut self, spec: DecodeSpec) -> Self {
        self.decode = spec;
        self
    }

    /// Additionally truncates samples to `mean ± k·std` (the paper's
    /// "3-sigma context variation" uses `k = 3`).
    pub fn sigma_clip(mut self, k: f64) -> Self {
        self.sigma_clip = Some(k);
        self
    }

    /// Sets the arrival-time process (default: batch, all at time zero).
    pub fn arrivals(mut self, process: ArrivalProcess) -> Self {
        if let Some(rate) = process.rate() {
            assert!(
                rate > 0.0 && rate.is_finite(),
                "arrival rate must be positive"
            );
        }
        if let ArrivalProcess::Bursty { cv, .. } = process {
            assert!(cv >= 1.0, "bursty cv must be >= 1 (cv = 1 is Poisson)");
        }
        self.arrivals = process;
        self
    }

    /// Poisson arrivals at `rate` requests/second.
    pub fn poisson(self, rate: f64) -> Self {
        self.arrivals(ArrivalProcess::Poisson { rate })
    }

    /// Bursty (gamma) arrivals at `rate` requests/second with interarrival
    /// coefficient of variation `cv`.
    pub fn bursty(self, rate: f64, cv: f64) -> Self {
        self.arrivals(ArrivalProcess::Bursty { rate, cv })
    }

    /// Draws each request's priority uniformly from `0..levels`
    /// (`levels ≥ 1`; higher is more urgent). The default single level
    /// leaves every priority at 0 — and draws nothing from the RNG — so
    /// existing traces are bit-identical.
    pub fn priority_levels(mut self, levels: u8) -> Self {
        assert!(levels >= 1, "at least one priority level is required");
        self.priority_levels = levels;
        self
    }

    /// Gives every request the same fixed priority class (higher is
    /// more urgent), drawing nothing from the RNG — the per-tenant form
    /// of priority: a whole tenant's traffic shares one class. Takes
    /// precedence over [`Self::priority_levels`]. `priority(0)` is
    /// bit-identical to the default build.
    pub fn priority(mut self, priority: u8) -> Self {
        self.fixed_priority = Some(priority);
        self
    }

    /// Labels every request with a tenant id (default 0). Pure
    /// metadata: it draws nothing from the RNG and never influences
    /// scheduling, so `tenant(0)` is bit-identical to the default
    /// build.
    pub fn tenant(mut self, tenant: u8) -> Self {
        self.tenant = tenant;
        self
    }

    /// Marks the first `tokens` prompt tokens of every request as a
    /// prefix shared across the tenant's traffic (system prompt /
    /// few-shot template), clamped per request to its sampled context
    /// length. Pure metadata: it draws nothing from the RNG and never
    /// changes contexts, budgets or arrivals, so `shared_prefix(0)`
    /// (the default) is bit-identical to the default build.
    pub fn shared_prefix(mut self, tokens: u64) -> Self {
        self.shared_prefix = tokens;
        self
    }

    /// Generates the trace.
    ///
    /// RNG draw order is: context lengths (one rejection loop per
    /// request), then decode budgets (only if ranged), then interarrival
    /// gaps (only if open-loop), then priorities (only if more than one
    /// level) — so default builds reproduce the exact streams of earlier
    /// versions of this crate.
    ///
    /// # Panics
    ///
    /// Rejects degenerate configurations instead of silently producing
    /// an empty or invalid trace: zero requests, or a uniform decode
    /// range with `lo > hi` or `lo < 1`.
    pub fn build(&self) -> Trace {
        assert!(
            self.n > 0,
            "TraceBuilder: requests must be > 0 (a zero-request build would \
             silently produce an empty trace; use Trace::new() for an \
             intentionally empty one)"
        );
        assert!(
            self.decode.is_valid(),
            "TraceBuilder: decode range requires 1 <= lo <= hi, got {:?}",
            self.decode
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (mut lo, mut hi) = (self.stats.min as f64, self.stats.max as f64);
        if let Some(k) = self.sigma_clip {
            lo = lo.max(self.stats.mean - k * self.stats.std);
            hi = hi.min(self.stats.mean + k * self.stats.std);
        }
        let mut requests = Vec::with_capacity(self.n);
        for id in 0..self.n as u64 {
            let len = sample_truncated_normal(&mut rng, self.stats.mean, self.stats.std, lo, hi);
            let decode_len = match self.decode {
                DecodeSpec::Fixed(d) => d,
                DecodeSpec::Uniform(_, _) => 0, // filled below, after all context draws
            };
            let context_len = len.round().max(1.0) as u64;
            requests.push(Request {
                id,
                context_len,
                decode_len,
                arrival_us: 0,
                priority: 0,
                tenant: self.tenant,
                shared_prefix: self.shared_prefix.min(context_len),
            });
        }
        if let DecodeSpec::Uniform(dlo, dhi) = self.decode {
            for r in &mut requests {
                // Inclusive draw without overflowing at dhi == u64::MAX
                // (dlo >= 1 keeps the span below 2^64).
                r.decode_len = dlo + rng.gen_range(0..dhi - dlo + 1);
            }
        }
        if !matches!(self.arrivals, ArrivalProcess::Batch) {
            let mut clock = 0.0f64;
            for r in &mut requests {
                clock += self.arrivals.sample_gap(&mut rng);
                r.arrival_us = (clock * 1e6).round() as u64;
            }
        }
        if let Some(p) = self.fixed_priority {
            for r in &mut requests {
                r.priority = p;
            }
        } else if self.priority_levels > 1 {
            for r in &mut requests {
                r.priority = rng.gen_range(0..u64::from(self.priority_levels)) as u8;
            }
        }
        Trace { requests }
    }
}

/// Box–Muller standard normal sample.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample truncated to `[lo, hi]` by rejection (with a clamp
/// fallback after 64 rejections to guarantee termination).
fn sample_truncated_normal(rng: &mut StdRng, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    for _ in 0..64 {
        let x = mean + std * sample_standard_normal(rng);
        if x >= lo && x <= hi {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

/// Unit-mean exponential sample.
fn sample_exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln()
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang, with the `U^(1/k)` boost
/// for shapes below one.
fn sample_gamma(rng: &mut StdRng, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_reproducible() {
        let a = TraceBuilder::new(Dataset::Musique)
            .seed(42)
            .requests(32)
            .build();
        let b = TraceBuilder::new(Dataset::Musique)
            .seed(42)
            .requests(32)
            .build();
        assert_eq!(a, b);
        let c = TraceBuilder::new(Dataset::Musique)
            .seed(43)
            .requests(32)
            .build();
        assert_ne!(a, c);
    }

    #[test]
    fn samples_respect_table2_bounds() {
        for d in Dataset::ALL {
            let t = TraceBuilder::new(d).seed(1).requests(500).build();
            let s = d.stats();
            let (min, max) = t.context_range().unwrap();
            assert!(min >= s.min, "{d}: {min} < {}", s.min);
            assert!(max <= s.max, "{d}: {max} > {}", s.max);
        }
    }

    #[test]
    fn sample_moments_roughly_match() {
        let t = TraceBuilder::new(Dataset::QmSum)
            .seed(9)
            .requests(4000)
            .build();
        let s = Dataset::QmSum.stats();
        let mean_err = (t.mean_context() - s.mean).abs() / s.mean;
        assert!(mean_err < 0.08, "mean off by {:.1}%", mean_err * 100.0);
        // Truncation shrinks the std a bit; accept a broad band.
        let std_ratio = t.std_context() / s.std;
        assert!((0.6..=1.2).contains(&std_ratio), "std ratio {std_ratio}");
    }

    #[test]
    fn sigma_clip_narrows_spread() {
        let wide = TraceBuilder::new(Dataset::MultiFieldQa)
            .seed(5)
            .requests(1000)
            .build();
        let narrow = TraceBuilder::new(Dataset::MultiFieldQa)
            .seed(5)
            .requests(1000)
            .sigma_clip(1.0)
            .build();
        assert!(narrow.std_context() < wide.std_context());
    }

    #[test]
    fn decode_budget_applies() {
        let t = TraceBuilder::new(Dataset::QmSum)
            .decode_len(77)
            .requests(3)
            .build();
        assert!(t.iter().all(|r| r.decode_len == 77));
        assert_eq!(t.total_decode_tokens(), 231);
        assert!(t.iter().all(|r| r.final_len() == r.context_len + 77));
    }

    #[test]
    fn prompt_tokens_total_the_contexts() {
        let t = TraceBuilder::new(Dataset::QmSum)
            .seed(2)
            .requests(5)
            .build();
        assert!(t.iter().all(|r| r.prompt_len() == r.context_len));
        assert_eq!(
            t.total_prompt_tokens(),
            t.iter().map(|r| r.context_len).sum::<u64>()
        );
        assert_eq!(Trace::new().total_prompt_tokens(), 0);
    }

    #[test]
    fn empty_trace_stats_are_defined() {
        let t = Trace::new();
        assert_eq!(t.mean_context(), 0.0);
        assert_eq!(t.std_context(), 0.0);
        assert_eq!(t.context_range(), None);
        assert!(t.is_empty());
        assert_eq!(t.last_arrival_secs(), 0.0);
        assert_eq!(t.offered_rate(), None);
        assert_eq!(t.max_final_len(), 0);
        assert!(t.arrival_ordered().is_empty());
    }

    #[test]
    fn arrival_order_sorts_by_time_then_id() {
        let mk = |id, arrival_us| Request {
            id,
            context_len: 10,
            decode_len: 4,
            arrival_us,
            priority: 0,
            tenant: 0,
            shared_prefix: 0,
        };
        // Hand-built trace with out-of-order arrivals and a tie.
        let t: Trace = [mk(0, 500), mk(1, 100), mk(2, 100), mk(3, 0)]
            .into_iter()
            .collect();
        let ids: Vec<u64> = t.arrival_ordered().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 1, 2, 0]);
        // Builder traces are already in arrival order.
        let built = TraceBuilder::new(Dataset::QmSum)
            .seed(6)
            .requests(32)
            .poisson(4.0)
            .build();
        assert_eq!(built.arrival_ordered(), built.requests());
        assert_eq!(
            built.max_final_len(),
            built.iter().map(|r| r.final_len()).max().unwrap()
        );
    }

    #[test]
    fn batch_arrivals_are_all_zero() {
        let t = TraceBuilder::new(Dataset::QmSum)
            .seed(4)
            .requests(16)
            .build();
        assert!(t.iter().all(|r| r.arrival_us == 0));
        assert_eq!(t.offered_rate(), None);
    }

    #[test]
    fn arrivals_do_not_perturb_context_sampling() {
        // Opting into arrivals must not change the context-length stream,
        // so closed- and open-loop runs stay length-comparable.
        let batch = TraceBuilder::new(Dataset::QmSum)
            .seed(11)
            .requests(64)
            .build();
        let online = TraceBuilder::new(Dataset::QmSum)
            .seed(11)
            .requests(64)
            .poisson(2.0)
            .build();
        for (a, b) in batch.iter().zip(online.iter()) {
            assert_eq!(a.context_len, b.context_len);
            assert_eq!(a.decode_len, b.decode_len);
        }
    }

    #[test]
    fn poisson_arrivals_are_monotone_at_about_the_rate() {
        let rate = 8.0;
        let t = TraceBuilder::new(Dataset::QmSum)
            .seed(3)
            .requests(2000)
            .poisson(rate)
            .build();
        let mut last = 0;
        for r in t.iter() {
            assert!(r.arrival_us >= last, "arrivals must be nondecreasing");
            last = r.arrival_us;
        }
        let measured = t.offered_rate().expect("open-loop trace");
        assert!(
            (measured - rate).abs() / rate < 0.1,
            "measured {measured:.2} vs requested {rate}"
        );
    }

    #[test]
    fn bursty_interarrivals_spread_wider_than_poisson() {
        let rate = 4.0;
        let cv = |t: &Trace| {
            let gaps: Vec<f64> = t
                .requests()
                .windows(2)
                .map(|w| (w[1].arrival_us - w[0].arrival_us) as f64)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let p = TraceBuilder::new(Dataset::QmSum)
            .seed(7)
            .requests(3000)
            .poisson(rate)
            .build();
        let b = TraceBuilder::new(Dataset::QmSum)
            .seed(7)
            .requests(3000)
            .bursty(rate, 3.0)
            .build();
        assert!((cv(&p) - 1.0).abs() < 0.15, "poisson cv {:.2}", cv(&p));
        assert!(cv(&b) > 2.0, "bursty cv {:.2} not bursty", cv(&b));
        // Same average rate within tolerance.
        let rp = p.offered_rate().unwrap();
        let rb = b.offered_rate().unwrap();
        assert!(
            (rp - rb).abs() / rp < 0.25,
            "poisson {rp:.2} vs bursty {rb:.2}"
        );
    }

    #[test]
    fn priorities_default_to_zero_and_draw_after_everything_else() {
        // One level (the default): every priority is 0 and the rest of
        // the trace is bit-identical to a builder without the call.
        let base = TraceBuilder::new(Dataset::QmSum)
            .seed(13)
            .requests(64)
            .decode_range(4, 32)
            .bursty(8.0, 2.0)
            .build();
        let one_level = TraceBuilder::new(Dataset::QmSum)
            .seed(13)
            .requests(64)
            .decode_range(4, 32)
            .bursty(8.0, 2.0)
            .priority_levels(1)
            .build();
        assert_eq!(base, one_level);
        assert!(base.iter().all(|r| r.priority == 0));
        // Multiple levels: priorities are drawn *after* contexts, decode
        // budgets and arrivals, so those streams stay untouched.
        let tiered = TraceBuilder::new(Dataset::QmSum)
            .seed(13)
            .requests(64)
            .decode_range(4, 32)
            .bursty(8.0, 2.0)
            .priority_levels(3)
            .build();
        for (a, b) in base.iter().zip(tiered.iter()) {
            assert_eq!(a.context_len, b.context_len);
            assert_eq!(a.decode_len, b.decode_len);
            assert_eq!(a.arrival_us, b.arrival_us);
        }
        assert!(tiered.iter().all(|r| r.priority < 3));
        let distinct: std::collections::HashSet<u8> = tiered.iter().map(|r| r.priority).collect();
        assert!(distinct.len() > 1, "uniform draw should spread");
    }

    #[test]
    #[should_panic(expected = "requests must be > 0")]
    fn zero_request_builds_are_rejected() {
        let _ = TraceBuilder::new(Dataset::QmSum).requests(0).build();
    }

    #[test]
    #[should_panic(expected = "decode range requires 1 <= lo <= hi")]
    fn inverted_decode_ranges_are_rejected_at_build() {
        let _ = TraceBuilder::new(Dataset::QmSum)
            .requests(4)
            .decode_range(9, 3)
            .build();
    }

    #[test]
    #[should_panic(expected = "decode range requires 1 <= lo <= hi")]
    fn zero_decode_lower_bound_is_rejected_at_build() {
        let _ = TraceBuilder::new(Dataset::QmSum)
            .requests(4)
            .decode(DecodeSpec::Uniform(0, 8))
            .build();
    }

    #[test]
    fn fixed_priority_and_tenant_tagging_draw_nothing_from_the_rng() {
        let base = TraceBuilder::new(Dataset::QmSum)
            .seed(21)
            .requests(32)
            .decode_range(4, 32)
            .poisson(5.0)
            .build();
        // priority(0) + tenant(0) is bit-identical to the default build.
        let tagged_zero = TraceBuilder::new(Dataset::QmSum)
            .seed(21)
            .requests(32)
            .decode_range(4, 32)
            .poisson(5.0)
            .priority(0)
            .tenant(0)
            .build();
        assert_eq!(base, tagged_zero);
        // Nonzero tags change only the labeled fields.
        let tagged = TraceBuilder::new(Dataset::QmSum)
            .seed(21)
            .requests(32)
            .decode_range(4, 32)
            .poisson(5.0)
            .priority(2)
            .tenant(3)
            .build();
        for (a, b) in base.iter().zip(tagged.iter()) {
            assert_eq!(a.context_len, b.context_len);
            assert_eq!(a.decode_len, b.decode_len);
            assert_eq!(a.arrival_us, b.arrival_us);
            assert_eq!(b.priority, 2);
            assert_eq!(b.tenant, 3);
        }
        assert_eq!(base.tenants(), vec![0]);
        assert_eq!(tagged.tenants(), vec![3]);
    }

    #[test]
    fn shared_prefix_is_clamped_and_draws_nothing_from_the_rng() {
        let base = TraceBuilder::new(Dataset::QmSum)
            .seed(23)
            .requests(64)
            .decode_range(4, 32)
            .poisson(5.0)
            .build();
        // shared_prefix(0) is bit-identical to the default build.
        let zero = TraceBuilder::new(Dataset::QmSum)
            .seed(23)
            .requests(64)
            .decode_range(4, 32)
            .poisson(5.0)
            .shared_prefix(0)
            .build();
        assert_eq!(base, zero);
        assert!(base.iter().all(|r| r.shared_prefix == 0));
        // A huge shared prefix clamps to each context; everything else
        // is untouched.
        let shared = TraceBuilder::new(Dataset::QmSum)
            .seed(23)
            .requests(64)
            .decode_range(4, 32)
            .poisson(5.0)
            .shared_prefix(u64::MAX)
            .build();
        for (a, b) in base.iter().zip(shared.iter()) {
            assert_eq!(a.context_len, b.context_len);
            assert_eq!(a.decode_len, b.decode_len);
            assert_eq!(a.arrival_us, b.arrival_us);
            assert_eq!(b.shared_prefix, b.context_len);
        }
        // A modest prefix sits below every sampled context.
        let modest = TraceBuilder::new(Dataset::QmSum)
            .seed(23)
            .requests(64)
            .shared_prefix(5)
            .build();
        assert!(modest
            .iter()
            .all(|r| r.shared_prefix == 5.min(r.context_len)));
    }

    #[test]
    fn merge_is_identity_for_one_trace_and_orders_many() {
        let one = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(16)
            .poisson(4.0)
            .build();
        assert_eq!(Trace::merge([one.clone()]), one);
        let other = TraceBuilder::new(Dataset::Musique)
            .seed(6)
            .requests(8)
            .tenant(1)
            .poisson(2.0)
            .build();
        let merged = Trace::merge([one.clone(), other.clone()]);
        assert_eq!(merged.len(), 24);
        assert_eq!(merged.tenants(), vec![0, 1]);
        // Globally arrival-ordered with unique ids.
        let reqs = merged.requests();
        assert!(reqs
            .windows(2)
            .all(|w| (w[0].arrival_us, w[0].id) < (w[1].arrival_us, w[1].id)));
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        // Each tenant's own stream is preserved verbatim (ids offset).
        let t1: Vec<_> = reqs.iter().filter(|r| r.tenant == 1).collect();
        for (got, want) in t1.iter().zip(other.iter()) {
            assert_eq!(got.context_len, want.context_len);
            assert_eq!(got.arrival_us, want.arrival_us);
            assert_eq!(got.id, want.id + one.len() as u64);
        }
    }

    #[test]
    fn decode_range_samples_within_bounds() {
        let t = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(500)
            .decode_range(8, 64)
            .build();
        assert!(t.iter().all(|r| (8..=64).contains(&r.decode_len)));
        let distinct: std::collections::HashSet<u64> = t.iter().map(|r| r.decode_len).collect();
        assert!(
            distinct.len() > 10,
            "uniform draw should spread: {}",
            distinct.len()
        );
        let mean = t.total_decode_tokens() as f64 / t.len() as f64;
        assert!((mean - 36.0).abs() < 4.0, "mean decode {mean}");
    }
}
