//! Long-context LLM request traces for the PIMphony reproduction.
//!
//! The paper evaluates on four tasks (Table II): QMSum and Musique from
//! LongBench, multifieldqa and Loogle-SD from LV-Eval. Only the *context
//! length distribution* of each task feeds the evaluation, so this crate
//! reproduces exactly that: a truncated-normal sampler matched to each
//! dataset's mean/std/min/max, plus request/trace containers.
//!
//! For online-serving experiments, traces can additionally carry
//! arrival times ([`ArrivalProcess`]: Poisson or bursty gamma) and
//! per-request decode-length variation
//! ([`TraceBuilder::decode_range`]) — the inputs continuous batching
//! needs to show its latency/throughput behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod gen;

pub use dataset::{Dataset, DatasetStats};
pub use gen::{ArrivalProcess, DecodeSpec, Request, Trace, TraceBuilder};
