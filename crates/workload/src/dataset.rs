//! Benchmark dataset statistics (paper Table II).

use serde::{Deserialize, Serialize};

/// Input context-length statistics of one benchmark task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetStats {
    /// Task name.
    pub name: &'static str,
    /// Suite the task belongs to.
    pub suite: &'static str,
    /// Mean context length in tokens.
    pub mean: f64,
    /// Standard deviation in tokens.
    pub std: f64,
    /// Maximum observed context length.
    pub max: u64,
    /// Minimum observed context length.
    pub min: u64,
}

/// The four evaluation tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// LongBench QMSum (meeting summarization).
    QmSum,
    /// LongBench Musique (multi-hop QA).
    Musique,
    /// LV-Eval multifieldqa.
    MultiFieldQa,
    /// LV-Eval Loogle-SD.
    LoogleSd,
}

impl Dataset {
    /// All Table II tasks.
    pub const ALL: [Dataset; 4] = [
        Dataset::QmSum,
        Dataset::Musique,
        Dataset::MultiFieldQa,
        Dataset::LoogleSd,
    ];

    /// The Table II statistics for this task.
    pub fn stats(self) -> DatasetStats {
        match self {
            Dataset::QmSum => DatasetStats {
                name: "QMSum",
                suite: "LongBench",
                mean: 13_966.0,
                std: 6_182.0,
                max: 30_456,
                min: 2_651,
            },
            Dataset::Musique => DatasetStats {
                name: "Musique",
                suite: "LongBench",
                mean: 16_362.0,
                std: 1_651.0,
                max: 17_917,
                min: 6_820,
            },
            Dataset::MultiFieldQa => DatasetStats {
                name: "multifieldqa",
                suite: "LV-Eval",
                mean: 60_780.0,
                std: 31_025.0,
                max: 119_480,
                min: 20_333,
            },
            Dataset::LoogleSd => DatasetStats {
                name: "Loogle-SD",
                suite: "LV-Eval",
                mean: 50_693.0,
                std: 26_506.0,
                max: 109_221,
                min: 13_347,
            },
        }
    }

    /// Tasks of the LongBench suite (used for non-GQA models).
    pub fn longbench() -> [Dataset; 2] {
        [Dataset::QmSum, Dataset::Musique]
    }

    /// Tasks of the LV-Eval suite (used for GQA models).
    pub fn lv_eval() -> [Dataset; 2] {
        [Dataset::MultiFieldQa, Dataset::LoogleSd]
    }

    /// Task name.
    pub fn name(self) -> &'static str {
        self.stats().name
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_table2() {
        let q = Dataset::QmSum.stats();
        assert_eq!(q.mean, 13_966.0);
        assert_eq!(q.max, 30_456);
        let l = Dataset::LoogleSd.stats();
        assert_eq!(l.min, 13_347);
        assert_eq!(l.suite, "LV-Eval");
    }

    #[test]
    fn bounds_are_consistent() {
        for d in Dataset::ALL {
            let s = d.stats();
            assert!(s.min < s.max);
            assert!((s.min as f64) < s.mean && s.mean < s.max as f64, "{d}");
            assert!(s.std > 0.0);
        }
    }

    #[test]
    fn suites_partition_tasks() {
        let mut all: Vec<_> = Dataset::longbench()
            .into_iter()
            .chain(Dataset::lv_eval())
            .collect();
        all.sort_by_key(|d| d.name());
        let mut expect: Vec<_> = Dataset::ALL.into();
        expect.sort_by_key(|d| d.name());
        assert_eq!(all, expect);
    }
}
