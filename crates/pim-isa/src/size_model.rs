//! Instruction-stream footprint model (paper Fig. 10(c)).
//!
//! Conventional PIM systems compile one instruction per unit of work, so the
//! stream size grows linearly with token length — creating instruction
//! buffer pressure at long context. DPA's loop encoding keeps the stored
//! stream nearly constant. This module quantifies both.

use serde::{Deserialize, Serialize};

/// Encoded size of one plain PIM instruction, in bytes.
///
/// Table III's argument set (ch-mask 4 B, op-size 2 B, opcode 1 B, address
/// fields) packs into a 16 B slot on AiMX-style hardware.
pub const PLAIN_INSTRUCTION_BYTES: u64 = 16;

/// Encoded size of a `Dyn-Loop` header (bound source + body length).
pub const DYN_LOOP_BYTES: u64 = 8;

/// Encoded size of a `Dyn-Modi` entry (target, field, stride, modulo).
pub const DYN_MODI_BYTES: u64 = 8;

/// Shape of one attention kernel for the size model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttentionShape {
    /// Per-head feature dimension (d_h).
    pub head_dim: u32,
    /// Channels per module sharing the token axis.
    pub channels: u32,
    /// Banks per channel.
    pub banks: u32,
    /// Elements per 32 B tile (16 for fp16).
    pub elems_per_tile: u32,
}

impl AttentionShape {
    /// AiMX-flavoured default: d_h=128, 16 channels, 16 banks, fp16 tiles.
    pub fn aimx_default() -> Self {
        AttentionShape {
            head_dim: 128,
            channels: 16,
            banks: 16,
            elems_per_tile: 16,
        }
    }

    /// Tokens handled per channel for a context of `tokens`.
    pub fn tokens_per_channel(&self, tokens: u64) -> u64 {
        tokens.div_ceil(u64::from(self.channels))
    }

    /// `MAC` commands per channel for one QKᵀ over `tokens` tokens:
    /// one MAC per (input tile × 16-token output group).
    pub fn qkt_macs_per_channel(&self, tokens: u64) -> u64 {
        let input_tiles = u64::from(self.head_dim.div_ceil(self.elems_per_tile));
        let out_groups = self
            .tokens_per_channel(tokens)
            .div_ceil(u64::from(self.banks));
        input_tiles * out_groups
    }
}

/// Stored instruction bytes for a *statically compiled* attention kernel
/// sized for `t_max` tokens: every `WR-INP`/`MAC`/`RD-OUT` is materialized.
pub fn static_stream_bytes(shape: &AttentionShape, t_max: u64) -> u64 {
    let input_tiles = u64::from(shape.head_dim.div_ceil(shape.elems_per_tile));
    let out_groups = shape
        .tokens_per_channel(t_max)
        .div_ceil(u64::from(shape.banks));
    let macs = shape.qkt_macs_per_channel(t_max);
    // WR-INP for each input tile, MAC per (tile x group), RD-OUT per group.
    (input_tiles + macs + out_groups) * PLAIN_INSTRUCTION_BYTES
}

/// Stored instruction bytes for the same kernel encoded with DPA:
/// input writes stay plain; the token loop collapses to one `Dyn-Loop`
/// with a body of `input_tiles` MACs + one RD-OUT and two `Dyn-Modi`s.
pub fn dpa_stream_bytes(shape: &AttentionShape) -> u64 {
    let input_tiles = u64::from(shape.head_dim.div_ceil(shape.elems_per_tile));
    let plain = input_tiles * PLAIN_INSTRUCTION_BYTES; // WR-INPs
    let body = (input_tiles + 1) * PLAIN_INSTRUCTION_BYTES; // MACs + RD-OUT
    plain + DYN_LOOP_BYTES + body + 2 * DYN_MODI_BYTES
}

/// Ratio of static to DPA stream size at a given `t_max` — the headline of
/// Fig. 10(c).
pub fn compression_ratio(shape: &AttentionShape, t_max: u64) -> f64 {
    static_stream_bytes(shape, t_max) as f64 / dpa_stream_bytes(shape) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_grows_linearly() {
        let s = AttentionShape::aimx_default();
        let a = static_stream_bytes(&s, 4096);
        let b = static_stream_bytes(&s, 8192);
        let c = static_stream_bytes(&s, 16384);
        assert!(b > a && c > b);
        // Approximately linear: doubling tokens ~doubles bytes.
        let r1 = b as f64 / a as f64;
        let r2 = c as f64 / b as f64;
        assert!((r1 - 2.0).abs() < 0.2, "ratio {r1}");
        assert!((r2 - 2.0).abs() < 0.2, "ratio {r2}");
    }

    #[test]
    fn dpa_is_constant_in_tokens() {
        let s = AttentionShape::aimx_default();
        // dpa_stream_bytes takes no token parameter by construction; the
        // compression ratio must therefore grow with t_max.
        assert!(compression_ratio(&s, 1 << 20) > compression_ratio(&s, 1 << 12));
    }

    #[test]
    fn compression_is_large_at_1m_tokens() {
        let s = AttentionShape::aimx_default();
        let ratio = compression_ratio(&s, 1 << 20);
        assert!(ratio > 1000.0, "expected >1000x at 1M tokens, got {ratio}");
    }

    #[test]
    fn qkt_mac_count_matches_hand_calculation() {
        let s = AttentionShape::aimx_default();
        // 16K tokens -> 1K per channel -> 64 output groups x 8 input tiles.
        assert_eq!(s.qkt_macs_per_channel(16 * 1024), 64 * 8);
    }

    #[test]
    fn tokens_per_channel_rounds_up() {
        let s = AttentionShape::aimx_default();
        assert_eq!(s.tokens_per_channel(17), 2);
        assert_eq!(s.tokens_per_channel(16), 1);
    }
}
