//! Channel-level PIM commands.
//!
//! The Multicast Interconnect decodes each [`PimInstruction`](crate::PimInstruction)
//! into per-channel [`PimCommand`]s. These commands are what the PIM
//! controller schedules; the Dynamic Command Scheduler in `pim-sim` attaches
//! dependency IDs to them (paper Fig. 7(c)).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a command within one channel's stream.
///
/// The DCS Dependency Table records, for each buffer entry, the ID of the
/// most recent command touching it; a later command's *Dependency ID* (DID)
/// points back at that command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommandId(pub u32);

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The operation a channel-level command performs, with resolved addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Write one 32 B input tile from the HUB into GBuf entry `gbuf_idx`.
    WrInp {
        /// Destination Global Buffer entry.
        gbuf_idx: u16,
        /// Source GPR address (for data routing; no scheduling effect).
        gpr_addr: u32,
    },
    /// Multiply GBuf entry `gbuf_idx` against column `col` of DRAM row
    /// `row` in every bank, accumulating into output entry `out_idx`.
    Mac {
        /// Source Global Buffer entry.
        gbuf_idx: u16,
        /// DRAM row (opening a different row costs ACT/PRE).
        row: u32,
        /// Column (tile) within the row.
        col: u16,
        /// Destination output register/buffer entry.
        out_idx: u16,
    },
    /// Drain output entry `out_idx` (2 B from each bank) to the HUB.
    RdOut {
        /// Source output register/buffer entry.
        out_idx: u16,
        /// Destination GPR address.
        gpr_addr: u32,
    },
}

impl CommandKind {
    /// Whether this is an I/O transfer (`WR-INP` / `RD-OUT`) as opposed to
    /// a compute (`MAC`) command. DCS routes I/O and compute into separate
    /// queues.
    pub fn is_io(&self) -> bool {
        !matches!(self, CommandKind::Mac { .. })
    }

    /// The GBuf entry this command reads or writes, if any.
    pub fn gbuf_entry(&self) -> Option<u16> {
        match self {
            CommandKind::WrInp { gbuf_idx, .. } => Some(*gbuf_idx),
            CommandKind::Mac { gbuf_idx, .. } => Some(*gbuf_idx),
            CommandKind::RdOut { .. } => None,
        }
    }

    /// The output entry this command reads or writes, if any.
    pub fn out_entry(&self) -> Option<u16> {
        match self {
            CommandKind::WrInp { .. } => None,
            CommandKind::Mac { out_idx, .. } => Some(*out_idx),
            CommandKind::RdOut { out_idx, .. } => Some(*out_idx),
        }
    }
}

/// A fully decoded channel-level command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PimCommand {
    /// Stream-unique identifier (assigned in program order).
    pub id: CommandId,
    /// The operation and its addresses.
    pub kind: CommandKind,
}

impl PimCommand {
    /// Creates a command with the given id and kind.
    pub fn new(id: u32, kind: CommandKind) -> Self {
        PimCommand {
            id: CommandId(id),
            kind,
        }
    }

    /// Convenience constructor for a `WR-INP` command.
    pub fn wr_inp(id: u32, gbuf_idx: u16, gpr_addr: u32) -> Self {
        Self::new(id, CommandKind::WrInp { gbuf_idx, gpr_addr })
    }

    /// Convenience constructor for a `MAC` command.
    pub fn mac(id: u32, gbuf_idx: u16, row: u32, col: u16, out_idx: u16) -> Self {
        Self::new(
            id,
            CommandKind::Mac {
                gbuf_idx,
                row,
                col,
                out_idx,
            },
        )
    }

    /// Convenience constructor for an `RD-OUT` command.
    pub fn rd_out(id: u32, out_idx: u16, gpr_addr: u32) -> Self {
        Self::new(id, CommandKind::RdOut { out_idx, gpr_addr })
    }
}

impl fmt::Display for PimCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CommandKind::WrInp { gbuf_idx, .. } => write!(f, "W{}(gbuf={})", self.id.0, gbuf_idx),
            CommandKind::Mac {
                gbuf_idx,
                row,
                col,
                out_idx,
            } => {
                write!(
                    f,
                    "M{}(gbuf={},r={},c={},out={})",
                    self.id.0, gbuf_idx, row, col, out_idx
                )
            }
            CommandKind::RdOut { out_idx, .. } => write!(f, "R{}(out={})", self.id.0, out_idx),
        }
    }
}

/// A per-channel command stream in program order.
///
/// Invariant: command IDs are strictly increasing (checked in debug builds
/// by [`CommandStream::push`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommandStream {
    commands: Vec<PimCommand>,
}

impl CommandStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a command.
    ///
    /// # Panics
    /// Panics if `cmd.id` does not exceed the previous id. The check is
    /// a single compare and runs in release builds too — the
    /// `should_panic` test covering it must pass under `cargo test
    /// --release` (a `debug_assert!` here made the invariant silently
    /// unenforced in exactly the builds that serve real workloads).
    pub fn push(&mut self, cmd: PimCommand) {
        assert!(
            self.commands.last().map_or(true, |prev| prev.id < cmd.id),
            "command ids must be strictly increasing"
        );
        self.commands.push(cmd);
    }

    /// Appends a command with the next sequential id and returns that id.
    pub fn push_next(&mut self, kind: CommandKind) -> CommandId {
        let id = CommandId(self.commands.len() as u32);
        self.commands.push(PimCommand { id, kind });
        id
    }

    /// The commands in program order.
    pub fn commands(&self) -> &[PimCommand] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Iterates over commands in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, PimCommand> {
        self.commands.iter()
    }

    /// Counts commands of each kind: `(wr_inp, mac, rd_out)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.commands {
            match c.kind {
                CommandKind::WrInp { .. } => counts.0 += 1,
                CommandKind::Mac { .. } => counts.1 += 1,
                CommandKind::RdOut { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

impl FromIterator<PimCommand> for CommandStream {
    fn from_iter<I: IntoIterator<Item = PimCommand>>(iter: I) -> Self {
        let mut s = CommandStream::new();
        for c in iter {
            s.push(c);
        }
        s
    }
}

impl Extend<PimCommand> for CommandStream {
    fn extend<I: IntoIterator<Item = PimCommand>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

impl<'a> IntoIterator for &'a CommandStream {
    type Item = &'a PimCommand;
    type IntoIter = std::slice::Iter<'a, PimCommand>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.iter()
    }
}

impl IntoIterator for CommandStream {
    type Item = PimCommand;
    type IntoIter = std::vec::IntoIter<PimCommand>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification() {
        assert!(CommandKind::WrInp {
            gbuf_idx: 0,
            gpr_addr: 0
        }
        .is_io());
        assert!(CommandKind::RdOut {
            out_idx: 0,
            gpr_addr: 0
        }
        .is_io());
        assert!(!CommandKind::Mac {
            gbuf_idx: 0,
            row: 0,
            col: 0,
            out_idx: 0
        }
        .is_io());
    }

    #[test]
    fn entry_accessors() {
        let mac = CommandKind::Mac {
            gbuf_idx: 3,
            row: 1,
            col: 2,
            out_idx: 5,
        };
        assert_eq!(mac.gbuf_entry(), Some(3));
        assert_eq!(mac.out_entry(), Some(5));
        let w = CommandKind::WrInp {
            gbuf_idx: 7,
            gpr_addr: 0,
        };
        assert_eq!(w.gbuf_entry(), Some(7));
        assert_eq!(w.out_entry(), None);
        let r = CommandKind::RdOut {
            out_idx: 9,
            gpr_addr: 0,
        };
        assert_eq!(r.gbuf_entry(), None);
        assert_eq!(r.out_entry(), Some(9));
    }

    #[test]
    fn stream_push_next_assigns_sequential_ids() {
        let mut s = CommandStream::new();
        let a = s.push_next(CommandKind::WrInp {
            gbuf_idx: 0,
            gpr_addr: 0,
        });
        let b = s.push_next(CommandKind::Mac {
            gbuf_idx: 0,
            row: 0,
            col: 0,
            out_idx: 0,
        });
        assert_eq!(a, CommandId(0));
        assert_eq!(b, CommandId(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic]
    fn stream_rejects_non_increasing_ids() {
        let mut s = CommandStream::new();
        s.push(PimCommand::wr_inp(5, 0, 0));
        s.push(PimCommand::wr_inp(5, 1, 0));
    }

    #[test]
    fn kind_counts_counts_all() {
        let s: CommandStream = vec![
            PimCommand::wr_inp(0, 0, 0),
            PimCommand::mac(1, 0, 0, 0, 0),
            PimCommand::mac(2, 0, 0, 1, 0),
            PimCommand::rd_out(3, 0, 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.kind_counts(), (1, 2, 1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PimCommand::wr_inp(0, 4, 0).to_string(), "W0(gbuf=4)");
        assert_eq!(PimCommand::rd_out(2, 1, 0).to_string(), "R2(out=1)");
    }
}
