//! Instruction Sequencer: unrolls `Op-size` repetitions into commands.
//!
//! The PIM HUB's Instruction Sequencer expands each [`PimInstruction`] by
//! unrolling its repetition count; the Multicast Interconnect then decodes
//! the result into channel-specific [`PimCommand`]s at consecutive
//! addresses (paper §II-B).

use crate::command::{CommandKind, PimCommand};
use crate::instruction::{InstructionKind, PimInstruction};

/// Expands instructions into per-channel command streams.
///
/// # Example
///
/// ```
/// use pim_isa::{ChannelMask, PimInstruction, sequencer::Sequencer};
/// let seq = Sequencer::new(16);
/// let mac = PimInstruction::mac(ChannelMask::single(0), 3, 0, 7, 0, 0);
/// let cmds = seq.expand(&mac);
/// assert_eq!(cmds.len(), 3); // 3 columns unrolled on channel 0
/// ```
#[derive(Debug, Clone)]
pub struct Sequencer {
    channels: u8,
    next_id: u32,
}

/// A command destined for a specific channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedCommand {
    /// Target channel index.
    pub channel: u8,
    /// The decoded command.
    pub command: PimCommand,
}

impl Sequencer {
    /// Creates a sequencer for a module with `channels` channels.
    pub fn new(channels: u8) -> Self {
        Sequencer {
            channels,
            next_id: 0,
        }
    }

    /// Number of channels in the module.
    pub fn channels(&self) -> u8 {
        self.channels
    }

    /// Expands one instruction into routed commands.
    ///
    /// Repetition `i` of a `WR-INP` targets GBuf entry `gbuf_idx + i` and
    /// GPR address `gpr_addr + 32*i`; of a `MAC`, column `col + i` and GBuf
    /// entry `gbuf_idx + i`; of an `RD-OUT`, output entry `out_idx + i`.
    /// Commands on the same channel receive strictly increasing IDs; the
    /// same unrolled sequence is multicast to every channel in the mask.
    pub fn expand(&self, inst: &PimInstruction) -> Vec<RoutedCommand> {
        let mut out = Vec::with_capacity(inst.op_size as usize * inst.ch_mask.count() as usize);
        let base_id = self.next_id;
        for ch in inst.ch_mask.iter() {
            if ch >= self.channels {
                continue;
            }
            for rep in 0..inst.op_size {
                let kind = match inst.kind {
                    InstructionKind::WrInp => CommandKind::WrInp {
                        gbuf_idx: inst.gbuf_idx + rep as u16,
                        gpr_addr: inst.gpr_addr + 32 * rep,
                    },
                    InstructionKind::Mac => CommandKind::Mac {
                        gbuf_idx: inst.gbuf_idx + rep as u16,
                        row: inst.row,
                        col: inst.col + rep as u16,
                        out_idx: inst.out_idx,
                    },
                    InstructionKind::RdOut => CommandKind::RdOut {
                        out_idx: inst.out_idx + rep as u16,
                        gpr_addr: inst.gpr_addr + 32 * rep,
                    },
                };
                out.push(RoutedCommand {
                    channel: ch,
                    command: PimCommand::new(base_id + rep, kind),
                });
            }
        }
        out
    }

    /// Expands a whole program, threading command IDs across instructions
    /// so each channel sees a strictly increasing ID sequence.
    pub fn expand_program(&mut self, program: &[PimInstruction]) -> Vec<RoutedCommand> {
        let mut out = Vec::new();
        for inst in program {
            let routed = self.expand(inst);
            self.next_id += inst.op_size;
            out.extend(routed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ChannelMask;

    #[test]
    fn expand_unrolls_op_size() {
        let seq = Sequencer::new(4);
        let w = PimInstruction::wr_inp(ChannelMask::single(1), 4, 0x0, 2);
        let cmds = seq.expand(&w);
        assert_eq!(cmds.len(), 4);
        for (i, rc) in cmds.iter().enumerate() {
            assert_eq!(rc.channel, 1);
            match rc.command.kind {
                CommandKind::WrInp { gbuf_idx, gpr_addr } => {
                    assert_eq!(gbuf_idx, 2 + i as u16);
                    assert_eq!(gpr_addr, 32 * i as u32);
                }
                _ => panic!("expected WR-INP"),
            }
        }
    }

    #[test]
    fn expand_multicasts_to_all_masked_channels() {
        let seq = Sequencer::new(8);
        let m = PimInstruction::mac(ChannelMask::first(3), 2, 0, 5, 0, 1);
        let cmds = seq.expand(&m);
        assert_eq!(cmds.len(), 6);
        let chans: Vec<u8> = cmds.iter().map(|c| c.channel).collect();
        assert_eq!(chans, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn expand_skips_out_of_range_channels() {
        let seq = Sequencer::new(2);
        let m = PimInstruction::rd_out(ChannelMask::first(4), 1, 0, 0);
        let cmds = seq.expand(&m);
        assert_eq!(cmds.len(), 2);
    }

    #[test]
    fn expand_program_threads_ids() {
        let mut seq = Sequencer::new(1);
        let program = vec![
            PimInstruction::wr_inp(ChannelMask::single(0), 2, 0, 0),
            PimInstruction::mac(ChannelMask::single(0), 2, 0, 0, 0, 0),
        ];
        let cmds = seq.expand_program(&program);
        let ids: Vec<u32> = cmds.iter().map(|c| c.command.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mac_columns_advance() {
        let seq = Sequencer::new(1);
        let m = PimInstruction::mac(ChannelMask::single(0), 3, 1, 9, 4, 2);
        let cols: Vec<u16> = seq
            .expand(&m)
            .iter()
            .map(|rc| match rc.command.kind {
                CommandKind::Mac { col, .. } => col,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cols, vec![4, 5, 6]);
    }
}
