//! Host-visible PIM instructions (paper Table III).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bitmask selecting which PIM channels an instruction targets.
///
/// A module has at most 32 channels, so a `u32` suffices. The Multicast
/// Interconnect broadcasts the decoded commands to every set channel.
///
/// # Example
///
/// ```
/// use pim_isa::ChannelMask;
/// let mask = ChannelMask::first(3);
/// assert!(mask.contains(0) && mask.contains(2) && !mask.contains(3));
/// assert_eq!(mask.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelMask(u32);

impl ChannelMask {
    /// Mask with no channels selected.
    pub const EMPTY: ChannelMask = ChannelMask(0);

    /// Creates a mask from a raw bitset.
    pub fn from_bits(bits: u32) -> Self {
        ChannelMask(bits)
    }

    /// Mask selecting only channel `ch`.
    ///
    /// # Panics
    /// Panics if `ch >= 32`.
    pub fn single(ch: u8) -> Self {
        assert!(ch < 32, "channel index {ch} out of range");
        ChannelMask(1 << ch)
    }

    /// Mask selecting channels `0..n`.
    ///
    /// # Panics
    /// Panics if `n > 32`.
    pub fn first(n: u8) -> Self {
        assert!(n <= 32, "channel count {n} out of range");
        if n == 32 {
            ChannelMask(u32::MAX)
        } else {
            ChannelMask((1u32 << n) - 1)
        }
    }

    /// Returns the raw bitset.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Whether channel `ch` is selected.
    pub fn contains(self, ch: u8) -> bool {
        ch < 32 && self.0 & (1 << ch) != 0
    }

    /// Number of selected channels.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over selected channel indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0u8..32).filter(move |&ch| self.contains(ch))
    }

    /// Union of two masks.
    pub fn union(self, other: ChannelMask) -> ChannelMask {
        ChannelMask(self.0 | other.0)
    }
}

impl fmt::Display for ChannelMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch[{:#010x}]", self.0)
    }
}

/// The primitive operation an instruction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionKind {
    /// Copy input tiles from the GPR to the Global Buffer.
    WrInp,
    /// Dot-product of a GBuf tile against an open DRAM row column, per bank.
    Mac,
    /// Copy accumulated outputs from the Output Registers to the GPR.
    RdOut,
}

impl fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionKind::WrInp => "WR-INP",
            InstructionKind::Mac => "MAC",
            InstructionKind::RdOut => "RD-OUT",
        };
        f.write_str(s)
    }
}

/// A host-visible PIM instruction with the argument set of Table III.
///
/// `op_size` is the repetition count the Instruction Sequencer unrolls;
/// each repetition advances the relevant addresses (GPR address, GBuf index,
/// column, or output index) by one unit so the expanded commands access
/// consecutive locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PimInstruction {
    /// Target channels.
    pub ch_mask: ChannelMask,
    /// Repetition count (>= 1).
    pub op_size: u32,
    /// Operation performed.
    pub kind: InstructionKind,
    /// Base GPR address for `WR-INP` / `RD-OUT` data movement.
    pub gpr_addr: u32,
    /// Base Global Buffer entry index (`WR-INP` destination, `MAC` source).
    pub gbuf_idx: u16,
    /// Base output register/buffer index (`MAC` destination, `RD-OUT` source).
    pub out_idx: u16,
    /// DRAM row address for `MAC`.
    pub row: u32,
    /// Base DRAM column (tile) address within the row for `MAC`.
    pub col: u16,
}

impl PimInstruction {
    /// Creates a `WR-INP` instruction copying `op_size` tiles from
    /// `gpr_addr` into GBuf entries starting at `gbuf_idx`.
    pub fn wr_inp(ch_mask: ChannelMask, op_size: u32, gpr_addr: u32, gbuf_idx: u16) -> Self {
        PimInstruction {
            ch_mask,
            op_size,
            kind: InstructionKind::WrInp,
            gpr_addr,
            gbuf_idx,
            out_idx: 0,
            row: 0,
            col: 0,
        }
    }

    /// Creates a `MAC` instruction performing `op_size` consecutive-column
    /// dot products of GBuf entries starting at `gbuf_idx` against row
    /// `row`, accumulating into `out_idx`.
    pub fn mac(
        ch_mask: ChannelMask,
        op_size: u32,
        gbuf_idx: u16,
        row: u32,
        col: u16,
        out_idx: u16,
    ) -> Self {
        PimInstruction {
            ch_mask,
            op_size,
            kind: InstructionKind::Mac,
            gpr_addr: 0,
            gbuf_idx,
            out_idx,
            row,
            col,
        }
    }

    /// Creates an `RD-OUT` instruction draining `op_size` output entries
    /// starting at `out_idx` to `gpr_addr`.
    pub fn rd_out(ch_mask: ChannelMask, op_size: u32, gpr_addr: u32, out_idx: u16) -> Self {
        PimInstruction {
            ch_mask,
            op_size,
            kind: InstructionKind::RdOut,
            gpr_addr,
            gbuf_idx: 0,
            out_idx,
            row: 0,
            col: 0,
        }
    }
}

impl fmt::Display for PimInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InstructionKind::WrInp => write!(
                f,
                "WR-INP {} x{} gpr={:#x} gbuf={}",
                self.ch_mask, self.op_size, self.gpr_addr, self.gbuf_idx
            ),
            InstructionKind::Mac => write!(
                f,
                "MAC {} x{} gbuf={} row={} col={} out={}",
                self.ch_mask, self.op_size, self.gbuf_idx, self.row, self.col, self.out_idx
            ),
            InstructionKind::RdOut => write!(
                f,
                "RD-OUT {} x{} gpr={:#x} out={}",
                self.ch_mask, self.op_size, self.gpr_addr, self.out_idx
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_first_selects_prefix() {
        let m = ChannelMask::first(5);
        assert_eq!(m.count(), 5);
        for ch in 0..5 {
            assert!(m.contains(ch));
        }
        assert!(!m.contains(5));
    }

    #[test]
    fn mask_first_all_32() {
        let m = ChannelMask::first(32);
        assert_eq!(m.count(), 32);
        assert!(m.contains(31));
    }

    #[test]
    fn mask_single_and_union() {
        let m = ChannelMask::single(3).union(ChannelMask::single(7));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    #[should_panic]
    fn mask_single_out_of_range_panics() {
        let _ = ChannelMask::single(32);
    }

    #[test]
    fn empty_mask_has_no_channels() {
        assert_eq!(ChannelMask::EMPTY.count(), 0);
        assert_eq!(ChannelMask::EMPTY.iter().count(), 0);
    }

    #[test]
    fn constructors_set_kind() {
        let m = ChannelMask::first(1);
        assert_eq!(
            PimInstruction::wr_inp(m, 1, 0, 0).kind,
            InstructionKind::WrInp
        );
        assert_eq!(
            PimInstruction::mac(m, 1, 0, 0, 0, 0).kind,
            InstructionKind::Mac
        );
        assert_eq!(
            PimInstruction::rd_out(m, 1, 0, 0).kind,
            InstructionKind::RdOut
        );
    }

    #[test]
    fn display_is_nonempty() {
        let m = ChannelMask::first(2);
        for inst in [
            PimInstruction::wr_inp(m, 2, 0x40, 1),
            PimInstruction::mac(m, 3, 0, 7, 2, 1),
            PimInstruction::rd_out(m, 1, 0x80, 0),
        ] {
            assert!(!inst.to_string().is_empty());
        }
    }
}
