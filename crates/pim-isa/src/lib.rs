//! PIM instruction set architecture for the PIMphony reproduction.
//!
//! This crate models the command-driven execution interface of an AiM-style
//! DRAM PIM module (paper §II-B, Table III):
//!
//! * [`PimInstruction`] — the three host-visible primitives `WR-INP`, `MAC`
//!   and `RD-OUT`, each carrying the argument set of Table III
//!   (`Ch-mask`, `Op-size`, `GPR-addr`, `GBuf-Idx`, `Out-Idx`, `Row/Col`).
//! * [`PimCommand`] — the channel-level commands the Multicast Interconnect
//!   decodes instructions into; these are what the per-channel controller
//!   (in `pim-sim`) actually schedules.
//! * [`dpa`] — the Dynamic PIM Access extension (paper §VI): `Dyn-Loop` and
//!   `Dyn-Modi` instructions that make loop bounds and operand addresses
//!   token-length-dependent, so the instruction stream stays compact and the
//!   KV cache can live at virtual addresses.
//! * [`size_model`] — the instruction-footprint model behind Fig. 10(c):
//!   static streams grow linearly with context length, DPA streams stay
//!   nearly constant.
//! * [`sequencer`] — the Instruction Sequencer that unrolls `Op-size`
//!   repetitions into per-channel command streams.
//!
//! # Example
//!
//! ```
//! use pim_isa::{ChannelMask, PimInstruction, sequencer::Sequencer};
//!
//! // Broadcast a 4-tile input write to channels 0..4, starting at GBuf 0.
//! let inst = PimInstruction::wr_inp(ChannelMask::first(4), 4, 0x100, 0);
//! let commands = Sequencer::new(16).expand(&inst);
//! assert_eq!(commands.len(), 4 * 4); // 4 channels x 4 repetitions
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod dpa;
pub mod instruction;
pub mod sequencer;
pub mod size_model;

pub use command::{CommandId, CommandKind, PimCommand};
pub use dpa::{DpaInstruction, DpaProgram, DynLoop, DynModi, LoopBound, OperandField};
pub use instruction::{ChannelMask, InstructionKind, PimInstruction};
