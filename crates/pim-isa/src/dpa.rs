//! Dynamic PIM Access (DPA) instructions (paper §VI-B).
//!
//! Conventional PIM instruction streams embed fixed loop counts and physical
//! operand addresses, forcing worst-case (`T_max`) compilation. DPA adds two
//! instructions that make the stream token-length-dependent:
//!
//! * [`DynLoop`] — a loop whose repetition count is derived from the
//!   request's *actual* token length at decode time.
//! * [`DynModi`] — per-iteration operand adjustment (e.g. advancing a `MAC`
//!   row/column by a stride), generating *virtual* addresses that the
//!   on-module dispatcher translates through its VA2PA table.
//!
//! A [`DpaProgram`] is expanded against the current token length `T_cur`
//! into a concrete [`PimInstruction`] sequence whose `row` fields are
//! virtual rows (translation happens in `pim-mem`'s dispatcher).

use crate::instruction::PimInstruction;
use serde::{Deserialize, Serialize};

/// How a [`DynLoop`] derives its repetition count at decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopBound {
    /// A compile-time fixed count (layers, heads, ...).
    Fixed(u32),
    /// `ceil(T_cur / divisor)` — e.g. one iteration per token tile. The
    /// paper's example: the `MAC` row index is `T_cur / (n_CH * n_Bank)`.
    TokensDiv {
        /// Number of tokens covered per iteration.
        divisor: u32,
    },
}

impl LoopBound {
    /// Resolves the bound for the current token length.
    ///
    /// # Panics
    /// Panics if a `TokensDiv` divisor is zero.
    pub fn resolve(self, t_cur: u64) -> u64 {
        match self {
            LoopBound::Fixed(n) => u64::from(n),
            LoopBound::TokensDiv { divisor } => {
                assert!(divisor > 0, "loop divisor must be nonzero");
                t_cur.div_ceil(u64::from(divisor))
            }
        }
    }
}

/// Which operand field of a body instruction a [`DynModi`] adjusts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandField {
    /// The DRAM row address (virtual; translated by the dispatcher).
    Row,
    /// The column (tile) address within a row.
    Col,
    /// The Global Buffer entry index.
    GBufIdx,
    /// The output register/buffer entry index.
    OutIdx,
    /// The GPR base address.
    GprAddr,
}

/// A per-iteration operand modification inside a [`DynLoop`] body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DynModi {
    /// Index of the instruction within the loop body this modifier targets.
    pub target: u16,
    /// Field to adjust.
    pub field: OperandField,
    /// Signed stride added `iteration` times.
    pub stride: i64,
    /// Optional wrap modulus (e.g. column wraps at row width); `0` = none.
    pub modulo: u32,
}

impl DynModi {
    /// Creates a modifier without wrap-around.
    pub fn new(target: u16, field: OperandField, stride: i64) -> Self {
        DynModi {
            target,
            field,
            stride,
            modulo: 0,
        }
    }

    /// Creates a modifier that wraps at `modulo`.
    pub fn with_modulo(target: u16, field: OperandField, stride: i64, modulo: u32) -> Self {
        DynModi {
            target,
            field,
            stride,
            modulo,
        }
    }

    fn apply(&self, inst: &mut PimInstruction, iteration: u64) {
        let delta = self.stride * iteration as i64;
        let adjust_u16 = |base: u16| -> u16 {
            let v = i64::from(base) + delta;
            let v = if self.modulo > 0 {
                v.rem_euclid(i64::from(self.modulo))
            } else {
                v
            };
            u16::try_from(v.max(0)).unwrap_or(u16::MAX)
        };
        match self.field {
            OperandField::Row => {
                let v = i64::from(inst.row) + delta;
                let v = if self.modulo > 0 {
                    v.rem_euclid(i64::from(self.modulo))
                } else {
                    v
                };
                inst.row = u32::try_from(v.max(0)).unwrap_or(u32::MAX);
            }
            OperandField::Col => inst.col = adjust_u16(inst.col),
            OperandField::GBufIdx => inst.gbuf_idx = adjust_u16(inst.gbuf_idx),
            OperandField::OutIdx => inst.out_idx = adjust_u16(inst.out_idx),
            OperandField::GprAddr => {
                let v = i64::from(inst.gpr_addr) + delta;
                inst.gpr_addr = u32::try_from(v.max(0)).unwrap_or(u32::MAX);
            }
        }
    }
}

/// A loop whose bound is resolved at decode time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynLoop {
    /// Repetition count source.
    pub bound: LoopBound,
    /// Loop body (may nest further loops).
    pub body: Vec<DpaInstruction>,
    /// Per-iteration operand modifiers applied to body instructions.
    pub modifiers: Vec<DynModi>,
}

/// One element of a DPA-encoded instruction stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DpaInstruction {
    /// An ordinary instruction, emitted verbatim.
    Plain(PimInstruction),
    /// A dynamic loop.
    Loop(DynLoop),
}

/// A compact, runtime-expandable instruction program (paper Fig. 10(b)).
///
/// # Example
///
/// ```
/// use pim_isa::{ChannelMask, PimInstruction};
/// use pim_isa::dpa::{DpaProgram, DynLoop, DynModi, DpaInstruction, LoopBound, OperandField};
///
/// // One MAC per 256-token block, advancing the (virtual) row each time.
/// let mac = PimInstruction::mac(ChannelMask::first(16), 1, 0, 0, 0, 0);
/// let mut program = DpaProgram::new();
/// program.push(DpaInstruction::Loop(DynLoop {
///     bound: LoopBound::TokensDiv { divisor: 256 },
///     body: vec![DpaInstruction::Plain(mac)],
///     modifiers: vec![DynModi::new(0, OperandField::Row, 1)],
/// }));
/// let expanded = program.expand(1024);
/// assert_eq!(expanded.len(), 4);
/// assert_eq!(expanded[3].row, 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DpaProgram {
    instructions: Vec<DpaInstruction>,
}

impl DpaProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an element.
    pub fn push(&mut self, inst: DpaInstruction) {
        self.instructions.push(inst);
    }

    /// The top-level elements.
    pub fn instructions(&self) -> &[DpaInstruction] {
        &self.instructions
    }

    /// Expands the program for the current token length, producing the
    /// concrete instruction sequence a conventional PIM would have needed
    /// to store in full.
    pub fn expand(&self, t_cur: u64) -> Vec<PimInstruction> {
        let mut out = Vec::new();
        expand_into(&self.instructions, t_cur, &mut out);
        out
    }

    /// Number of *stored* elements (loops count once), before expansion.
    pub fn stored_len(&self) -> usize {
        fn count(insts: &[DpaInstruction]) -> usize {
            insts
                .iter()
                .map(|i| match i {
                    DpaInstruction::Plain(_) => 1,
                    DpaInstruction::Loop(l) => 1 + count(&l.body) + l.modifiers.len(),
                })
                .sum()
        }
        count(&self.instructions)
    }
}

impl FromIterator<DpaInstruction> for DpaProgram {
    fn from_iter<I: IntoIterator<Item = DpaInstruction>>(iter: I) -> Self {
        DpaProgram {
            instructions: iter.into_iter().collect(),
        }
    }
}

fn expand_into(insts: &[DpaInstruction], t_cur: u64, out: &mut Vec<PimInstruction>) {
    for inst in insts {
        match inst {
            DpaInstruction::Plain(p) => out.push(*p),
            DpaInstruction::Loop(l) => {
                let n = l.bound.resolve(t_cur);
                for iter in 0..n {
                    let start = out.len();
                    expand_into(&l.body, t_cur, out);
                    for m in &l.modifiers {
                        let idx = start + m.target as usize;
                        if let Some(slot) = out.get_mut(idx) {
                            m.apply(slot, iter);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ChannelMask;

    fn mac() -> PimInstruction {
        PimInstruction::mac(ChannelMask::first(1), 1, 0, 0, 0, 0)
    }

    #[test]
    fn fixed_bound_resolves_constant() {
        assert_eq!(LoopBound::Fixed(7).resolve(123), 7);
    }

    #[test]
    fn tokens_div_rounds_up() {
        let b = LoopBound::TokensDiv { divisor: 256 };
        assert_eq!(b.resolve(1), 1);
        assert_eq!(b.resolve(256), 1);
        assert_eq!(b.resolve(257), 2);
        assert_eq!(b.resolve(0), 0);
    }

    #[test]
    fn modi_advances_row() {
        let mut program = DpaProgram::new();
        program.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::Fixed(3),
            body: vec![DpaInstruction::Plain(mac())],
            modifiers: vec![DynModi::new(0, OperandField::Row, 2)],
        }));
        let rows: Vec<u32> = program.expand(0).iter().map(|i| i.row).collect();
        assert_eq!(rows, vec![0, 2, 4]);
    }

    #[test]
    fn modi_with_modulo_wraps() {
        let mut program = DpaProgram::new();
        program.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::Fixed(5),
            body: vec![DpaInstruction::Plain(mac())],
            modifiers: vec![DynModi::with_modulo(0, OperandField::Col, 1, 3)],
        }));
        let cols: Vec<u16> = program.expand(0).iter().map(|i| i.col).collect();
        assert_eq!(cols, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn nested_loops_expand_product() {
        let inner = DynLoop {
            bound: LoopBound::Fixed(2),
            body: vec![DpaInstruction::Plain(mac())],
            modifiers: vec![DynModi::new(0, OperandField::Col, 1)],
        };
        let outer = DynLoop {
            bound: LoopBound::TokensDiv { divisor: 512 },
            body: vec![DpaInstruction::Loop(inner)],
            modifiers: vec![],
        };
        let program: DpaProgram = vec![DpaInstruction::Loop(outer)].into_iter().collect();
        assert_eq!(program.expand(1024).len(), 4);
    }

    #[test]
    fn stored_len_is_context_independent() {
        let mut program = DpaProgram::new();
        program.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::TokensDiv { divisor: 16 },
            body: vec![DpaInstruction::Plain(mac())],
            modifiers: vec![DynModi::new(0, OperandField::Row, 1)],
        }));
        let stored = program.stored_len();
        assert_eq!(stored, 3);
        assert!(program.expand(1 << 20).len() > program.expand(16).len());
        assert_eq!(program.stored_len(), stored);
    }

    #[test]
    fn expansion_grows_with_tokens() {
        let mut program = DpaProgram::new();
        program.push(DpaInstruction::Loop(DynLoop {
            bound: LoopBound::TokensDiv { divisor: 256 },
            body: vec![DpaInstruction::Plain(mac())],
            modifiers: vec![],
        }));
        assert_eq!(program.expand(4096).len(), 16);
        assert_eq!(program.expand(8192).len(), 32);
    }
}
