//! Standalone per-replica serving state machine.
//!
//! [`ReplicaSim`] is the per-replica core extracted from the original
//! `Engine::run` loops: it owns one replica's pending queue, running
//! batch, memory admitter and virtual clock, and advances them over
//! admission / chunked-decode / completion events. The cluster layer
//! ([`crate::cluster`]) drives many `ReplicaSim`s — routing each arrival
//! to one of them, advancing them up to the routing frontier, and
//! draining them to completion (on scoped threads when asked).
//!
//! # Determinism and bit-exactness
//!
//! Two properties the cluster depends on are enforced here:
//!
//! * **Frontier-safe chunking.** A decode chunk may be cut short by the
//!   next *admissible* pending arrival, and arrivals only become visible
//!   once the router dispatches them. [`ReplicaSim::advance_to`]
//!   therefore never executes a chunk that would end past the supplied
//!   limit (the cluster's routing frontier): any arrival that could cut
//!   a chunk ending at or before the frontier has already been routed,
//!   so every executed chunk is identical to the one a sequential run
//!   with full queue knowledge would execute.
//! * **Replayable accounting.** Floating-point accumulation is not
//!   associative, so replicas do not sum into a shared accumulator
//!   directly (the merge order would then depend on thread scheduling).
//!   Instead each replica records a [`SimEvent`] log; the cluster
//!   replays all logs into one accumulator in replica-index order,
//!   reproducing the exact operation sequence of the original
//!   single-threaded loops.

use crate::metrics::{ReplicaBreakdown, RequestTiming};
use crate::policy::{self, ContinuousAdmitter, PrefillConfig, SchedulingPolicy};
use crate::serve::Evaluator;
use crate::stage::{IterationBreakdown, StageModel};
use std::collections::VecDeque;
use workload::Request;

/// The priced-but-not-yet-executed step of a continuous replica, cached
/// across routing-frontier visits. Load-aware routers advance every
/// replica to each arrival's frontier; a step ending past the frontier
/// is deferred and revisited, so without this cache the pending step's
/// iteration (and prefill chunk) would be re-priced at every frontier
/// visit — measured at 2–3× the total simulation cost under
/// `LeastLoaded`/JSQ routing. The cache is keyed by
/// [`ReplicaSim::batch_version`], which bumps on any admission, executed
/// step, or completion, so a hit is always priced for the current batch
/// membership and token counts.
#[derive(Debug, Clone, Copy)]
enum PlannedStep {
    /// A pure decode chunk: the iteration priced at the midpoint of the
    /// stride-bounded tentative chunk (`c0` steps).
    Decode { it: IterationBreakdown, c0: u64 },
    /// A mixed prefill step: one prompt chunk plus (if anyone is
    /// decoding) one decode iteration.
    Mixed {
        pre: IterationBreakdown,
        pchunk: u64,
        it: Option<IterationBreakdown>,
        batch_len: usize,
    },
}

/// One accounting event recorded by a replica simulation. Replayed in
/// replica-index order into the run-wide accumulator, reproducing the
/// exact float-operation sequence of the original sequential loops
/// regardless of how many threads simulated the replicas.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SimEvent {
    /// An admission event (`waves += 1`); the wave policy also adds the
    /// admitted count to the mean-batch numerator.
    Admit {
        /// Admitted-batch contribution to the per-wave mean (0 under the
        /// continuous policy, whose mean batch is step-weighted).
        batch: f64,
    },
    /// One executed decode chunk.
    Chunk {
        /// The iteration breakdown priced for the chunk's fixed batch
        /// (at the chunk's midpoint step — per-step exact under the
        /// affine kernel model).
        it: IterationBreakdown,
        /// Requests advanced by the chunk.
        batch_len: usize,
        /// Decode steps in the chunk.
        chunk: u64,
        /// Wall-clock seconds of the chunk.
        secs: f64,
    },
    /// One executed prefill chunk (`pre` holds the chunk's totals).
    Prefill {
        /// The prefill breakdown for the whole chunk.
        pre: IterationBreakdown,
        /// Prompt tokens processed.
        chunk: u64,
    },
    /// A finished request's KV footprint (for capacity utilization).
    Retire {
        /// The request's context + decode length at completion.
        final_len: u64,
    },
}

/// Instantaneous load of one replica, as seen by a [`crate::cluster::Router`]
/// at a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLoad {
    /// Replica index within the cluster.
    pub replica: usize,
    /// Requests routed to the replica and not yet finished (queued +
    /// running).
    pub in_flight: usize,
    /// KV bytes the replica is committed to under the active memory
    /// policy: reservations held by the running batch plus the
    /// reservations its queued requests will take on admission.
    pub reserved_kv: u64,
    /// Prompt tokens routed to the replica and not yet prefilled —
    /// queued prompts plus the unprocessed remainder of running
    /// prefills (always 0 when prefill is not modeled). Lets routers
    /// weigh prompt-processing backlog, which in-flight counts and KV
    /// reservations miss.
    pub pending_prefill: u64,
}

/// One request resident in a replica's running batch.
#[derive(Debug, Clone, Copy)]
struct Active {
    req: Request,
    /// Tokens generated so far.
    done: u64,
    /// Prompt tokens processed so far (initialized to `context_len`
    /// when prefill is not modeled, so the request decodes immediately).
    prefilled: u64,
    admitted: f64,
    /// When the prompt finished processing (None while prefilling, or
    /// forever when prefill is not modeled).
    prefill_end: Option<f64>,
    first_token: Option<f64>,
}

impl Active {
    /// Whether the prompt is resident and decoding may proceed.
    fn prompt_ready(&self) -> bool {
        self.prefilled >= self.req.context_len
    }
}

/// Per-replica serving state machine (see the module docs).
pub(crate) struct ReplicaSim<'a> {
    eval: &'a Evaluator,
    stage: StageModel<'a>,
    policy: SchedulingPolicy,
    prefill: PrefillConfig,
    t_max: u64,
    /// Routed, not-yet-admitted requests in arrival order.
    pending: VecDeque<Request>,
    /// Sum of the pending requests' would-be reservations.
    pending_reserved: u64,
    /// Prompt tokens routed but not yet prefilled (0 with prefill off).
    prefill_backlog: u64,
    admitter: ContinuousAdmitter,
    running: Vec<Active>,
    /// Bumped on every admission, executed step, and completion; keys
    /// `cached_step` (see [`PlannedStep`]).
    batch_version: u64,
    /// Deferred-step pricing cache, valid while `batch_version` matches.
    cached_step: Option<(u64, PlannedStep)>,
    /// Virtual clock.
    t: f64,
    /// Seconds spent decoding or prefilling (excludes idle gaps).
    busy: f64,
    routed: u64,
    served: u64,
    tokens: u64,
    peak_reserved: u64,
    pub(crate) events: Vec<SimEvent>,
    pub(crate) timings: Vec<RequestTiming>,
}

impl<'a> ReplicaSim<'a> {
    /// Creates an idle replica for a run compiled for worst case `t_max`.
    pub(crate) fn new(eval: &'a Evaluator, policy: SchedulingPolicy, t_max: u64) -> Self {
        ReplicaSim {
            eval,
            stage: eval.stage_model(),
            policy,
            prefill: eval.prefill_config(),
            t_max,
            pending: VecDeque::new(),
            pending_reserved: 0,
            prefill_backlog: 0,
            admitter: ContinuousAdmitter::new(eval, t_max),
            running: Vec::new(),
            batch_version: 0,
            cached_step: None,
            t: 0.0,
            busy: 0.0,
            routed: 0,
            served: 0,
            tokens: 0,
            peak_reserved: 0,
            events: Vec::new(),
            timings: Vec::new(),
        }
    }

    /// Hands a routed request to this replica. Requests must be enqueued
    /// in nondecreasing arrival order and never earlier than the
    /// replica's clock (the cluster routes arrivals in global order and
    /// only advances replicas up to the routing frontier).
    pub(crate) fn enqueue(&mut self, r: Request) {
        self.pending_reserved = self
            .pending_reserved
            .saturating_add(self.eval.kv_reservation(r.final_len(), self.t_max));
        if self.prefill.enabled {
            self.prefill_backlog = self.prefill_backlog.saturating_add(r.context_len);
        }
        self.pending.push_back(r);
        self.routed += 1;
    }

    /// The load snapshot routers decide on.
    pub(crate) fn load(&self, replica: usize) -> ReplicaLoad {
        ReplicaLoad {
            replica,
            in_flight: self.pending.len() + self.running.len(),
            reserved_kv: self.admitter.used().saturating_add(self.pending_reserved),
            pending_prefill: self.prefill_backlog,
        }
    }

    /// Processes every event up to `limit`, deferring any decode chunk
    /// that would end past it. A no-op under the wave policy, which
    /// ignores arrival times (all its work happens in [`Self::finish`]).
    pub(crate) fn advance_to(&mut self, limit: f64) {
        if self.policy == SchedulingPolicy::Continuous {
            self.advance_continuous(limit);
        }
    }

    /// Runs the replica to completion (no more arrivals will be routed).
    pub(crate) fn finish(&mut self) {
        match self.policy {
            SchedulingPolicy::Wave => self.run_wave(),
            SchedulingPolicy::Continuous => self.advance_continuous(f64::INFINITY),
        }
    }

    /// This replica's virtual end time.
    pub(crate) fn end_time(&self) -> f64 {
        self.t
    }

    /// Seconds spent decoding or prefilling (excludes idle gaps).
    pub(crate) fn busy_seconds(&self) -> f64 {
        self.busy
    }

    /// The per-replica totals exposed in the serving report.
    pub(crate) fn breakdown(&self) -> ReplicaBreakdown {
        ReplicaBreakdown {
            routed: self.routed,
            served: self.served,
            tokens: self.tokens,
            busy_seconds: self.busy,
            seconds: self.t,
            peak_reserved_kv: self.peak_reserved,
        }
    }

    /// The original closed-world wave loop over this replica's routed
    /// queue: each wave decodes to completion before the next is
    /// admitted. Arrival times are ignored (every request is treated as
    /// queued at time 0), so TTFT under this policy measures closed-world
    /// queueing. Extracted verbatim from `Engine::run_wave_replica`.
    fn run_wave(&mut self) {
        let eval = self.eval;
        let stride = eval.stride();
        let queue: Vec<Request> = self.pending.drain(..).collect();
        self.pending_reserved = 0;
        let mut idx = 0usize;
        while idx < queue.len() {
            let admitted = policy::wave_plan(eval, &queue[idx..], self.t_max);
            let wave = &queue[idx..idx + admitted];
            idx += admitted;
            self.events.push(SimEvent::Admit {
                batch: admitted as f64,
            });
            let wave_reserved: u64 = wave
                .iter()
                .map(|r| eval.kv_reservation(r.final_len(), self.t_max))
                .sum();
            self.peak_reserved = self.peak_reserved.max(wave_reserved);

            let wave_start = self.t;
            // Whole-batch prefill: the wave decodes in lockstep, so no
            // request sees its first token until every admitted prompt
            // is resident (FCFS, chunked for pricing fidelity with the
            // continuous path). No-op when prefill is not modeled.
            let mut prefill_end: Vec<f64> = vec![wave_start; admitted];
            if self.prefill.enabled {
                for (i, r) in wave.iter().enumerate() {
                    let mut done = 0u64;
                    while done < r.context_len {
                        let c = self.prefill.chunk_tokens.min(r.context_len - done);
                        let pre = self.stage.prefill_chunk(r.id, done, c);
                        self.events.push(SimEvent::Prefill { pre, chunk: c });
                        self.t += pre.seconds;
                        self.busy += pre.seconds;
                        self.prefill_backlog = self.prefill_backlog.saturating_sub(c);
                        done += c;
                    }
                    prefill_end[i] = self.t;
                }
            }

            let decode_start = self.t;
            let mut first_token: Vec<Option<f64>> = vec![None; admitted];
            let mut finish: Vec<f64> = vec![decode_start; admitted];

            // Decode the wave; all requests share the same decode budget,
            // growing token counts as they generate.
            let decode_len = wave.iter().map(|r| r.decode_len).max().unwrap_or(0);
            let mut step = 0u64;
            while step < decode_len {
                // Cut the chunk at the earliest completion so batch
                // composition is constant within it.
                let Some(min_remaining) = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| r.decode_len - step)
                    .min()
                else {
                    break;
                };
                let chunk = stride.min(decode_len - step).min(min_remaining);
                // Exact per-step pricing: the affine kernel model makes
                // Σₛ it(T+s) equal chunk·it(T + (chunk-1)/2), so the
                // chunk is priced at its midpoint step — the same rule
                // as the continuous policy, eliminating the historical
                // stride-granularity cost skew between them.
                let batch: Vec<(u64, u64)> = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| (r.id, r.context_len + step + (chunk - 1) / 2))
                    .collect();
                let it = self.stage.iteration(&batch);
                let secs = it.seconds * chunk as f64;
                let chunk_start = self.t;
                self.t += secs;
                self.busy += secs;
                self.tokens += batch.len() as u64 * chunk;
                self.events.push(SimEvent::Chunk {
                    it,
                    batch_len: batch.len(),
                    chunk,
                    secs,
                });
                for (i, r) in wave.iter().enumerate() {
                    if r.decode_len > step {
                        if first_token[i].is_none() {
                            first_token[i] = Some(chunk_start + it.seconds);
                        }
                        if r.decode_len <= step + chunk {
                            finish[i] = chunk_start + it.seconds * (r.decode_len - step) as f64;
                        }
                    }
                }
                step += chunk;
            }

            for (i, r) in wave.iter().enumerate() {
                self.events.push(SimEvent::Retire {
                    final_len: r.final_len(),
                });
                self.served += 1;
                // A request that never emitted a token (zero decode
                // budget) produces no timing sample: the historical
                // `unwrap_or(wave_start)` fallback silently clamped its
                // TTFT to the wave start, polluting the percentiles
                // with a token that never existed.
                let Some(first) = first_token[i] else {
                    continue;
                };
                self.timings.push(RequestTiming {
                    id: r.id,
                    // Closed world: the policy treats every request as
                    // queued at time 0, so its latencies are measured
                    // from the epoch — a real (later) arrival time would
                    // make first_token precede arrival and turn TTFT
                    // negative.
                    arrival: 0.0,
                    admitted: wave_start,
                    prefill_end: prefill_end[i],
                    first_token: first,
                    finished: finish[i],
                    decode_len: r.decode_len,
                });
            }
        }
    }

    /// Continuous batching up to `limit`: pending requests join the
    /// running batch the moment their arrival has passed and the memory
    /// policy has room; completions free reservations immediately. With
    /// prefill enabled, admitted requests first process their prompt in
    /// chunks interleaved with decode steps of the running batch
    /// ([`Self::mixed_step`]), so decodes are not starved behind long
    /// prompts. The clock jumps over idle gaps (counted in `seconds` but
    /// not `busy_seconds`). The step decision is recomputed at execution
    /// time so deferral at the routing frontier is transparent; its
    /// *pricing* is cached across frontier visits (see [`PlannedStep`]).
    fn advance_continuous(&mut self, limit: f64) {
        let eval = self.eval;

        loop {
            // Idle: jump the clock to the next arrival.
            if self.running.is_empty() {
                match self.pending.front() {
                    None => return,
                    Some(r) if r.arrival_secs() > limit => return,
                    Some(r) if r.arrival_secs() > self.t => self.t = r.arrival_secs(),
                    Some(_) => {}
                }
            }

            // Admission event: FCFS sweep of everything that has arrived
            // and fits. No reordering — head-of-line blocking under
            // worst-case reservations is part of what's being measured.
            let mut admitted_now = 0usize;
            while let Some(&r) = self.pending.front() {
                if r.arrival_secs() > self.t
                    || !self.admitter.fits(eval, &r, self.running.len(), self.t_max)
                {
                    break;
                }
                self.pending.pop_front();
                self.pending_reserved = self
                    .pending_reserved
                    .saturating_sub(eval.kv_reservation(r.final_len(), self.t_max));
                self.admitter.reserve(eval, &r, self.t_max);
                self.peak_reserved = self.peak_reserved.max(self.admitter.used());
                let must_prefill = self.prefill.enabled && r.context_len > 0;
                if r.decode_len == 0 && !must_prefill {
                    // Nothing to generate or prefill: completes at
                    // admission — with no emitted token, so no timing
                    // sample (see the metrics module docs).
                    self.admitter.release(eval, &r, self.t_max);
                    self.events.push(SimEvent::Retire {
                        final_len: r.final_len(),
                    });
                    self.served += 1;
                    continue;
                }
                self.running.push(Active {
                    req: r,
                    done: 0,
                    prefilled: if must_prefill { 0 } else { r.context_len },
                    admitted: self.t,
                    prefill_end: if must_prefill { None } else { Some(self.t) },
                    first_token: None,
                });
                admitted_now += 1;
            }
            // Continuous mean_batch is step-weighted (tokens / steps),
            // so admission events only bump the event counter.
            if admitted_now > 0 {
                self.events.push(SimEvent::Admit { batch: 0.0 });
                self.batch_version += 1;
            }
            if self.running.is_empty() {
                continue; // only zero-work requests were admitted
            }

            // Step event: a mixed prefill step while any prompt is
            // unprocessed, else a pure decode chunk. Either returns
            // false when the step would end past the routing frontier —
            // an arrival not yet routed could still change the batch.
            let executed = if self.running.iter().any(|a| !a.prompt_ready()) {
                self.mixed_step(limit)
            } else {
                self.decode_chunk(limit)
            };
            if !executed {
                return;
            }

            // Completion events: retire finished requests, freeing memory.
            let mut retired = false;
            let mut i = 0usize;
            while i < self.running.len() {
                let done = {
                    let a = &self.running[i];
                    a.prompt_ready() && a.done >= a.req.decode_len
                };
                if done {
                    let a = self.running.swap_remove(i);
                    retired = true;
                    self.admitter.release(eval, &a.req, self.t_max);
                    self.events.push(SimEvent::Retire {
                        final_len: a.req.final_len(),
                    });
                    self.served += 1;
                    // Zero-emission requests (decode budget 0, prefill
                    // only) contribute no timing sample.
                    if let Some(first) = a.first_token {
                        self.timings.push(RequestTiming {
                            id: a.req.id,
                            arrival: a.req.arrival_secs(),
                            admitted: a.admitted,
                            prefill_end: a.prefill_end.unwrap_or(a.admitted),
                            first_token: first,
                            finished: self.t,
                            decode_len: a.req.decode_len,
                        });
                    }
                } else {
                    i += 1;
                }
            }
            if retired {
                self.batch_version += 1;
            }
        }
    }

    /// Executes one mixed prefill step: the FCFS-oldest prefilling
    /// request advances one prompt chunk while the decoding batch (if
    /// any) advances one token. The prompt chunk runs first within the
    /// step, so a prompt completed mid-step starts decoding at the
    /// *next* step. Returns false if the step would end past `limit`
    /// (deferred; pricing stays cached for the revisit).
    fn mixed_step(&mut self, limit: f64) -> bool {
        let pi = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.prompt_ready())
            .min_by_key(|(_, a)| (a.req.arrival_us, a.req.id))
            .map(|(i, _)| i)
            .expect("a prefilling request exists");
        let (pre, pchunk, it, batch_len) = match self.cached_step {
            Some((
                v,
                PlannedStep::Mixed {
                    pre,
                    pchunk,
                    it,
                    batch_len,
                },
            )) if v == self.batch_version => (pre, pchunk, it, batch_len),
            _ => {
                let a = &self.running[pi];
                let pchunk = self
                    .prefill
                    .chunk_tokens
                    .min(a.req.context_len - a.prefilled);
                let pre = self.stage.prefill_chunk(a.req.id, a.prefilled, pchunk);
                let batch: Vec<(u64, u64)> = self
                    .running
                    .iter()
                    .filter(|a| a.prompt_ready() && a.done < a.req.decode_len)
                    .map(|a| (a.req.id, a.req.context_len + a.done))
                    .collect();
                let it = if batch.is_empty() {
                    None
                } else {
                    Some(self.stage.iteration(&batch))
                };
                let batch_len = batch.len();
                self.cached_step = Some((
                    self.batch_version,
                    PlannedStep::Mixed {
                        pre,
                        pchunk,
                        it,
                        batch_len,
                    },
                ));
                (pre, pchunk, it, batch_len)
            }
        };
        let secs = pre.seconds + it.map_or(0.0, |it| it.seconds);
        if self.t + secs > limit {
            return false;
        }
        let step_start = self.t;
        self.events.push(SimEvent::Prefill { pre, chunk: pchunk });
        self.prefill_backlog = self.prefill_backlog.saturating_sub(pchunk);
        if let Some(it) = it {
            self.events.push(SimEvent::Chunk {
                it,
                batch_len,
                chunk: 1,
                secs: it.seconds,
            });
            self.tokens += batch_len as u64;
            for a in &mut self.running {
                if a.prompt_ready() && a.done < a.req.decode_len {
                    if a.first_token.is_none() {
                        a.first_token = Some(step_start + secs);
                    }
                    a.done += 1;
                }
            }
        }
        let a = &mut self.running[pi];
        a.prefilled += pchunk;
        if a.prompt_ready() {
            a.prefill_end = Some(step_start + pre.seconds);
        }
        self.t += secs;
        self.busy += secs;
        self.batch_version += 1;
        true
    }

    /// Executes one pure decode chunk with a constant batch, cut at the
    /// earliest completion and at the next admissible arrival, and
    /// priced at its midpoint step — per-step exact under the affine
    /// kernel model, the same rule as the wave policy. Returns false if
    /// the chunk would end past `limit` (deferred; the stride-bounded
    /// pricing stays cached for the revisit).
    fn decode_chunk(&mut self, limit: f64) -> bool {
        let eval = self.eval;
        let stride = eval.stride();
        let min_remaining = self
            .running
            .iter()
            .map(|a| a.req.decode_len - a.done)
            .min()
            .expect("nonempty running batch");
        let c0 = stride.min(min_remaining);
        let it0 = match self.cached_step {
            Some((v, PlannedStep::Decode { it, c0: c })) if v == self.batch_version && c == c0 => {
                it
            }
            _ => {
                let batch: Vec<(u64, u64)> = self
                    .running
                    .iter()
                    .map(|a| (a.req.id, a.req.context_len + a.done + (c0 - 1) / 2))
                    .collect();
                let it = self.stage.iteration(&batch);
                self.cached_step = Some((self.batch_version, PlannedStep::Decode { it, c0 }));
                it
            }
        };
        let per_step = it0.seconds;
        let mut chunk = c0;
        // Cut the chunk at the next arrival that could actually join,
        // so admission is not delayed by up to a whole stride.
        if per_step > 0.0 {
            if let Some(front) = self.pending.front() {
                let arr = front.arrival_secs();
                if arr > self.t
                    && self
                        .admitter
                        .fits(eval, front, self.running.len(), self.t_max)
                {
                    let steps_until = ((arr - self.t) / per_step).ceil().max(1.0);
                    if (steps_until as u64) < chunk {
                        chunk = steps_until as u64;
                    }
                }
            }
        }
        let it = if chunk == c0 {
            it0
        } else {
            // An arrival cut shortened the chunk: re-price at the
            // shorter chunk's own midpoint.
            let batch: Vec<(u64, u64)> = self
                .running
                .iter()
                .map(|a| (a.req.id, a.req.context_len + a.done + (chunk - 1) / 2))
                .collect();
            self.stage.iteration(&batch)
        };
        let secs = it.seconds * chunk as f64;
        // Defer chunks ending past the routing frontier: an arrival
        // not yet routed to this replica could still cut them.
        if self.t + secs > limit {
            return false;
        }
        let batch_len = self.running.len();
        self.events.push(SimEvent::Chunk {
            it,
            batch_len,
            chunk,
            secs,
        });
        self.tokens += batch_len as u64 * chunk;
        for a in &mut self.running {
            if a.first_token.is_none() {
                a.first_token = Some(self.t + it.seconds);
            }
            a.done += chunk;
        }
        self.t += secs;
        self.busy += secs;
        self.batch_version += 1;
        true
    }
}
