//! Standalone per-replica serving state machine.
//!
//! `ReplicaSim` is the per-replica core extracted from the original
//! `Engine::run` loops: it owns one replica's pending queue, running
//! batch, memory admitter and virtual clock, and advances them over
//! admission / chunked-decode / completion events. The cluster layer
//! ([`crate::cluster`]) drives many `ReplicaSim`s — routing each arrival
//! to one of them, advancing them up to the routing frontier, and
//! draining them to completion (on scoped threads when asked).
//!
//! # Admission order and preemption
//!
//! The continuous policy admits in **priority order**
//! ([`workload::Request::priority`], FCFS within a class): at every
//! admission instant the highest-priority arrived pending request is
//! considered first, and the sweep stops at the first candidate the
//! memory policy cannot place (head-of-line blocking *within* the
//! priority order is preserved — it is part of what is being measured).
//! When a [`crate::policy::PreemptionPolicy`] other than `None` is
//! active, a blocked candidate may instead **evict** strictly-lower-
//! priority running requests: victims (lowest priority first, most
//! recently admitted first) release their KV reservation and re-enter
//! the pending queue in arrival order, to be re-admitted later —
//! re-prefilling their prompt from scratch (`EvictRestart` additionally
//! regenerates their tokens; `EvictPause` re-prefills prompt *plus*
//! kept tokens as an extended prompt). Because victims must have
//! *strictly* lower priority, a trace with uniform priorities can never
//! evict, and every preemption policy is then bit-exact with `None`.
//!
//! # Determinism and bit-exactness
//!
//! Two properties the cluster depends on are enforced here:
//!
//! * **Frontier-safe chunking.** A decode chunk may be cut short by the
//!   next *admissible* pending arrival, and arrivals only become visible
//!   once the router dispatches them. `ReplicaSim::advance_to`
//!   therefore never executes a chunk that would end past the supplied
//!   limit (the cluster's routing frontier): any arrival that could cut
//!   a chunk ending at or before the frontier has already been routed,
//!   so every executed chunk is identical to the one a sequential run
//!   with full queue knowledge would execute.
//! * **Replayable accounting.** Floating-point accumulation is not
//!   associative, so replicas do not sum into a shared accumulator
//!   directly (the merge order would then depend on thread scheduling).
//!   Instead each replica records a `SimEvent` log; the cluster
//!   replays all logs into one accumulator in replica-index order,
//!   reproducing the exact operation sequence of the original
//!   single-threaded loops. Evictions are ordinary events in this log:
//!   they happen inside one replica's admission sweep at a fixed
//!   virtual-time instant, so thread count still cannot change results.

use crate::metrics::{ReplicaBreakdown, RequestTiming};
use crate::policy::{
    self, ContinuousAdmitter, PoolRole, PreemptionPolicy, PrefillConfig, SchedulingPolicy,
    SheddingPolicy, VictimOrder,
};
use crate::serve::{Evaluator, KvTransferModel, TtftPredictor};
use crate::stage::{IterationBreakdown, StageModel};
use pim_mem::{PagePool, RequestId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, VecDeque};
use workload::Request;

/// The priced-but-not-yet-executed step of a continuous replica, cached
/// across routing-frontier visits. Load-aware routers advance every
/// replica to each arrival's frontier; a step ending past the frontier
/// is deferred and revisited, so without this cache the pending step's
/// iteration (and prefill chunk) would be re-priced at every frontier
/// visit — measured at 2–3× the total simulation cost under
/// `LeastLoaded`/JSQ routing. The cache is keyed by
/// [`ReplicaSim::batch_version`], which bumps on any admission, executed
/// step, eviction, or completion, so a hit is always priced for the
/// current batch membership and token counts.
#[derive(Debug, Clone, Copy)]
enum PlannedStep {
    /// A pure decode chunk: the iteration priced at the midpoint of the
    /// stride-bounded tentative chunk (`c0` steps).
    Decode { it: IterationBreakdown, c0: u64 },
    /// A mixed prefill step: one prompt chunk plus (if anyone is
    /// decoding) one decode iteration.
    Mixed {
        pre: IterationBreakdown,
        pchunk: u64,
        it: Option<IterationBreakdown>,
        batch_len: usize,
    },
}

/// One accounting event recorded by a replica simulation. Replayed in
/// replica-index order into the run-wide accumulator, reproducing the
/// exact float-operation sequence of the original sequential loops
/// regardless of how many threads simulated the replicas.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SimEvent {
    /// An admission event (`waves += 1`); the wave policy also adds the
    /// admitted count to the mean-batch numerator.
    Admit {
        /// Admitted-batch contribution to the per-wave mean (0 under the
        /// continuous policy, whose mean batch is step-weighted).
        batch: f64,
    },
    /// One executed decode chunk.
    Chunk {
        /// The iteration breakdown priced for the chunk's fixed batch
        /// (at the chunk's midpoint step — per-step exact under the
        /// affine kernel model).
        it: IterationBreakdown,
        /// Requests advanced by the chunk.
        batch_len: usize,
        /// Decode steps in the chunk.
        chunk: u64,
        /// Wall-clock seconds of the chunk.
        secs: f64,
    },
    /// One executed prefill chunk (`pre` holds the chunk's totals).
    Prefill {
        /// The prefill breakdown for the whole chunk.
        pre: IterationBreakdown,
        /// Prompt tokens processed.
        chunk: u64,
        /// The share of the chunk's seconds spent *re*-processing tokens
        /// a previous eviction discarded (0 on first-pass prefill).
        restart: f64,
    },
    /// A request evicted under memory pressure (no float accounting —
    /// the re-work itself is billed by the later `Prefill`/`Chunk`
    /// events that redo it).
    Evict {
        /// Already-computed tokens whose KV was dropped and must be
        /// prefilled again (prompt tokens processed so far; under
        /// `EvictPause` also the generated tokens that will return as
        /// an extended prompt).
        reprefill: u64,
        /// Generated tokens discarded outright and decoded again from
        /// scratch (`EvictRestart` only).
        redecode: u64,
    },
    /// A finished request's KV footprint (for capacity utilization).
    Retire {
        /// The request's context + decode length at completion.
        final_len: u64,
    },
    /// A request dropped by deadline-aware admission control: its
    /// predicted TTFT lower bound already exceeded its tenant SLO when
    /// it reached the head of its lane (emitted only when a
    /// [`crate::policy::SheddingPolicy`] is armed, so historical event
    /// logs are unchanged). No float accounting — the request consumed
    /// no service and produces no timing sample.
    Shed,
    /// A paged-KV admission outcome worth accounting (emitted only when
    /// prefix caching is on, so historical event logs are unchanged).
    PrefixAdmit {
        /// Prompt tokens whose pages were already resident — their
        /// prefill is skipped entirely.
        hit_tokens: u64,
        /// Prompt tokens whose pages were computed by an earlier
        /// sequence, reclaimed under pressure, and must now be prefilled
        /// again — page-granular wasted prefill work.
        recompute_tokens: u64,
    },
    /// Cached (zero-refcount) KV pages reclaimed page-by-page to make
    /// room for an admission (prefix caching only).
    PageReclaim {
        /// Pages reclaimed from the prefix cache.
        pages: u64,
    },
    /// A prefill-complete request handed off to a decode pool, with its
    /// prompt KV shipped across the interconnect (emitted only by
    /// `Prefill`-role replicas, so colocated event logs are unchanged).
    /// Transfer completion is realized as the request's rewritten
    /// arrival time in the decode pool's queue — an ordinary arrival
    /// event there — so the threads=N replay merge stays byte-identical.
    Handoff {
        /// Prompt KV bytes shipped.
        bytes: u64,
        /// Modeled wire latency of the transfer.
        secs: f64,
    },
}

/// One prefill-complete request leaving a `Prefill`-role replica for a
/// decode pool, carrying the cross-pool state the decode-side admission
/// must credit. `req.arrival_us` has been rewritten to the transfer
/// *completion* instant, so decode-pool routing and queue ordering treat
/// the handoff as an ordinary arrival; the origin timestamps ride along
/// so TTFT/E2E still span the whole path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HandoffOut {
    /// The request, with `arrival_us` rewritten to transfer completion.
    pub(crate) req: Request,
    /// The origin arrival instant (seconds) — what latency metrics
    /// measure from.
    pub(crate) origin_arrival: f64,
    /// Admission instant on the prefill pool (queueing delay is measured
    /// to *this*, and the decode pool must never re-shed a request that
    /// already consumed prefill service).
    pub(crate) first_admitted: f64,
    /// Prompt-residency instant on the prefill pool.
    pub(crate) prefill_end: f64,
    /// Evictions the request suffered on the prefill pool.
    pub(crate) evictions: u32,
    /// Re-prefill seconds accumulated on the prefill pool.
    pub(crate) restart_secs: f64,
}

/// Instantaneous load of one replica, as seen by a [`crate::cluster::Router`]
/// at a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLoad {
    /// Replica index within the cluster.
    pub replica: usize,
    /// Requests routed to the replica and not yet finished (queued +
    /// running).
    pub in_flight: usize,
    /// KV bytes the replica is committed to under the active memory
    /// policy: reservations held by the running batch plus the
    /// reservations its queued requests will take on admission.
    pub reserved_kv: u64,
    /// Prompt tokens routed to the replica and not yet prefilled —
    /// queued prompts plus the unprocessed remainder of running
    /// prefills (always 0 when prefill is not modeled). Lets routers
    /// weigh prompt-processing backlog, which in-flight counts and KV
    /// reservations miss.
    pub pending_prefill: u64,
    /// Requests this replica has evicted so far — the memory-pressure
    /// signal: a replica that keeps evicting is thrashing its KV pool,
    /// and routing more work to it multiplies the wasted re-prefill.
    pub evictions: u64,
    /// Admissions that mapped at least one resident shared-prefix page
    /// (0 unless prefix caching is on) — a replica with a warm prefix
    /// cache serves shared-prompt traffic cheaper than a cold one.
    pub prefix_cache_hits: u64,
    /// Prompt tokens whose prefill this replica skipped via the prefix
    /// cache (0 unless prefix caching is on).
    pub prefix_hit_tokens: u64,
    /// Cached KV pages this replica reclaimed page-by-page under
    /// memory pressure (0 unless prefix caching is on).
    pub pages_evicted: u64,
}

/// A routed request waiting for (re-)admission, with the state an
/// eviction must carry across its trip back through the queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    req: Request,
    /// Generated tokens kept across an `EvictPause` (0 for fresh
    /// requests and after an `EvictRestart`); re-prefilled together
    /// with the prompt as an extended prompt on re-admission.
    resume_done: u64,
    /// Already-computed tokens whose re-prefill is still owed — drives
    /// the restart-time attribution (see [`Active::owed`]).
    owed: u64,
    evictions: u32,
    restart_secs: f64,
    /// First admission instant (queueing delay is arrival → *first*
    /// admission; later re-admissions are eviction re-work, not
    /// scheduler queueing).
    first_admitted: Option<f64>,
    /// First prompt-residency instant, if reached before the eviction.
    prefill_end: Option<f64>,
    first_token: Option<f64>,
    /// Whether this request arrived by cross-pool handoff with its
    /// prompt KV already resident (admission then skips prefill
    /// entirely). Cleared on eviction: the transferred KV is dropped
    /// with the reservation, so a re-admission genuinely re-prefills.
    handoff: bool,
    /// The request's origin arrival (seconds) — equals
    /// `req.arrival_secs()` except for handoffs, whose `arrival_us` was
    /// rewritten to the transfer-completion instant.
    origin_arrival: f64,
}

impl Queued {
    fn fresh(req: Request) -> Self {
        Queued {
            req,
            resume_done: 0,
            owed: 0,
            evictions: 0,
            restart_secs: 0.0,
            first_admitted: None,
            prefill_end: None,
            first_token: None,
            handoff: false,
            origin_arrival: req.arrival_secs(),
        }
    }

    /// Prompt tokens a (re-)admission must prefill before decoding.
    fn prefill_target(&self) -> u64 {
        self.req.context_len + self.resume_done
    }
}

/// The pending queue, indexed by priority class: one FCFS lane per
/// distinct priority, lanes ordered highest class first. Traces carry a
/// handful of distinct priorities, so every query below is effectively
/// O(1) — where the historical single merged `VecDeque` paid an O(n)
/// scan per admission candidate and an O(n) shift per admission
/// (`remove(ci)`), the dominant cost of large priority-traffic runs.
///
/// # Admission-order invariant
///
/// Every continuous-mode lane is in `(arrival_us, id)` order: the
/// cluster routes arrivals in global `(arrival_us, id)` order
/// ([`workload::Trace::arrival_ordered`]), so fresh pushes are
/// nondecreasing (asserted in [`Self::push_back`]), and evictions
/// reinsert at their sorted position ([`Self::reinsert`]). The invariant
/// is what lets each lane answer by its *front*: the next admission
/// candidate is the front of the highest-priority lane whose front has
/// arrived — the same request a linear scan of the merged queue selects
/// (cross-checked against that scan under `debug_assertions`, which the
/// equivalence property tests run under).
///
/// The wave policy routes in trace order (not arrival order), drains in
/// insertion order and ignores priority — a wave queue is therefore a
/// single insertion-order lane (`fifo`), bit-exact with the historical
/// `VecDeque`.
#[derive(Debug)]
struct PendingQueue {
    /// `(priority, lane)` pairs, highest priority first; each lane in
    /// `(arrival_us, id)` order (fifo mode: one lane, insertion order).
    /// Lanes are never removed — the handful of classes a trace uses is
    /// allocated once and recycled for the rest of the run.
    lanes: Vec<(u8, VecDeque<Queued>)>,
    len: usize,
    fifo: bool,
}

impl PendingQueue {
    fn new(fifo: bool) -> Self {
        PendingQueue {
            lanes: Vec::new(),
            len: 0,
            fifo,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The lane for `priority`, created on first use.
    fn lane_mut(&mut self, priority: u8) -> &mut VecDeque<Queued> {
        let li = self.lanes.partition_point(|(p, _)| *p > priority);
        if !self.lanes.get(li).is_some_and(|(p, _)| *p == priority) {
            self.lanes.insert(li, (priority, VecDeque::new()));
        }
        &mut self.lanes[li].1
    }

    /// Appends a routed request. Outside fifo mode the caller must push
    /// in nondecreasing `(arrival_us, id)` order (the admission-order
    /// invariant above).
    fn push_back(&mut self, q: Queued) {
        let fifo = self.fifo;
        let lane = self.lane_mut(if fifo { 0 } else { q.req.priority });
        debug_assert!(
            fifo || !lane
                .back()
                .is_some_and(|b| (b.req.arrival_us, b.req.id) > (q.req.arrival_us, q.req.id)),
            "pending pushes must be in nondecreasing (arrival_us, id) order"
        );
        lane.push_back(q);
        self.len += 1;
    }

    /// Reinserts an evicted request at its `(arrival_us, id)` position
    /// within its priority lane.
    fn reinsert(&mut self, q: Queued) {
        debug_assert!(!self.fifo, "waves never evict");
        let key = (q.req.arrival_us, q.req.id);
        let lane = self.lane_mut(q.req.priority);
        let pos = lane.partition_point(|p| (p.req.arrival_us, p.req.id) <= key);
        lane.insert(pos, q);
        self.len += 1;
    }

    /// The earliest-arriving pending request (`(arrival_us, id)` order)
    /// — the idle-jump target and the FCFS fast-path chunk cut. Each
    /// lane's front is its earliest, so this is a min over lane fronts.
    fn earliest(&self) -> Option<&Queued> {
        self.lanes
            .iter()
            .filter_map(|(_, lane)| lane.front())
            .min_by_key(|q| (q.req.arrival_us, q.req.id))
    }

    /// The next admission candidate at time `t`: the front of the
    /// highest-priority lane whose front has arrived. (A lane front that
    /// has not arrived means nothing in that lane has — fronts are the
    /// per-lane earliest.)
    fn peek_candidate(&self, t: f64) -> Option<&Queued> {
        let cand = self
            .lanes
            .iter()
            .filter_map(|(_, lane)| lane.front())
            .find(|q| q.req.arrival_secs() <= t);
        debug_assert_eq!(
            cand.map(|q| q.req.id),
            self.linear_scan_candidate(t).map(|q| q.req.id),
            "lane-front candidate must match the linear-scan reference"
        );
        cand
    }

    /// Linear-scan reference for [`Self::peek_candidate`]: the
    /// historical selection rule over the merged queue, kept as the
    /// `debug_assertions` cross-check.
    fn linear_scan_candidate(&self, t: f64) -> Option<&Queued> {
        self.lanes
            .iter()
            .flat_map(|(_, lane)| lane.iter())
            .filter(|q| q.req.arrival_secs() <= t)
            .max_by_key(|q| (q.req.priority, Reverse(q.req.arrival_us), Reverse(q.req.id)))
    }

    /// Pops the candidate [`Self::peek_candidate`] returned. Still its
    /// lane's front even after an eviction sweep: victims have strictly
    /// lower priority, so their reinsertion cannot touch this lane.
    fn pop_candidate(&mut self, priority: u8) -> Queued {
        let li = self.lanes.partition_point(|(p, _)| *p > priority);
        debug_assert_eq!(self.lanes[li].0, priority);
        let q = self.lanes[li]
            .1
            .pop_front()
            .expect("candidate lane nonempty");
        self.len -= 1;
        q
    }

    /// The earliest pending arrival strictly after `t`, if any — the
    /// priority-path chunk cut, via per-lane binary search.
    fn next_arrival_after(&self, t: f64) -> Option<f64> {
        self.lanes
            .iter()
            .filter_map(|(_, lane)| {
                let i = lane.partition_point(|q| q.req.arrival_secs() <= t);
                lane.get(i).map(|q| q.req.arrival_secs())
            })
            .min_by(f64::total_cmp)
    }

    /// Drains the queue in insertion order (wave mode only).
    fn drain_fifo(&mut self) -> VecDeque<Queued> {
        debug_assert!(self.fifo);
        self.len = 0;
        self.lanes.pop().map(|(_, lane)| lane).unwrap_or_default()
    }
}

/// One running request in the incrementally maintained victim index,
/// kept sorted by ascending priority and, within a class, in the order
/// [`ReplicaSim::plan_eviction`] consumes victims: most recently
/// admitted first under [`VictimOrder::RecentFirst`], latest TTFT
/// deadline first (most SLO slack; ties newest-first) under
/// [`VictimOrder::SlackFirst`]. Planning walks a prefix instead of
/// re-filtering and re-sorting the running batch per blocked candidate.
/// Maintained only when the preemption policy can evict.
#[derive(Debug, Clone, Copy)]
struct VictimEntry {
    priority: u8,
    id: u64,
    /// The request's KV reservation, cached at admission so planning
    /// does not re-derive it per victim.
    reserved: u64,
    /// The request's absolute TTFT deadline `arrival + slo_ttft`, as
    /// order-preserving bits (`f64::to_bits` is monotone over the
    /// nonnegative floats, `+inf` — no SLO — sorting last). Two
    /// requests' slack difference is time-invariant, so this static key
    /// realizes "most remaining slack first" exactly.
    deadline_bits: u64,
    /// Admission sequence (tie-break: newest first).
    seq: u64,
}

/// Per-replica paged-KV state: the page pool plus the token/byte
/// geometry needed to translate requests into pages. Present only when
/// [`crate::policy::PagedKvConfig::prefix_caching`] is on under the
/// continuous policy; `None` keeps every historical code path bit-exact.
#[derive(Debug)]
struct PagedKv {
    pool: PagePool,
    /// Tokens one page holds ([`Evaluator::page_tokens`], ≥ 1).
    page_tokens: u64,
    page_bytes: u64,
    /// Re-prefill discounts granted at eviction, by request id: shared
    /// pages left resident in the pool let the victim's `reprefill`
    /// accounting shrink, but if the pool reclaims those pages before
    /// the request is re-admitted, the shortfall must be recomputed —
    /// and is billed back to `wasted_prefill_tokens` at re-admission.
    discounted: BTreeMap<u64, u64>,
}

impl PagedKv {
    /// Whole pages of `r`'s prompt covered by its tenant-shared prefix
    /// (partial trailing pages are private — sharing them would alias
    /// unrelated tokens into one page).
    fn shared_pages(&self, r: &Request) -> u64 {
        r.shared_prefix.min(r.context_len) / self.page_tokens
    }

    /// Prompt tokens of `r` living on shared (prefix-tree) pages.
    fn shared_tokens(&self, r: &Request) -> u64 {
        self.shared_pages(r) * self.page_tokens
    }

    /// Content labels of `r`'s shared-prefix pages: requests of one
    /// tenant share one system prompt, so `(tenant, page index)`
    /// identifies the page content.
    fn labels_for(&self, r: &Request) -> Vec<u64> {
        let tenant = u64::from(r.tenant) << 32;
        (0..self.shared_pages(r)).map(|i| tenant | i).collect()
    }

    /// Page-rounded footprint of a `len`-token reservation
    /// ([`ReplicaSim::reservation_len`] — the whole request on
    /// mixed/decode replicas, the prompt alone on prefill replicas).
    fn footprint_pages(&self, len: u64) -> u64 {
        len.div_ceil(self.page_tokens).max(1)
    }
}

/// One request resident in a replica's running batch.
#[derive(Debug, Clone, Copy)]
struct Active {
    req: Request,
    /// Tokens generated so far (starts at the kept-token count when
    /// resuming from an `EvictPause`).
    done: u64,
    /// Prompt tokens processed so far (initialized to the target when
    /// prefill is not modeled, so the request decodes immediately).
    prefilled: u64,
    /// Prompt tokens this residency must process before decoding:
    /// `context_len`, plus the kept tokens re-prefilled as an extended
    /// prompt after an `EvictPause`.
    prefill_target: u64,
    /// `done` at (re-)admission — the resume point, needed to tell
    /// tokens generated *this* residency from kept ones at eviction.
    resume_done: u64,
    /// First admission instant (survives evictions).
    admitted: f64,
    /// When the prompt *first* finished processing (None while
    /// prefilling; set once and kept across evictions).
    prefill_end: Option<f64>,
    first_token: Option<f64>,
    /// Already-computed tokens still to be re-prefilled: the leading
    /// `owed` tokens of the current prefill pass are re-work, and their
    /// pro-rata share of each chunk's seconds is billed to the restart
    /// bucket instead of first-pass prefill.
    owed: u64,
    evictions: u32,
    restart_secs: f64,
    /// Admission sequence number within the replica — victim selection
    /// evicts the most recently admitted (least progress lost) among
    /// the lowest-priority candidates, deterministically.
    seq: u64,
    /// Origin arrival (seconds) for latency metrics — see
    /// [`Queued::origin_arrival`].
    origin_arrival: f64,
}

impl Active {
    /// Whether the prompt is resident and decoding may proceed.
    fn prompt_ready(&self) -> bool {
        self.prefilled >= self.prefill_target
    }
}

/// Per-replica serving state machine (see the module docs).
pub(crate) struct ReplicaSim<'a> {
    eval: &'a Evaluator,
    stage: StageModel<'a>,
    policy: SchedulingPolicy,
    preempt: PreemptionPolicy,
    prefill: PrefillConfig,
    shedding: SheddingPolicy,
    victim_order: VictimOrder,
    /// Optimistic TTFT bound for deadline-aware admission (zero-rate —
    /// pure queueing-time — unless shedding is armed with prefill on).
    predictor: TtftPredictor,
    /// The serving phase this replica owns (`Mixed` unless the cluster
    /// armed pools; continuous policy only — waves ignore roles).
    role: PoolRole,
    /// The KV-transfer pricer for handoffs; `Some` exactly when this is
    /// a `Prefill`-role replica.
    transfer: Option<KvTransferModel>,
    t_max: u64,
    /// Routed, not-yet-admitted requests, in per-priority FCFS lanes
    /// (evicted requests re-enter at their arrival-order position).
    pending: PendingQueue,
    /// Sum of the pending requests' would-be reservations.
    pending_reserved: u64,
    /// Prompt tokens routed but not yet prefilled (0 with prefill off).
    prefill_backlog: u64,
    /// Whether any routed request carried a nonzero priority. While
    /// false, admission and chunk-cutting follow the historical FCFS
    /// fast path bit-exactly (uniform priorities also make eviction
    /// impossible, so every preemption policy coincides with `None`).
    saw_priority: bool,
    admitter: ContinuousAdmitter,
    /// Paged-KV state (pool + page geometry); `None` — the default —
    /// keeps whole-request reservations bit-exactly.
    paged: Option<PagedKv>,
    running: Vec<Active>,
    /// Eviction-order index over `running` (see [`VictimEntry`]); empty
    /// unless the preemption policy can evict.
    victim_index: Vec<VictimEntry>,
    /// Scratch for batch pricing — reused across steps so the hot path
    /// allocates nothing per priced iteration.
    batch_buf: Vec<(u64, u64)>,
    /// Admission sequence counter feeding [`Active::seq`].
    admit_seq: u64,
    /// Bumped on every admission, executed step, eviction, and
    /// completion; keys `cached_step` (see [`PlannedStep`]).
    batch_version: u64,
    /// Deferred-step pricing cache, valid while `batch_version` matches.
    cached_step: Option<(u64, PlannedStep)>,
    /// Virtual clock.
    t: f64,
    /// Seconds spent decoding or prefilling (excludes idle gaps).
    busy: f64,
    routed: u64,
    served: u64,
    tokens: u64,
    evictions: u64,
    shed: u64,
    prefix_cache_hits: u64,
    prefix_hit_tokens: u64,
    pages_evicted: u64,
    peak_reserved: u64,
    pub(crate) events: Vec<SimEvent>,
    pub(crate) timings: Vec<RequestTiming>,
    /// Prefill-complete requests handed off by this `Prefill`-role
    /// replica, in retirement order (the cluster merge-sorts the pools'
    /// streams by transfer-completion time before decode-pool routing).
    /// Always empty on mixed/decode replicas.
    pub(crate) handoffs: Vec<HandoffOut>,
}

impl<'a> ReplicaSim<'a> {
    /// Creates an idle replica for a run compiled for worst case `t_max`.
    pub(crate) fn new(eval: &'a Evaluator, policy: SchedulingPolicy, t_max: u64) -> Self {
        let paged_cfg = eval.paged_kv_config();
        // Paged KV is a continuous-policy feature: the closed-world wave
        // loop admits and retires whole waves, so there is nothing for a
        // page cache to share across admissions.
        let paged =
            (paged_cfg.prefix_caching && policy == SchedulingPolicy::Continuous).then(|| PagedKv {
                pool: PagePool::new(eval.replica_kv_capacity(), paged_cfg.page_bytes),
                page_tokens: eval.page_tokens(),
                page_bytes: paged_cfg.page_bytes,
                discounted: BTreeMap::new(),
            });
        let shedding = if policy == SchedulingPolicy::Continuous {
            eval.shedding_policy()
        } else {
            SheddingPolicy::None // closed-world waves have no deadlines
        };
        // Pool roles are a continuous-policy feature (the closed-world
        // wave loop has no cross-pool lifecycle); a wave replica always
        // runs the full lifecycle.
        let role = if policy == SchedulingPolicy::Continuous {
            eval.pool_role()
        } else {
            PoolRole::Mixed
        };
        ReplicaSim {
            eval,
            stage: eval.stage_model(),
            policy,
            preempt: eval.preemption_policy(),
            prefill: eval.prefill_config(),
            shedding,
            victim_order: eval.victim_order(),
            predictor: if shedding.sheds() {
                eval.ttft_predictor()
            } else {
                TtftPredictor::with_rate(0.0)
            },
            role,
            transfer: (role == PoolRole::Prefill).then(|| eval.kv_transfer_model()),
            t_max,
            pending: PendingQueue::new(policy == SchedulingPolicy::Wave),
            pending_reserved: 0,
            prefill_backlog: 0,
            saw_priority: false,
            admitter: ContinuousAdmitter::new(eval, t_max),
            paged,
            running: Vec::new(),
            victim_index: Vec::new(),
            batch_buf: Vec::new(),
            admit_seq: 0,
            batch_version: 0,
            cached_step: None,
            t: 0.0,
            busy: 0.0,
            routed: 0,
            served: 0,
            tokens: 0,
            evictions: 0,
            shed: 0,
            prefix_cache_hits: 0,
            prefix_hit_tokens: 0,
            pages_evicted: 0,
            peak_reserved: 0,
            events: Vec::new(),
            timings: Vec::new(),
            handoffs: Vec::new(),
        }
    }

    /// The token length a request's KV reservation covers on this
    /// replica: the whole request (prompt + decode budget) on
    /// mixed/decode replicas — the historical rule, bit-exact — but only
    /// the prompt on a `Prefill`-role replica, which never decodes and
    /// hands the request off at prompt residency. (Prefill replicas
    /// never decode, so `resume_done` is always 0 there and the prompt
    /// is exactly `context_len`.)
    fn reservation_len(&self, r: &Request) -> u64 {
        if self.role == PoolRole::Prefill {
            r.context_len
        } else {
            r.final_len()
        }
    }

    /// The reservation a request holds while queued (and the full
    /// amount it returns to the queue on eviction) — the single point
    /// of change for per-request KV accounting, deduplicating what used
    /// to be five scattered `kv_reservation(final_len, t_max)` calls:
    /// the whole-request reservation under the historical policy, the
    /// page-rounded footprint under paged KV (admission itself may then
    /// reserve less — resident shared pages are discounted by
    /// [`Self::admission_need`]).
    fn queue_reservation(&self, r: &Request) -> u64 {
        match &self.paged {
            Some(p) => p.footprint_pages(self.reservation_len(r)) * p.page_bytes,
            None => self
                .eval
                .kv_reservation(self.reservation_len(r), self.t_max),
        }
    }

    /// Bytes the admitter must find for `r` right now: equal to
    /// [`Self::queue_reservation`] under whole-request accounting; under
    /// paged KV, resident shared-prefix pages are free (refcount++) but
    /// re-referencing a *cached* page removes it from the reclaimable
    /// set, so those count (`new + hit_cached` pages — exactly the page
    /// pool's own feasibility rule).
    fn admission_need(&self, r: &Request) -> u64 {
        match &self.paged {
            Some(p) => {
                let hit = p.pool.lookup(&p.labels_for(r));
                (p.footprint_pages(self.reservation_len(r)) - hit.hit_pages + hit.hit_cached_pages)
                    * p.page_bytes
            }
            None => self
                .eval
                .kv_reservation(self.reservation_len(r), self.t_max),
        }
    }

    /// Whether the FCFS queue front could join the running batch now —
    /// the decode-chunk cut predicate.
    fn front_fits(&self, r: &Request) -> bool {
        self.admitter.fits_given(
            self.admission_need(r),
            self.admitter.used(),
            self.running.len(),
        )
    }

    /// Takes `r`'s memory at admission. Non-paged: reserves the
    /// whole-request bytes. Paged: admits `r` into the page pool —
    /// mapping any resident shared prefix, allocating the rest,
    /// reclaiming cached pages LRU-first under pressure — and reserves
    /// the actual referenced-page delta. Returns the prompt tokens whose
    /// prefill the prefix cache skips plus the bytes reserved.
    fn admit_memory(&mut self, r: &Request) -> (u64, u64) {
        let r_len = self.reservation_len(r);
        let Some(p) = &mut self.paged else {
            // Same arithmetic as the historical `admitter.reserve` on
            // mixed replicas (one saturating add of the same bytes);
            // prefill replicas reserve the prompt alone.
            let need = self.eval.kv_reservation(r_len, self.t_max);
            self.admitter.reserve_bytes(need);
            return (0, need);
        };
        let labels = p.labels_for(r);
        let private = p.footprint_pages(r_len) - labels.len() as u64;
        let before = p.pool.referenced_pages();
        let adm = match p.pool.admit(RequestId(r.id), &labels, private) {
            Ok(a) => a,
            Err(_) => {
                // Mirror the admitter's empty-batch guarantee (a first
                // request always admits, truncated to capacity by
                // construction of the workloads): clamp the footprint to
                // the pool rather than deadlock.
                debug_assert!(
                    self.running.is_empty(),
                    "pool admission can only fail for an oversized first request"
                );
                let keep = (labels.len() as u64).min(p.pool.total_pages()) as usize;
                let private = private.min(p.pool.total_pages() - keep as u64);
                p.pool
                    .admit(RequestId(r.id), &labels[..keep], private)
                    .expect("clamped admission fits an empty pool")
            }
        };
        let reserved = (p.pool.referenced_pages() - before) * p.page_bytes;
        self.admitter.reserve_bytes(reserved);
        let hit_tokens = adm.hit_pages * p.page_tokens;
        // Recompute attribution: tokens whose re-prefill was waived at
        // this request's eviction (shared pages then resident) that the
        // cache no longer covers — the pool reclaimed them in between,
        // so the prefill really happens again and counts as waste.
        let recompute_tokens = p
            .discounted
            .remove(&r.id)
            .unwrap_or(0)
            .saturating_sub(hit_tokens);
        if hit_tokens > 0 {
            self.prefix_cache_hits += 1;
            self.prefix_hit_tokens += hit_tokens;
        }
        if hit_tokens > 0 || recompute_tokens > 0 {
            self.events.push(SimEvent::PrefixAdmit {
                hit_tokens,
                recompute_tokens,
            });
        }
        if adm.reclaimed_pages > 0 {
            self.pages_evicted += adm.reclaimed_pages;
            self.events.push(SimEvent::PageReclaim {
                pages: adm.reclaimed_pages,
            });
        }
        (hit_tokens, reserved)
    }

    /// Returns `r`'s memory when it leaves the running batch (retire or
    /// eviction). Paged: shared pages another live sequence still maps
    /// stay referenced; newly zero-refcount shared pages stay *cached*
    /// in the pool (the prefix cache), so only the actual
    /// referenced-page drop is released.
    fn release_memory(&mut self, r: &Request) {
        let r_len = self.reservation_len(r);
        match &mut self.paged {
            Some(p) => {
                let rel = p
                    .pool
                    .release(RequestId(r.id))
                    .expect("running request owns pool pages");
                self.admitter
                    .release_bytes(rel.released_pages * p.page_bytes);
            }
            // Same arithmetic as the historical `admitter.release` on
            // mixed replicas.
            None => self
                .admitter
                .release_bytes(self.eval.kv_reservation(r_len, self.t_max)),
        }
    }

    /// Hands a routed request to this replica. Requests must be enqueued
    /// in nondecreasing arrival order and never earlier than the
    /// replica's clock (the cluster routes arrivals in global order and
    /// only advances replicas up to the routing frontier).
    pub(crate) fn enqueue(&mut self, r: Request) {
        self.pending_reserved = self
            .pending_reserved
            .saturating_add(self.queue_reservation(&r));
        if self.prefill.enabled {
            self.prefill_backlog = self.prefill_backlog.saturating_add(r.context_len);
        }
        self.saw_priority |= r.priority != 0;
        self.pending.push_back(Queued::fresh(r));
        self.routed += 1;
    }

    /// Hands a prefill-complete request (arriving by cross-pool
    /// transfer) to this decode replica. Same ordering contract as
    /// [`Self::enqueue`], keyed on the rewritten (transfer-completion)
    /// arrival. The prompt KV is resident on arrival, so nothing joins
    /// the prefill backlog and admission skips prefill entirely.
    pub(crate) fn enqueue_handoff(&mut self, h: HandoffOut) {
        debug_assert!(
            self.role.accepts_handoff(),
            "handoffs may only target decode pools"
        );
        self.pending_reserved = self
            .pending_reserved
            .saturating_add(self.queue_reservation(&h.req));
        self.saw_priority |= h.req.priority != 0;
        self.pending.push_back(Queued {
            req: h.req,
            resume_done: 0,
            owed: 0,
            evictions: h.evictions,
            restart_secs: h.restart_secs,
            first_admitted: Some(h.first_admitted),
            prefill_end: Some(h.prefill_end),
            first_token: None,
            handoff: true,
            origin_arrival: h.origin_arrival,
        });
        self.routed += 1;
    }

    /// The load snapshot routers decide on.
    pub(crate) fn load(&self, replica: usize) -> ReplicaLoad {
        ReplicaLoad {
            replica,
            in_flight: self.pending.len() + self.running.len(),
            reserved_kv: self.admitter.used().saturating_add(self.pending_reserved),
            pending_prefill: self.prefill_backlog,
            evictions: self.evictions,
            prefix_cache_hits: self.prefix_cache_hits,
            prefix_hit_tokens: self.prefix_hit_tokens,
            pages_evicted: self.pages_evicted,
        }
    }

    /// Whether deadline-aware admission control drops this candidate:
    /// armed shedding, a finite tenant SLO, a *first* admission (a
    /// previously admitted request already has its TTFT history — its
    /// service would be wasted, not saved, by dropping it now), and an
    /// optimistic TTFT bound that already misses the SLO. The bound is
    /// accumulated wait plus the cheapest-rate prefill of (a) the
    /// unprefilled running prompts the chunked-prefill stage serves
    /// before this candidate — it picks highest priority first, then
    /// earliest arrival — and (b) the candidate's own non-cacheable
    /// prompt. Every one of those tokens must execute before the
    /// candidate's first token, each at no better than the calibrated
    /// empty-context rate, so the bound lower-bounds any realized TTFT
    /// and a request that could still meet its deadline is never shed.
    /// (The one exception: a strictly-higher-priority class evicting
    /// ahead-of-candidate work re-queues it behind, which needs ≥ 3
    /// priority classes under active preemption; ample-capacity traces
    /// never evict, so the no-false-shed guarantee holds there
    /// unconditionally.)
    fn should_shed(&self, q: &Queued) -> bool {
        if !self.shedding.sheds() || q.first_admitted.is_some() {
            return false;
        }
        let slo = self.eval.tenant_slo(q.req.tenant);
        if slo.is_infinite() {
            return false;
        }
        let tokens = if self.prefill.enabled {
            let ahead: u64 = self
                .running
                .iter()
                .filter(|a| {
                    !a.prompt_ready()
                        && (Reverse(a.req.priority), a.req.arrival_us, a.req.id)
                            < (Reverse(q.req.priority), q.req.arrival_us, q.req.id)
                })
                .map(|a| a.prefill_target - a.prefilled)
                .sum();
            let cached = self.paged.as_ref().map_or(0, |p| p.shared_tokens(&q.req));
            ahead + q.prefill_target().saturating_sub(cached)
        } else {
            0
        };
        let waited = (self.t - q.req.arrival_secs()).max(0.0);
        match &self.transfer {
            // A prefill replica's first token is emitted by a *decode*
            // pool, on the far side of the KV transfer: the wire time is
            // part of every realized TTFT, so adding it keeps the bound
            // sound without breaking the lower-bound guarantee.
            Some(m) => {
                let (_, _, secs) = m.transfer(q.req.context_len);
                self.predictor.predict_with_transfer(waited, tokens, secs) > slo
            }
            None => self.predictor.predict(waited, tokens) > slo,
        }
    }

    /// A request's absolute TTFT deadline `arrival + slo_ttft` as
    /// order-preserving bits (see [`VictimEntry::deadline_bits`]).
    fn deadline_bits(&self, r: &Request) -> u64 {
        (r.arrival_secs() + self.eval.tenant_slo(r.tenant)).to_bits()
    }

    /// Processes every event up to `limit`, deferring any step that
    /// would end past it. Returns the replica's **next-event bound**:
    /// the earliest future instant at which — absent newly routed
    /// arrivals — its state can change (the deferred step's end, the
    /// next pending arrival, or `f64::INFINITY` once drained). The bound
    /// is always strictly greater than `limit`; the cluster's event
    /// calendar relies on it to skip advancing quiescent replicas
    /// (advancing below the bound is a state no-op). A no-op returning
    /// `INFINITY` under the wave policy, which ignores arrival times
    /// (all its work happens in [`Self::finish`]).
    pub(crate) fn advance_to(&mut self, limit: f64) -> f64 {
        if self.policy == SchedulingPolicy::Continuous {
            self.advance_continuous(limit)
        } else {
            f64::INFINITY
        }
    }

    /// Runs the replica to completion (no more arrivals will be routed).
    pub(crate) fn finish(&mut self) {
        match self.policy {
            SchedulingPolicy::Wave => self.run_wave(),
            SchedulingPolicy::Continuous => {
                self.advance_continuous(f64::INFINITY);
            }
        }
    }

    /// This replica's virtual end time.
    pub(crate) fn end_time(&self) -> f64 {
        self.t
    }

    /// Seconds spent decoding or prefilling (excludes idle gaps).
    pub(crate) fn busy_seconds(&self) -> f64 {
        self.busy
    }

    /// The per-replica totals exposed in the serving report.
    pub(crate) fn breakdown(&self) -> ReplicaBreakdown {
        ReplicaBreakdown {
            routed: self.routed,
            served: self.served,
            tokens: self.tokens,
            busy_seconds: self.busy,
            seconds: self.t,
            peak_reserved_kv: self.peak_reserved,
            evictions: self.evictions,
            shed: self.shed,
        }
    }

    /// The original closed-world wave loop over this replica's routed
    /// queue: each wave decodes to completion before the next is
    /// admitted. Arrival times and priorities are ignored (every request
    /// is treated as queued at time 0), so TTFT under this policy
    /// measures closed-world queueing, and preemption never applies (an
    /// admitted wave always runs to completion). Extracted verbatim from
    /// `Engine::run_wave_replica`.
    fn run_wave(&mut self) {
        let eval = self.eval;
        let stride = eval.stride();
        let queue: Vec<Request> = self
            .pending
            .drain_fifo()
            .into_iter()
            .map(|q| q.req)
            .collect();
        self.pending_reserved = 0;
        let mut idx = 0usize;
        while idx < queue.len() {
            let admitted = policy::wave_plan(eval, &queue[idx..], self.t_max);
            let wave = &queue[idx..idx + admitted];
            idx += admitted;
            self.events.push(SimEvent::Admit {
                batch: admitted as f64,
            });
            let wave_reserved: u64 = wave.iter().map(|r| self.queue_reservation(r)).sum();
            self.peak_reserved = self.peak_reserved.max(wave_reserved);

            let wave_start = self.t;
            // Whole-batch prefill: the wave decodes in lockstep, so no
            // request sees its first token until every admitted prompt
            // is resident (FCFS, chunked for pricing fidelity with the
            // continuous path). No-op when prefill is not modeled.
            let mut prefill_end: Vec<f64> = vec![wave_start; admitted];
            if self.prefill.enabled {
                for (i, r) in wave.iter().enumerate() {
                    let mut done = 0u64;
                    while done < r.context_len {
                        let c = self.prefill.chunk_tokens.min(r.context_len - done);
                        let pre = self.stage.prefill_chunk(r.id, done, c);
                        self.events.push(SimEvent::Prefill {
                            pre,
                            chunk: c,
                            restart: 0.0,
                        });
                        self.t += pre.seconds;
                        self.busy += pre.seconds;
                        self.prefill_backlog = self.prefill_backlog.saturating_sub(c);
                        done += c;
                    }
                    prefill_end[i] = self.t;
                }
            }

            let decode_start = self.t;
            let mut first_token: Vec<Option<f64>> = vec![None; admitted];
            let mut finish: Vec<f64> = vec![decode_start; admitted];

            // Decode the wave; all requests share the same decode budget,
            // growing token counts as they generate.
            let decode_len = wave.iter().map(|r| r.decode_len).max().unwrap_or(0);
            let mut step = 0u64;
            while step < decode_len {
                // Cut the chunk at the earliest completion so batch
                // composition is constant within it.
                let Some(min_remaining) = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| r.decode_len - step)
                    .min()
                else {
                    break;
                };
                let chunk = stride.min(decode_len - step).min(min_remaining);
                // Exact per-step pricing: the affine kernel model makes
                // Σₛ it(T+s) equal chunk·it(T + (chunk-1)/2), so the
                // chunk is priced at its midpoint step — the same rule
                // as the continuous policy, eliminating the historical
                // stride-granularity cost skew between them.
                let batch: Vec<(u64, u64)> = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| (r.id, r.context_len + step + (chunk - 1) / 2))
                    .collect();
                let it = self.stage.iteration(&batch);
                let secs = it.seconds * chunk as f64;
                let chunk_start = self.t;
                self.t += secs;
                self.busy += secs;
                self.tokens += batch.len() as u64 * chunk;
                self.events.push(SimEvent::Chunk {
                    it,
                    batch_len: batch.len(),
                    chunk,
                    secs,
                });
                for (i, r) in wave.iter().enumerate() {
                    if r.decode_len > step {
                        if first_token[i].is_none() {
                            first_token[i] = Some(chunk_start + it.seconds);
                        }
                        if r.decode_len <= step + chunk {
                            finish[i] = chunk_start + it.seconds * (r.decode_len - step) as f64;
                        }
                    }
                }
                step += chunk;
            }

            for (i, r) in wave.iter().enumerate() {
                self.events.push(SimEvent::Retire {
                    final_len: r.final_len(),
                });
                self.served += 1;
                // A request that never emitted a token (zero decode
                // budget) produces no timing sample: the historical
                // `unwrap_or(wave_start)` fallback silently clamped its
                // TTFT to the wave start, polluting the percentiles
                // with a token that never existed.
                let Some(first) = first_token[i] else {
                    continue;
                };
                self.timings.push(RequestTiming {
                    id: r.id,
                    // Closed world: the policy treats every request as
                    // queued at time 0, so its latencies are measured
                    // from the epoch — a real (later) arrival time would
                    // make first_token precede arrival and turn TTFT
                    // negative.
                    arrival: 0.0,
                    admitted: wave_start,
                    prefill_end: prefill_end[i],
                    first_token: first,
                    finished: finish[i],
                    decode_len: r.decode_len,
                    priority: r.priority,
                    tenant: r.tenant,
                    evictions: 0,
                    restart_secs: 0.0,
                });
            }
        }
    }

    /// Continuous batching up to `limit`: pending requests join the
    /// running batch the moment their arrival has passed and the memory
    /// policy has room (highest priority first; see the module docs for
    /// the eviction rules); completions free reservations immediately.
    /// With prefill enabled, admitted requests first process their
    /// prompt in chunks interleaved with decode steps of the running
    /// batch ([`Self::mixed_step`]), so decodes are not starved behind
    /// long prompts. The clock jumps over idle gaps (counted in
    /// `seconds` but not `busy_seconds`). The step decision is
    /// recomputed at execution time so deferral at the routing frontier
    /// is transparent; its *pricing* is cached across frontier visits
    /// (see [`PlannedStep`]).
    ///
    /// Returns the next-event bound documented on [`Self::advance_to`].
    fn advance_continuous(&mut self, limit: f64) -> f64 {
        loop {
            // Idle: jump the clock to the next arrival.
            if self.running.is_empty() {
                match self.pending.earliest() {
                    None => return f64::INFINITY,
                    Some(q) if q.req.arrival_secs() > limit => return q.req.arrival_secs(),
                    Some(q) if q.req.arrival_secs() > self.t => self.t = q.req.arrival_secs(),
                    Some(_) => {}
                }
            }

            // Admission events: priority-ordered sweep of everything
            // that has arrived (plain FCFS while every priority is 0 —
            // bit-exact with the historical loop). The sweep stops at
            // the first candidate that neither fits nor can claim room
            // by evicting strictly-lower-priority running requests.
            let mut admitted_now = 0usize;
            while let Some(cand_q) = self.pending.peek_candidate(self.t).copied() {
                let cand = cand_q.req;
                // Deadline-aware admission control: a candidate whose
                // optimistic TTFT bound already misses its tenant SLO is
                // dropped instead of admitted (never the default — see
                // `SheddingPolicy`). The sweep continues: a doomed
                // head must not shield admissible requests behind it.
                if self.should_shed(&cand_q) {
                    let q = self.pending.pop_candidate(cand.priority);
                    debug_assert_eq!(q.req.id, cand.id, "popped the planned candidate");
                    self.pending_reserved = self
                        .pending_reserved
                        .saturating_sub(self.queue_reservation(&q.req));
                    if self.prefill.enabled {
                        self.prefill_backlog =
                            self.prefill_backlog.saturating_sub(q.prefill_target());
                    }
                    self.events.push(SimEvent::Shed);
                    self.shed += 1;
                    continue;
                }
                let mut need = self.admission_need(&cand);
                if !self
                    .admitter
                    .fits_given(need, self.admitter.used(), self.running.len())
                {
                    let Some(victims) = self.plan_eviction(need, cand.priority) else {
                        break;
                    };
                    for id in victims {
                        self.evict(id);
                    }
                    // Victims re-entered strictly-lower-priority lanes,
                    // so the candidate is still its own lane's front.
                    if self.paged.is_some() {
                        // Page sharing means eviction can free fewer
                        // bytes than the victims' nominal reservations
                        // (shared pages stay referenced by survivors or
                        // cached), so re-derive the candidate's need and
                        // re-check before admitting.
                        need = self.admission_need(&cand);
                        if !self
                            .admitter
                            .fits_given(need, self.admitter.used(), self.running.len())
                        {
                            break;
                        }
                    }
                }
                let q = self.pending.pop_candidate(cand.priority);
                debug_assert_eq!(q.req.id, cand.id, "popped the planned candidate");
                self.pending_reserved = self
                    .pending_reserved
                    .saturating_sub(self.queue_reservation(&cand));
                let (hit_tokens, reserved) = self.admit_memory(&q.req);
                self.peak_reserved = self.peak_reserved.max(self.admitter.used());
                let target = q.prefill_target();
                // Prefix-cached prompt pages are already resident:
                // prefill starts at the first non-cached token. A
                // handed-off request's entire prompt KV arrived over the
                // wire — nothing to prefill, and nothing was ever added
                // to this replica's prefill backlog.
                let skip = if q.handoff {
                    target
                } else if self.prefill.enabled {
                    hit_tokens.min(target)
                } else {
                    0
                };
                if skip > 0 && !q.handoff {
                    self.prefill_backlog = self.prefill_backlog.saturating_sub(skip);
                }
                let must_prefill = !q.handoff && self.prefill.enabled && target > skip;
                if q.req.decode_len == 0 && !must_prefill {
                    // Nothing to generate or prefill: completes at
                    // admission — with no emitted token, so no timing
                    // sample (see the metrics module docs).
                    self.release_memory(&q.req);
                    self.events.push(SimEvent::Retire {
                        final_len: q.req.final_len(),
                    });
                    self.served += 1;
                    continue;
                }
                self.admit_seq += 1;
                self.running.push(Active {
                    req: q.req,
                    done: q.resume_done,
                    prefilled: if must_prefill { skip } else { target },
                    prefill_target: target,
                    resume_done: q.resume_done,
                    admitted: q.first_admitted.unwrap_or(self.t),
                    prefill_end: if must_prefill {
                        q.prefill_end
                    } else {
                        Some(q.prefill_end.unwrap_or(self.t))
                    },
                    first_token: q.first_token,
                    owed: q.owed.min(target - skip),
                    evictions: q.evictions,
                    restart_secs: q.restart_secs,
                    seq: self.admit_seq,
                    origin_arrival: q.origin_arrival,
                });
                if self.preempt.evicts() {
                    let p = q.req.priority;
                    let d = self.deadline_bits(&q.req);
                    // RecentFirst: the new admission has the highest
                    // seq, so it leads its priority class. SlackFirst:
                    // descending deadline within the class (latest
                    // deadline = most remaining slack evicts first);
                    // equal deadlines keep newest-first, so the two
                    // orders agree when no tenant has an SLO.
                    let pos = match self.victim_order {
                        VictimOrder::RecentFirst => {
                            self.victim_index.partition_point(|e| e.priority < p)
                        }
                        VictimOrder::SlackFirst => self.victim_index.partition_point(|e| {
                            e.priority < p || (e.priority == p && e.deadline_bits > d)
                        }),
                    };
                    self.victim_index.insert(
                        pos,
                        VictimEntry {
                            priority: p,
                            id: q.req.id,
                            reserved,
                            deadline_bits: d,
                            seq: self.admit_seq,
                        },
                    );
                }
                admitted_now += 1;
            }
            // Continuous mean_batch is step-weighted (tokens / steps),
            // so admission events only bump the event counter.
            if admitted_now > 0 {
                self.events.push(SimEvent::Admit { batch: 0.0 });
                self.batch_version += 1;
            }
            // A prefill replica retires requests the instant their
            // prompt is resident — including fully-prefix-cached
            // admissions that were prompt-ready on arrival, which must
            // never reach a decode step here.
            if self.role == PoolRole::Prefill {
                self.sweep_completions();
            }
            if self.running.is_empty() {
                continue; // only zero-work requests were admitted
            }

            // Step event: a mixed prefill step while any prompt is
            // unprocessed, else a pure decode chunk. Either defers (with
            // the step's end time as the next-event bound) when it would
            // end past the routing frontier — an arrival not yet routed
            // could still change the batch.
            let deferred = if self.running.iter().any(|a| !a.prompt_ready()) {
                self.mixed_step(limit)
            } else {
                self.decode_chunk(limit)
            };
            if let Err(ends_at) = deferred {
                return ends_at;
            }

            // Completion events: retire finished requests, freeing memory.
            self.sweep_completions();
        }
    }

    /// Retires every finished running request, freeing its memory. A
    /// request finishes when its decode budget is exhausted — or, on a
    /// `Prefill`-role replica, the moment its prompt is resident: the
    /// replica prices the KV transfer, records the `Handoff` event, and
    /// queues the request for the cluster to route into a decode pool.
    fn sweep_completions(&mut self) {
        let mut retired = false;
        let mut i = 0usize;
        while i < self.running.len() {
            let done = {
                let a = &self.running[i];
                if self.role == PoolRole::Prefill {
                    a.prompt_ready()
                } else {
                    a.prompt_ready() && a.done >= a.req.decode_len
                }
            };
            if !done {
                i += 1;
                continue;
            }
            let a = self.running.swap_remove(i);
            retired = true;
            self.victim_index_remove(a.req.id);
            self.release_memory(&a.req);
            if self.role == PoolRole::Prefill {
                let (bytes, _pages, secs) = self
                    .transfer
                    .as_ref()
                    .expect("prefill replicas price transfers")
                    .transfer(a.req.context_len);
                self.events.push(SimEvent::Handoff { bytes, secs });
                // This replica's resident KV at retirement is the
                // prompt alone — what utilization accounting should see.
                self.events.push(SimEvent::Retire {
                    final_len: a.req.context_len,
                });
                self.served += 1;
                let mut req = a.req;
                // The decode pool sees the request arrive when its KV
                // finishes landing: rewriting the arrival makes transfer
                // completion an ordinary arrival event there (ceil — the
                // request must not be admittable before the wire drains).
                req.arrival_us = ((self.t + secs) * 1e6).ceil() as u64;
                self.handoffs.push(HandoffOut {
                    req,
                    origin_arrival: a.origin_arrival,
                    first_admitted: a.admitted,
                    prefill_end: a.prefill_end.unwrap_or(self.t),
                    evictions: a.evictions,
                    restart_secs: a.restart_secs,
                });
                continue;
            }
            self.events.push(SimEvent::Retire {
                final_len: a.req.final_len(),
            });
            self.served += 1;
            // Zero-emission requests (decode budget 0, prefill only)
            // contribute no timing sample.
            if let Some(first) = a.first_token {
                self.timings.push(RequestTiming {
                    id: a.req.id,
                    arrival: a.origin_arrival,
                    admitted: a.admitted,
                    prefill_end: a.prefill_end.unwrap_or(a.admitted),
                    first_token: first,
                    finished: self.t,
                    decode_len: a.req.decode_len,
                    priority: a.req.priority,
                    tenant: a.req.tenant,
                    evictions: a.evictions,
                    restart_secs: a.restart_secs,
                });
            }
        }
        if retired {
            self.batch_version += 1;
        }
    }

    /// Plans which running requests to evict so a blocked candidate
    /// needing `need` reservation bytes fits. Victims must have strictly
    /// lower priority than `priority` (so uniform-priority traces never
    /// evict, and eviction chains strictly descend — no thrashing);
    /// among them, the lowest priority goes first and, within a class,
    /// the [`VictimOrder`] knob picks the victim: most recently admitted
    /// (the least progress is lost) or most remaining SLO slack
    /// (deadline-monotonic — the latest TTFT deadline) — a prefix walk
    /// of the incrementally maintained [`VictimEntry`] index, where the
    /// historical implementation re-filtered and re-sorted the running
    /// batch per blocked candidate (cross-checked against that reference
    /// under `debug_assertions`). Returns `None` — and evicts nobody —
    /// when even the full victim set would not make the candidate fit.
    fn plan_eviction(&self, need: u64, priority: u8) -> Option<Vec<u64>> {
        if !self.preempt.evicts() {
            return None;
        }
        debug_assert!(
            self.victim_index
                .windows(2)
                .all(|w| match self.victim_order {
                    VictimOrder::RecentFirst =>
                        (w[0].priority, Reverse(w[0].seq)) <= (w[1].priority, Reverse(w[1].seq)),
                    VictimOrder::SlackFirst =>
                        (
                            w[0].priority,
                            Reverse(w[0].deadline_bits),
                            Reverse(w[0].seq)
                        ) <= (
                            w[1].priority,
                            Reverse(w[1].deadline_bits),
                            Reverse(w[1].seq)
                        ),
                }),
            "victim index stays sorted by the active eviction order"
        );
        let mut used = self.admitter.used();
        let mut occupancy = self.running.len();
        let mut chosen = Vec::new();
        for e in &self.victim_index {
            if e.priority >= priority || self.admitter.fits_given(need, used, occupancy) {
                break;
            }
            used = used.saturating_sub(e.reserved);
            occupancy -= 1;
            chosen.push(e.id);
        }
        let ok = !chosen.is_empty() && self.admitter.fits_given(need, used, occupancy);
        debug_assert_eq!(
            (ok, chosen.clone()),
            {
                // Sort-based reference: the historical victim selection.
                let mut victims: Vec<&Active> = self
                    .running
                    .iter()
                    .filter(|a| a.req.priority < priority)
                    .collect();
                match self.victim_order {
                    VictimOrder::RecentFirst => {
                        victims.sort_by_key(|a| (a.req.priority, Reverse(a.seq)));
                    }
                    VictimOrder::SlackFirst => victims.sort_by_key(|a| {
                        (
                            a.req.priority,
                            Reverse(self.deadline_bits(&a.req)),
                            Reverse(a.seq),
                        )
                    }),
                }
                let mut used_r = self.admitter.used();
                let mut occ_r = self.running.len();
                let mut chosen_r = Vec::new();
                for v in victims {
                    if self.admitter.fits_given(need, used_r, occ_r) {
                        break;
                    }
                    // Under paged KV a victim's reservation is its
                    // admission-time referenced-page delta, not a pure
                    // function of its lengths — read it off the index
                    // entry (what the walk above consumed, too).
                    let reserved_r = match &self.paged {
                        Some(_) => {
                            self.victim_index
                                .iter()
                                .find(|e| e.id == v.req.id)
                                .expect("every running request is indexed")
                                .reserved
                        }
                        None => self.eval.kv_reservation(v.req.final_len(), self.t_max),
                    };
                    used_r = used_r.saturating_sub(reserved_r);
                    occ_r -= 1;
                    chosen_r.push(v.req.id);
                }
                let ok_r = !chosen_r.is_empty() && self.admitter.fits_given(need, used_r, occ_r);
                (ok_r, chosen_r)
            },
            "victim index must match the sort-based reference"
        );
        ok.then_some(chosen)
    }

    /// Drops a no-longer-running request from the victim index (no-op
    /// when the preemption policy cannot evict — the index is then never
    /// populated).
    fn victim_index_remove(&mut self, id: u64) {
        if !self.preempt.evicts() {
            return;
        }
        let pos = self
            .victim_index
            .iter()
            .position(|e| e.id == id)
            .expect("every running request is indexed");
        self.victim_index.remove(pos);
    }

    /// Evicts one running request: releases its KV reservation, records
    /// the discarded work, and re-enqueues it at its arrival-order
    /// position for later re-admission (see
    /// [`crate::policy::PreemptionPolicy`] for what survives).
    fn evict(&mut self, id: u64) {
        let idx = self
            .running
            .iter()
            .position(|a| a.req.id == id)
            .expect("victim is running");
        let a = self.running.swap_remove(idx);
        self.victim_index_remove(a.req.id);
        self.release_memory(&a.req);
        self.evictions += 1;
        self.batch_version += 1;

        // Generated tokens kept across the eviction (pause) vs dropped
        // (restart); fresh-this-residency generation separates kept
        // tokens from ones already re-prefilled once.
        let fresh_decode = a.done - a.resume_done;
        // Page-granular reclamation: the victim's shared-prefix pages
        // stay resident (referenced by other sequences or newly cached),
        // so that part of its prompt is not re-prefill work. Should the
        // pool later reclaim those pages before re-use, the recompute
        // attribution at re-admission restores the waste.
        let preserved = self
            .paged
            .as_ref()
            .map_or(0, |p| p.shared_tokens(&a.req).min(a.prefilled));
        let (keep, reprefill, redecode) = match self.preempt {
            PreemptionPolicy::EvictPause => (
                a.done,
                (a.prefilled + fresh_decode).saturating_sub(preserved),
                0,
            ),
            PreemptionPolicy::EvictRestart => (0, a.prefilled.saturating_sub(preserved), a.done),
            PreemptionPolicy::None => unreachable!("plan_eviction never evicts under None"),
        };
        self.events.push(SimEvent::Evict {
            reprefill,
            redecode,
        });
        if preserved > 0 {
            if let Some(p) = &mut self.paged {
                // Remember the waived re-prefill: if the pool reclaims
                // the shared pages before this request is readmitted,
                // the shortfall is billed as wasted prefill then.
                p.discounted.insert(a.req.id, preserved);
            }
        }

        let q = Queued {
            req: a.req,
            resume_done: keep,
            // Unfinished re-work carries over; the new target's worth of
            // already-computed tokens joins it (clamped at admission).
            owed: a.owed.saturating_add(reprefill),
            evictions: a.evictions + 1,
            restart_secs: a.restart_secs,
            first_admitted: Some(a.admitted),
            prefill_end: a.prefill_end,
            first_token: a.first_token,
            // Eviction dropped the KV — transferred or not — so a
            // re-admission genuinely re-prefills the prompt.
            handoff: false,
            origin_arrival: a.origin_arrival,
        };
        self.pending_reserved = self
            .pending_reserved
            .saturating_add(self.queue_reservation(&a.req));
        if self.prefill.enabled {
            // The backlog still carried this request's unprocessed
            // remainder; after the eviction its whole new target must be
            // prefilled from scratch.
            let remainder = a.prefill_target - a.prefilled;
            self.prefill_backlog = self
                .prefill_backlog
                .saturating_add(q.prefill_target())
                .saturating_sub(remainder);
        }
        self.pending.reinsert(q);
    }

    /// Executes one mixed prefill step: the highest-priority (then
    /// FCFS-oldest) prefilling request advances one prompt chunk while
    /// the decoding batch (if any) advances one token. The prompt chunk
    /// runs first within the step, so a prompt completed mid-step starts
    /// decoding at the *next* step. Defers — `Err` carrying the step's
    /// end time as the next-event bound — if the step would end past
    /// `limit` (pricing stays cached for the revisit).
    fn mixed_step(&mut self, limit: f64) -> Result<(), f64> {
        let pi = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.prompt_ready())
            .min_by_key(|(_, a)| (Reverse(a.req.priority), a.req.arrival_us, a.req.id))
            .map(|(i, _)| i)
            .expect("a prefilling request exists");
        let (pre, pchunk, it, batch_len) = match self.cached_step {
            Some((
                v,
                PlannedStep::Mixed {
                    pre,
                    pchunk,
                    it,
                    batch_len,
                },
            )) if v == self.batch_version => (pre, pchunk, it, batch_len),
            _ => {
                let a = &self.running[pi];
                let pchunk = self
                    .prefill
                    .chunk_tokens
                    .min(a.prefill_target - a.prefilled);
                let pre = self.stage.prefill_chunk(a.req.id, a.prefilled, pchunk);
                let mut batch = std::mem::take(&mut self.batch_buf);
                batch.clear();
                batch.extend(
                    self.running
                        .iter()
                        .filter(|a| a.prompt_ready() && a.done < a.req.decode_len)
                        .map(|a| (a.req.id, a.req.context_len + a.done)),
                );
                let it = if batch.is_empty() {
                    None
                } else {
                    Some(self.stage.iteration(&batch))
                };
                let batch_len = batch.len();
                self.batch_buf = batch;
                self.cached_step = Some((
                    self.batch_version,
                    PlannedStep::Mixed {
                        pre,
                        pchunk,
                        it,
                        batch_len,
                    },
                ));
                (pre, pchunk, it, batch_len)
            }
        };
        let secs = pre.seconds + it.map_or(0.0, |it| it.seconds);
        if self.t + secs > limit {
            return Err(self.t + secs);
        }
        let step_start = self.t;
        // The leading `owed` tokens of a post-eviction prefill pass are
        // re-work: bill their pro-rata share of the chunk to the restart
        // bucket so the first-pass prefill story stays honest.
        let owed_used = pchunk.min(self.running[pi].owed);
        let restart = if owed_used > 0 {
            pre.seconds * owed_used as f64 / pchunk as f64
        } else {
            0.0
        };
        self.events.push(SimEvent::Prefill {
            pre,
            chunk: pchunk,
            restart,
        });
        self.prefill_backlog = self.prefill_backlog.saturating_sub(pchunk);
        if let Some(it) = it {
            self.events.push(SimEvent::Chunk {
                it,
                batch_len,
                chunk: 1,
                secs: it.seconds,
            });
            self.tokens += batch_len as u64;
            for a in &mut self.running {
                if a.prompt_ready() && a.done < a.req.decode_len {
                    if a.first_token.is_none() {
                        a.first_token = Some(step_start + secs);
                    }
                    a.done += 1;
                }
            }
        }
        let a = &mut self.running[pi];
        a.prefilled += pchunk;
        a.owed -= owed_used;
        a.restart_secs += restart;
        if a.prompt_ready() && a.prefill_end.is_none() {
            a.prefill_end = Some(step_start + pre.seconds);
        }
        self.t += secs;
        self.busy += secs;
        self.batch_version += 1;
        Ok(())
    }

    /// Executes one pure decode chunk with a constant batch, cut at the
    /// earliest completion and at the next admissible arrival, and
    /// priced at its midpoint step — per-step exact under the affine
    /// kernel model, the same rule as the wave policy. Defers — `Err`
    /// carrying the chunk's end time as the next-event bound — if the
    /// chunk would end past `limit` (the stride-bounded pricing stays
    /// cached for the revisit).
    fn decode_chunk(&mut self, limit: f64) -> Result<(), f64> {
        let eval = self.eval;
        let stride = eval.stride();
        let min_remaining = self
            .running
            .iter()
            .map(|a| a.req.decode_len - a.done)
            .min()
            .expect("nonempty running batch");
        let c0 = stride.min(min_remaining);
        let it0 = match self.cached_step {
            Some((v, PlannedStep::Decode { it, c0: c })) if v == self.batch_version && c == c0 => {
                it
            }
            _ => {
                let mut batch = std::mem::take(&mut self.batch_buf);
                batch.clear();
                batch.extend(
                    self.running
                        .iter()
                        .map(|a| (a.req.id, a.req.context_len + a.done + (c0 - 1) / 2)),
                );
                let it = self.stage.iteration(&batch);
                self.batch_buf = batch;
                self.cached_step = Some((self.batch_version, PlannedStep::Decode { it, c0 }));
                it
            }
        };
        let per_step = it0.seconds;
        let mut chunk = c0;
        // Cut the chunk at the next arrival that could actually join,
        // so admission is not delayed by up to a whole stride. On the
        // FCFS fast path (every priority 0) only the queue front can be
        // admitted next, and only if it fits — the historical rule,
        // preserved bit-exactly. With priorities in play, a later
        // higher-priority arrival can leapfrog a blocked head (and
        // under an eviction policy claim room that does not exist yet),
        // so any future arrival conservatively ends the chunk and lets
        // the admission sweep decide.
        if per_step > 0.0 {
            let cut_arrival = if self.saw_priority {
                self.pending.next_arrival_after(self.t)
            } else {
                self.pending.earliest().and_then(|front| {
                    let arr = front.req.arrival_secs();
                    (arr > self.t && self.front_fits(&front.req)).then_some(arr)
                })
            };
            if let Some(arr) = cut_arrival {
                let steps_until = ((arr - self.t) / per_step).ceil().max(1.0);
                if (steps_until as u64) < chunk {
                    chunk = steps_until as u64;
                }
            }
        }
        let it = if chunk == c0 {
            it0
        } else {
            // An arrival cut shortened the chunk: re-price at the
            // shorter chunk's own midpoint.
            let mut batch = std::mem::take(&mut self.batch_buf);
            batch.clear();
            batch.extend(
                self.running
                    .iter()
                    .map(|a| (a.req.id, a.req.context_len + a.done + (chunk - 1) / 2)),
            );
            let it = self.stage.iteration(&batch);
            self.batch_buf = batch;
            it
        };
        let secs = it.seconds * chunk as f64;
        // Defer chunks ending past the routing frontier: an arrival
        // not yet routed to this replica could still cut them.
        if self.t + secs > limit {
            return Err(self.t + secs);
        }
        let batch_len = self.running.len();
        self.events.push(SimEvent::Chunk {
            it,
            batch_len,
            chunk,
            secs,
        });
        self.tokens += batch_len as u64 * chunk;
        for a in &mut self.running {
            if a.first_token.is_none() {
                a.first_token = Some(self.t + it.seconds);
            }
            a.done += chunk;
        }
        self.t += secs;
        self.busy += secs;
        self.batch_version += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_us: u64, priority: u8) -> Request {
        Request {
            id,
            context_len: 100,
            decode_len: 10,
            arrival_us,
            priority,
            tenant: 0,
            shared_prefix: 0,
        }
    }

    #[test]
    fn lanes_admit_in_priority_then_fcfs_order() {
        let mut q = PendingQueue::new(false);
        // Arrival order (the only legal push order): interleaves classes.
        q.push_back(Queued::fresh(req(0, 100, 0)));
        q.push_back(Queued::fresh(req(1, 200, 2)));
        q.push_back(Queued::fresh(req(2, 300, 0)));
        q.push_back(Queued::fresh(req(3, 400, 2)));
        q.push_back(Queued::fresh(req(4, 500, 1)));
        assert_eq!(q.len(), 5);
        assert_eq!(q.earliest().unwrap().req.id, 0);
        // Nothing arrived yet.
        assert!(q.peek_candidate(50e-6).is_none());
        // Everything arrived: highest class first, FCFS within it.
        let mut order = Vec::new();
        while let Some(c) = q.peek_candidate(1.0).copied() {
            assert_eq!(q.pop_candidate(c.req.priority).req.id, c.req.id);
            order.push(c.req.id);
        }
        assert_eq!(order, vec![1, 3, 4, 0, 2]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn candidate_respects_arrival_cutoff_across_lanes() {
        let mut q = PendingQueue::new(false);
        q.push_back(Queued::fresh(req(0, 1_000_000, 0))); // t = 1.0s
        q.push_back(Queued::fresh(req(1, 2_000_000, 5))); // t = 2.0s
                                                          // Only the low-priority request has arrived at t=1.5s.
        assert_eq!(q.peek_candidate(1.5).unwrap().req.id, 0);
        // Both arrived: the high-priority one wins.
        assert_eq!(q.peek_candidate(2.5).unwrap().req.id, 1);
        // Next strictly-future arrival from t=1.0 is the 2.0s request.
        assert_eq!(q.next_arrival_after(1.0), Some(2.0));
        assert_eq!(q.next_arrival_after(2.0), None);
    }

    #[test]
    fn reinsert_restores_arrival_order_within_class() {
        let mut q = PendingQueue::new(false);
        q.push_back(Queued::fresh(req(0, 100, 1)));
        q.push_back(Queued::fresh(req(2, 300, 1)));
        // An eviction re-enqueues an older arrival mid-class.
        q.reinsert(Queued::fresh(req(1, 200, 1)));
        let mut order = Vec::new();
        while let Some(c) = q.peek_candidate(1.0).copied() {
            order.push(q.pop_candidate(c.req.priority).req.id);
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn fifo_mode_drains_in_insertion_order_ignoring_priority() {
        let mut q = PendingQueue::new(true);
        // Wave routing is trace order: arrivals may be out of order and
        // priorities are ignored.
        q.push_back(Queued::fresh(req(0, 900, 0)));
        q.push_back(Queued::fresh(req(1, 100, 7)));
        q.push_back(Queued::fresh(req(2, 500, 3)));
        let ids: Vec<u64> = q.drain_fifo().into_iter().map(|p| p.req.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.len(), 0);
    }

    /// The admission-order invariant the lane queue relies on (see the
    /// [`PendingQueue`] docs): continuous-mode pushes must arrive in
    /// nondecreasing `(arrival_us, id)` order — the order
    /// [`workload::Trace::arrival_ordered`] routes in. Violating it is a
    /// debug-assertion failure, not silent misordering.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nondecreasing (arrival_us, id) order")]
    fn out_of_order_push_trips_the_invariant_assert() {
        let mut q = PendingQueue::new(false);
        q.push_back(Queued::fresh(req(0, 500, 0)));
        q.push_back(Queued::fresh(req(1, 100, 0)));
    }

    /// The recompute-attribution contract of satellite waste accounting:
    /// an eviction waives the re-prefill of the victim's still-resident
    /// shared pages (discounted from the `Evict` event), but if the pool
    /// reclaims those pages before the victim is readmitted, the
    /// readmission bills the shortfall — `PrefixAdmit::recompute_tokens`
    /// — so `wasted_prefill_tokens` still counts every prompt token that
    /// is genuinely prefilled twice.
    #[test]
    fn reclaimed_prefix_pages_bill_recompute_on_readmission() {
        use crate::config::{SystemConfig, Techniques};
        use crate::PagedKvConfig;
        use llm_model::LLM_7B_32K;

        let page_bytes = PagedKvConfig::DEFAULT_PAGE_BYTES;
        let base = Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_32K),
            LLM_7B_32K,
            Techniques::pimphony(),
        );
        // Exactly a 12-page pool: the interactive burst (11 pages) must
        // both evict the worker (8 pages) and then reclaim 3 of its 4
        // cached prefix pages to fit.
        let factor = 12.5 * page_bytes as f64 / base.replica_kv_capacity() as f64;
        let eval = base
            .with_chunked_prefill(512)
            .with_preemption(PreemptionPolicy::EvictRestart)
            .with_prefix_caching(page_bytes)
            .with_kv_capacity_factor(factor);
        let pt = eval.page_tokens();
        let worker = |arrival_us: u64| Request {
            id: 0,
            context_len: 4 * pt,
            decode_len: 4 * pt,
            arrival_us,
            priority: 0,
            tenant: 0,
            shared_prefix: 4 * pt, // the whole prompt is shared pages
        };
        // Calibrate the burst arrival to the middle of the worker's
        // solo run, comfortably inside its decode phase.
        let solo_end = {
            let mut sim = ReplicaSim::new(&eval, SchedulingPolicy::Continuous, 4 * pt);
            sim.enqueue(worker(0));
            sim.finish();
            sim.end_time()
        };
        let mut sim = ReplicaSim::new(&eval, SchedulingPolicy::Continuous, 4 * pt);
        sim.enqueue(worker(0));
        sim.enqueue(Request {
            id: 1,
            context_len: 10 * pt,
            decode_len: pt,
            arrival_us: (solo_end * 0.75 * 1e6) as u64,
            priority: 1,
            tenant: 1,
            shared_prefix: 0,
        });
        sim.finish();

        // The worker was evicted once — with its entire prefilled
        // prompt discounted (the 4 shared pages were still resident).
        let evicts: Vec<(u64, u64)> = sim
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Evict {
                    reprefill,
                    redecode,
                } => Some((*reprefill, *redecode)),
                _ => None,
            })
            .collect();
        assert_eq!(evicts.len(), 1, "exactly one eviction");
        assert_eq!(evicts[0].0, 0, "resident shared pages waive re-prefill");
        assert!(evicts[0].1 > 0, "restart regenerates decoded tokens");
        // The burst reclaimed the worker's cached chain tail-first,
        // leaving one page resident.
        let reclaimed: u64 = sim
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::PageReclaim { pages } => Some(*pages),
                _ => None,
            })
            .sum();
        assert_eq!(reclaimed, 3, "burst reclaims 3 of the 4 cached pages");
        // Readmission hits the surviving page and bills the 3 reclaimed
        // pages' tokens as recompute — the discount that did not hold.
        let admits: Vec<(u64, u64)> = sim
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::PrefixAdmit {
                    hit_tokens,
                    recompute_tokens,
                } => Some((*hit_tokens, *recompute_tokens)),
                _ => None,
            })
            .collect();
        assert_eq!(admits, vec![(pt, 3 * pt)]);
    }
}
