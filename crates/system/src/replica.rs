//! Standalone per-replica serving state machine.
//!
//! [`ReplicaSim`] is the per-replica core extracted from the original
//! `Engine::run` loops: it owns one replica's pending queue, running
//! batch, memory admitter and virtual clock, and advances them over
//! admission / chunked-decode / completion events. The cluster layer
//! ([`crate::cluster`]) drives many `ReplicaSim`s — routing each arrival
//! to one of them, advancing them up to the routing frontier, and
//! draining them to completion (on scoped threads when asked).
//!
//! # Determinism and bit-exactness
//!
//! Two properties the cluster depends on are enforced here:
//!
//! * **Frontier-safe chunking.** A decode chunk may be cut short by the
//!   next *admissible* pending arrival, and arrivals only become visible
//!   once the router dispatches them. [`ReplicaSim::advance_to`]
//!   therefore never executes a chunk that would end past the supplied
//!   limit (the cluster's routing frontier): any arrival that could cut
//!   a chunk ending at or before the frontier has already been routed,
//!   so every executed chunk is identical to the one a sequential run
//!   with full queue knowledge would execute.
//! * **Replayable accounting.** Floating-point accumulation is not
//!   associative, so replicas do not sum into a shared accumulator
//!   directly (the merge order would then depend on thread scheduling).
//!   Instead each replica records a [`SimEvent`] log; the cluster
//!   replays all logs into one accumulator in replica-index order,
//!   reproducing the exact operation sequence of the original
//!   single-threaded loops.

use crate::metrics::{ReplicaBreakdown, RequestTiming};
use crate::policy::{self, ContinuousAdmitter, SchedulingPolicy};
use crate::serve::Evaluator;
use crate::stage::{IterationBreakdown, StageModel};
use std::collections::VecDeque;
use workload::Request;

/// One accounting event recorded by a replica simulation. Replayed in
/// replica-index order into the run-wide accumulator, reproducing the
/// exact float-operation sequence of the original sequential loops
/// regardless of how many threads simulated the replicas.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SimEvent {
    /// An admission event (`waves += 1`); the wave policy also adds the
    /// admitted count to the mean-batch numerator.
    Admit {
        /// Admitted-batch contribution to the per-wave mean (0 under the
        /// continuous policy, whose mean batch is step-weighted).
        batch: f64,
    },
    /// One executed decode chunk.
    Chunk {
        /// The iteration breakdown priced for the chunk's fixed batch.
        it: IterationBreakdown,
        /// Requests advanced by the chunk.
        batch_len: usize,
        /// Decode steps in the chunk.
        chunk: u64,
        /// Wall-clock seconds of the chunk.
        secs: f64,
    },
    /// A finished request's KV footprint (for capacity utilization).
    Retire {
        /// The request's context + decode length at completion.
        final_len: u64,
    },
}

/// Instantaneous load of one replica, as seen by a [`crate::cluster::Router`]
/// at a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLoad {
    /// Replica index within the cluster.
    pub replica: usize,
    /// Requests routed to the replica and not yet finished (queued +
    /// running).
    pub in_flight: usize,
    /// KV bytes the replica is committed to under the active memory
    /// policy: reservations held by the running batch plus the
    /// reservations its queued requests will take on admission.
    pub reserved_kv: u64,
}

/// One request resident in a replica's running batch.
#[derive(Debug, Clone, Copy)]
struct Active {
    req: Request,
    /// Tokens generated so far.
    done: u64,
    admitted: f64,
    first_token: Option<f64>,
}

/// Per-replica serving state machine (see the module docs).
pub(crate) struct ReplicaSim<'a> {
    eval: &'a Evaluator,
    stage: StageModel<'a>,
    policy: SchedulingPolicy,
    t_max: u64,
    /// Routed, not-yet-admitted requests in arrival order.
    pending: VecDeque<Request>,
    /// Sum of the pending requests' would-be reservations.
    pending_reserved: u64,
    admitter: ContinuousAdmitter,
    running: Vec<Active>,
    /// Virtual clock.
    t: f64,
    /// Seconds spent decoding (excludes idle gaps).
    busy: f64,
    routed: u64,
    served: u64,
    tokens: u64,
    peak_reserved: u64,
    pub(crate) events: Vec<SimEvent>,
    pub(crate) timings: Vec<RequestTiming>,
}

impl<'a> ReplicaSim<'a> {
    /// Creates an idle replica for a run compiled for worst case `t_max`.
    pub(crate) fn new(eval: &'a Evaluator, policy: SchedulingPolicy, t_max: u64) -> Self {
        ReplicaSim {
            eval,
            stage: eval.stage_model(),
            policy,
            t_max,
            pending: VecDeque::new(),
            pending_reserved: 0,
            admitter: ContinuousAdmitter::new(eval, t_max),
            running: Vec::new(),
            t: 0.0,
            busy: 0.0,
            routed: 0,
            served: 0,
            tokens: 0,
            peak_reserved: 0,
            events: Vec::new(),
            timings: Vec::new(),
        }
    }

    /// Hands a routed request to this replica. Requests must be enqueued
    /// in nondecreasing arrival order and never earlier than the
    /// replica's clock (the cluster routes arrivals in global order and
    /// only advances replicas up to the routing frontier).
    pub(crate) fn enqueue(&mut self, r: Request) {
        self.pending_reserved = self
            .pending_reserved
            .saturating_add(self.eval.kv_reservation(r.final_len(), self.t_max));
        self.pending.push_back(r);
        self.routed += 1;
    }

    /// The load snapshot routers decide on.
    pub(crate) fn load(&self, replica: usize) -> ReplicaLoad {
        ReplicaLoad {
            replica,
            in_flight: self.pending.len() + self.running.len(),
            reserved_kv: self.admitter.used().saturating_add(self.pending_reserved),
        }
    }

    /// Processes every event up to `limit`, deferring any decode chunk
    /// that would end past it. A no-op under the wave policy, which
    /// ignores arrival times (all its work happens in [`Self::finish`]).
    pub(crate) fn advance_to(&mut self, limit: f64) {
        if self.policy == SchedulingPolicy::Continuous {
            self.advance_continuous(limit);
        }
    }

    /// Runs the replica to completion (no more arrivals will be routed).
    pub(crate) fn finish(&mut self) {
        match self.policy {
            SchedulingPolicy::Wave => self.run_wave(),
            SchedulingPolicy::Continuous => self.advance_continuous(f64::INFINITY),
        }
    }

    /// This replica's virtual end time.
    pub(crate) fn end_time(&self) -> f64 {
        self.t
    }

    /// Seconds spent decoding.
    pub(crate) fn busy_seconds(&self) -> f64 {
        self.busy
    }

    /// The per-replica totals exposed in the serving report.
    pub(crate) fn breakdown(&self) -> ReplicaBreakdown {
        ReplicaBreakdown {
            routed: self.routed,
            served: self.served,
            tokens: self.tokens,
            busy_seconds: self.busy,
            seconds: self.t,
            peak_reserved_kv: self.peak_reserved,
        }
    }

    /// The original closed-world wave loop over this replica's routed
    /// queue: each wave decodes to completion before the next is
    /// admitted. Arrival times are ignored (every request is treated as
    /// queued at time 0), so TTFT under this policy measures closed-world
    /// queueing. Extracted verbatim from `Engine::run_wave_replica`.
    fn run_wave(&mut self) {
        let eval = self.eval;
        let stride = eval.stride();
        let queue: Vec<Request> = self.pending.drain(..).collect();
        self.pending_reserved = 0;
        let mut idx = 0usize;
        while idx < queue.len() {
            let admitted = policy::wave_plan(eval, &queue[idx..], self.t_max);
            let wave = &queue[idx..idx + admitted];
            idx += admitted;
            self.events.push(SimEvent::Admit {
                batch: admitted as f64,
            });
            let wave_reserved: u64 = wave
                .iter()
                .map(|r| eval.kv_reservation(r.final_len(), self.t_max))
                .sum();
            self.peak_reserved = self.peak_reserved.max(wave_reserved);

            let wave_start = self.t;
            let mut first_token: Vec<Option<f64>> = vec![None; admitted];
            let mut finish: Vec<f64> = vec![wave_start; admitted];

            // Decode the wave; all requests share the same decode budget,
            // growing token counts as they generate.
            let decode_len = wave.iter().map(|r| r.decode_len).max().unwrap_or(0);
            let mut step = 0u64;
            while step < decode_len {
                let batch: Vec<(u64, u64)> = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| (r.id, r.context_len + step))
                    .collect();
                if batch.is_empty() {
                    break;
                }
                // Cut the chunk at the earliest completion so batch
                // composition is constant within it.
                let min_remaining = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| r.decode_len - step)
                    .min()
                    .expect("nonempty batch");
                let chunk = stride.min(decode_len - step).min(min_remaining);
                let it = self.stage.iteration(&batch);
                let secs = it.seconds * chunk as f64;
                let chunk_start = self.t;
                self.t += secs;
                self.busy += secs;
                self.tokens += batch.len() as u64 * chunk;
                self.events.push(SimEvent::Chunk {
                    it,
                    batch_len: batch.len(),
                    chunk,
                    secs,
                });
                for (i, r) in wave.iter().enumerate() {
                    if r.decode_len > step {
                        if first_token[i].is_none() {
                            first_token[i] = Some(chunk_start + it.seconds);
                        }
                        if r.decode_len <= step + chunk {
                            finish[i] = chunk_start + it.seconds * (r.decode_len - step) as f64;
                        }
                    }
                }
                step += chunk;
            }

            for (i, r) in wave.iter().enumerate() {
                self.events.push(SimEvent::Retire {
                    final_len: r.final_len(),
                });
                self.served += 1;
                self.timings.push(RequestTiming {
                    id: r.id,
                    // Closed world: the policy treats every request as
                    // queued at time 0, so its latencies are measured
                    // from the epoch — a real (later) arrival time would
                    // make first_token precede arrival and turn TTFT
                    // negative.
                    arrival: 0.0,
                    admitted: wave_start,
                    first_token: first_token[i].unwrap_or(wave_start),
                    finished: finish[i],
                    decode_len: r.decode_len,
                });
            }
        }
    }

    /// Continuous batching up to `limit`: pending requests join the
    /// running batch the moment their arrival has passed and the memory
    /// policy has room; completions free reservations immediately. The
    /// clock jumps over idle gaps (counted in `seconds` but not
    /// `busy_seconds`). Extracted from `Engine::run_continuous_replica`,
    /// with the chunk decision recomputed at execution time so deferral
    /// at the routing frontier is transparent.
    fn advance_continuous(&mut self, limit: f64) {
        let eval = self.eval;
        let stride = eval.stride();

        loop {
            // Idle: jump the clock to the next arrival.
            if self.running.is_empty() {
                match self.pending.front() {
                    None => return,
                    Some(r) if r.arrival_secs() > limit => return,
                    Some(r) if r.arrival_secs() > self.t => self.t = r.arrival_secs(),
                    Some(_) => {}
                }
            }

            // Admission event: FCFS sweep of everything that has arrived
            // and fits. No reordering — head-of-line blocking under
            // worst-case reservations is part of what's being measured.
            let mut admitted_now = 0usize;
            while let Some(&r) = self.pending.front() {
                if r.arrival_secs() > self.t
                    || !self.admitter.fits(eval, &r, self.running.len(), self.t_max)
                {
                    break;
                }
                self.pending.pop_front();
                self.pending_reserved = self
                    .pending_reserved
                    .saturating_sub(eval.kv_reservation(r.final_len(), self.t_max));
                self.admitter.reserve(eval, &r, self.t_max);
                self.peak_reserved = self.peak_reserved.max(self.admitter.used());
                if r.decode_len == 0 {
                    // Nothing to generate: completes at admission.
                    self.admitter.release(eval, &r, self.t_max);
                    self.events.push(SimEvent::Retire {
                        final_len: r.final_len(),
                    });
                    self.served += 1;
                    self.timings.push(RequestTiming {
                        id: r.id,
                        arrival: r.arrival_secs(),
                        admitted: self.t,
                        first_token: self.t,
                        finished: self.t,
                        decode_len: 0,
                    });
                    continue;
                }
                self.running.push(Active {
                    req: r,
                    done: 0,
                    admitted: self.t,
                    first_token: None,
                });
                admitted_now += 1;
            }
            // Continuous mean_batch is step-weighted (tokens / steps),
            // so admission events only bump the event counter.
            if admitted_now > 0 {
                self.events.push(SimEvent::Admit { batch: 0.0 });
            }
            if self.running.is_empty() {
                continue; // only zero-decode requests were admitted
            }

            // Step event: decode one chunk with a fixed batch.
            let batch: Vec<(u64, u64)> = self
                .running
                .iter()
                .map(|a| (a.req.id, a.req.context_len + a.done))
                .collect();
            let it = self.stage.iteration(&batch);
            let per_step = it.seconds;
            let min_remaining = self
                .running
                .iter()
                .map(|a| a.req.decode_len - a.done)
                .min()
                .expect("nonempty running batch");
            let mut chunk = stride.min(min_remaining);
            // Cut the chunk at the next arrival that could actually join,
            // so admission is not delayed by up to a whole stride.
            if per_step > 0.0 {
                if let Some(front) = self.pending.front() {
                    let arr = front.arrival_secs();
                    if arr > self.t
                        && self
                            .admitter
                            .fits(eval, front, self.running.len(), self.t_max)
                    {
                        let steps_until = ((arr - self.t) / per_step).ceil().max(1.0);
                        if (steps_until as u64) < chunk {
                            chunk = steps_until as u64;
                        }
                    }
                }
            }
            let secs = per_step * chunk as f64;
            // Defer chunks ending past the routing frontier: an arrival
            // not yet routed to this replica could still cut them.
            if self.t + secs > limit {
                return;
            }
            self.events.push(SimEvent::Chunk {
                it,
                batch_len: batch.len(),
                chunk,
                secs,
            });
            self.tokens += batch.len() as u64 * chunk;
            for a in &mut self.running {
                if a.first_token.is_none() {
                    a.first_token = Some(self.t + per_step);
                }
                a.done += chunk;
            }
            self.t += secs;
            self.busy += secs;

            // Completion events: retire finished requests, freeing memory.
            let mut i = 0usize;
            while i < self.running.len() {
                if self.running[i].done >= self.running[i].req.decode_len {
                    let a = self.running.swap_remove(i);
                    self.admitter.release(eval, &a.req, self.t_max);
                    self.events.push(SimEvent::Retire {
                        final_len: a.req.final_len(),
                    });
                    self.served += 1;
                    self.timings.push(RequestTiming {
                        id: a.req.id,
                        arrival: a.req.arrival_secs(),
                        admitted: a.admitted,
                        first_token: a.first_token.unwrap_or(a.admitted),
                        finished: self.t,
                        decode_len: a.req.decode_len,
                    });
                } else {
                    i += 1;
                }
            }
        }
    }
}
