//! Serving evaluation: memory policy, admission primitives, reports.
//!
//! The [`Evaluator`] owns one (system, model, techniques) configuration
//! and its memory policy — static `T_max` reservations vs DPA's lazy
//! actual-size allocation. Serving itself runs on the event-driven
//! [`crate::engine::Engine`] under a [`SchedulingPolicy`]: the default
//! [`SchedulingPolicy::Wave`] reproduces the paper's closed-world decode
//! throughput (Figs. 13–15/17), while [`SchedulingPolicy::Continuous`]
//! serves open-loop arrival traces with per-request latency metrics.

use crate::config::{SystemConfig, Techniques};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::engine::Engine;
use crate::kernel::KernelModel;
use crate::metrics::{self, LatencyReport, ReplicaBreakdown};
use crate::policy::{
    self, KvTransferConfig, PagedKvConfig, PoolRole, PreemptionPolicy, PrefillConfig,
    SchedulingPolicy, SheddingPolicy, VictimOrder,
};
use crate::stage::{IterationBreakdown, StageModel};
use llm_model::ModelConfig;
use pim_mem::DEFAULT_CHUNK_BYTES;
use serde::Serialize;
use workload::Trace;

/// Result of serving a trace.
///
/// The repository's metrics glossary — every field below with its
/// unit, the TTFT decomposition, and the goodput-vs-throughput
/// distinction — lives in `docs/metrics.md`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServingReport {
    /// Decode throughput in tokens/second (all replicas).
    pub tokens_per_second: f64,
    /// Total wall-clock seconds (slowest replica's end time; includes
    /// idle gaps waiting for arrivals under the continuous policy).
    pub seconds: f64,
    /// Seconds replicas spent decoding, summed over replicas.
    pub busy_seconds: f64,
    /// Total decode tokens produced.
    pub tokens: u64,
    /// Prompt tokens processed by the prefill stage (0 when prefill is
    /// not modeled).
    pub prefill_tokens: u64,
    /// Seconds replicas spent in prompt processing, summed over
    /// replicas (a share of `busy_seconds`).
    pub prefill_seconds: f64,
    /// Requests evicted under memory pressure (0 unless a preemption
    /// policy is active and the trace carries priority diversity).
    pub evictions: u64,
    /// Already-computed tokens whose KV was dropped by evictions and
    /// had to be prefilled again — the prompt-side wasted work of the
    /// preemption policy.
    pub wasted_prefill_tokens: u64,
    /// Generated tokens discarded by `EvictRestart` evictions and
    /// decoded again from scratch (counted inside `tokens` each time
    /// they are produced; `tokens - wasted_decode_tokens` is goodput).
    pub wasted_decode_tokens: u64,
    /// Seconds spent *re*-prefilling after evictions (a share of
    /// `prefill_seconds`; the per-request distribution is
    /// `latency.restart`).
    pub restart_seconds: f64,
    /// Requests shed by deadline-aware admission control — dropped at
    /// admission time because their predicted TTFT lower bound already
    /// exceeded their tenant's SLO (0 unless a
    /// [`crate::SheddingPolicy`] is armed). Shed requests produce no
    /// latency samples and no tokens; they are counted here instead of
    /// silently inflating the tail percentiles.
    pub shed: u64,
    /// Admissions that mapped at least one already-resident
    /// shared-prefix page from the paged KV cache (0 unless
    /// `prefix_caching` is on and the trace carries shared prefixes).
    pub prefix_cache_hits: u64,
    /// Prompt tokens whose prefill was skipped because their pages were
    /// already resident in the prefix cache at admission.
    pub prefix_hit_tokens: u64,
    /// Cached (zero-refcount) KV pages reclaimed page-by-page under
    /// memory pressure — the page-granular replacement for whole-request
    /// eviction (0 unless `prefix_caching` is on).
    pub pages_evicted: u64,
    /// Mean batch size: per admitted wave under the wave policy,
    /// per executed decode step under the continuous policy.
    pub mean_batch: f64,
    /// Mean attention MAC utilization over busy replica time.
    pub attn_utilization: f64,
    /// KV-capacity utilization under the active memory policy.
    pub capacity_utilization: f64,
    /// Admission events: decode waves under the wave policy, batch-join
    /// events under the continuous policy.
    pub waves: u32,
    /// Energy breakdown over the run.
    pub energy: EnergyBreakdown,
    /// Seconds spent in attention vs FC (for Figs. 16/17(c)).
    pub attn_seconds: f64,
    /// Seconds spent in the FC stage.
    pub fc_seconds: f64,
    /// Per-request latency statistics (TTFT/TPOT/E2E percentiles).
    pub latency: LatencyReport,
    /// Latency statistics split by priority class, most urgent first —
    /// the per-SLO view preemption policies are judged on (a single
    /// entry mirroring `latency` when the trace has one class; empty
    /// for reports produced by the pre-cluster reference loop).
    pub latency_by_priority: Vec<metrics::PriorityLatency>,
    /// Serving statistics split by tenant, ascending by tenant id: each
    /// entry carries the tenant's latency report, delivered tokens
    /// (goodput), and SLO attainment when the run's evaluator carries
    /// per-tenant TTFT targets ([`Evaluator::with_tenant_slos`], set by
    /// `system::scenario` specs). A single-tenant run yields one entry
    /// mirroring `latency`; empty for reports produced by the
    /// pre-cluster reference loop.
    pub latency_by_tenant: Vec<metrics::TenantLatency>,
    /// Per-replica totals (busy time, served requests, peak reserved
    /// KV), indexed by replica — makes load-balancer skew observable.
    /// Empty for reports produced by the pre-cluster reference loop.
    pub per_replica: Vec<ReplicaBreakdown>,
    /// KV bytes moved across pools by prefill→decode handoffs (0 unless
    /// prefill/decode pools are armed — a mixed-only cluster never
    /// transfers).
    pub kv_transferred_bytes: u64,
    /// Modeled KV-transfer seconds summed over handoffs (the
    /// [`crate::KvTransferConfig`] per-page latency + bandwidth cost;
    /// transfers overlap across requests, so this is transferred
    /// *volume* in seconds, not wall-clock).
    pub transfer_seconds: f64,
    /// Per-pool totals (routed/served/handoffs/transfer volume),
    /// in pool declaration order. Empty unless replica pools are armed,
    /// so pool-free reports stay byte-identical to historical runs.
    pub per_pool: Vec<metrics::PoolBreakdown>,
}

impl ServingReport {
    /// Jain's fairness index over per-replica busy time: 1.0 when every
    /// replica worked equally, approaching `1/replicas` when one carried
    /// the whole load. 1.0 when per-replica data is absent.
    pub fn replica_fairness(&self) -> f64 {
        let busy: Vec<f64> = self.per_replica.iter().map(|b| b.busy_seconds).collect();
        metrics::jain_fairness(&busy)
    }

    /// Jain's fairness index over per-tenant delivered tokens (goodput):
    /// 1.0 when every tenant received equal token service, approaching
    /// `1/tenants` when one tenant monopolized the cluster. 1.0 when
    /// per-tenant data is absent or all-zero (a run that served nothing
    /// treated nobody unfairly).
    pub fn tenant_fairness(&self) -> f64 {
        metrics::tenant_goodput_fairness(&self.latency_by_tenant)
    }

    /// Goodput in tokens/second: decode tokens delivered by requests
    /// that *met their tenant's TTFT SLO*, per wall-clock second — the
    /// headline metric of SLO-native serving. Tenants without a TTFT
    /// target count all their tokens (their SLO is vacuously met), so a
    /// run without SLOs has `goodput() == tokens_per_second` up to the
    /// per-tenant decomposition. 0 when the run served nothing.
    pub fn goodput(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        let in_slo: u64 = self
            .latency_by_tenant
            .iter()
            .map(|t| t.goodput_tokens)
            .sum();
        in_slo as f64 / self.seconds
    }
}

/// Optimistic time-to-first-token predictor: a per-prefill-token rate
/// calibrated on the *first* prefill chunk (the cheapest tokens of any
/// prompt, since attention cost grows with resident context), so the
/// linear extrapolation `rate × tokens` is a lower bound on the real
/// chunked prefill time of any prompt. Routing ranks replicas on it;
/// deadline-aware admission ([`crate::SheddingPolicy`]) sheds only when
/// even this lower bound misses the SLO, which makes shedding safe: a
/// request that could still meet its deadline is never dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TtftPredictor {
    /// Seconds per prompt token at the cheapest (empty-context) point
    /// of the prefill curve; 0 when prefill is not modeled.
    secs_per_prefill_token: f64,
}

impl TtftPredictor {
    /// A predictor with an explicit per-token rate (tests and custom
    /// routers; [`Evaluator::ttft_predictor`] calibrates the real one).
    pub fn with_rate(secs_per_prefill_token: f64) -> Self {
        TtftPredictor {
            secs_per_prefill_token: secs_per_prefill_token.max(0.0),
        }
    }

    /// Predicted TTFT lower bound for a request that has already waited
    /// `waited` seconds and still has `tokens` prompt tokens to prefill
    /// (its own remaining prompt plus any queue of prompt tokens ahead
    /// of it). Monotone in both arguments.
    pub fn predict(&self, waited: f64, tokens: u64) -> f64 {
        waited + self.secs_per_prefill_token * tokens as f64
    }

    /// Remaining slack against an SLO target for a request in the state
    /// described by [`Self::predict`]'s arguments: negative once even
    /// the optimistic bound misses the deadline. `+inf` targets (no
    /// SLO) yield `+inf` slack.
    pub fn slack(&self, slo_ttft: f64, waited: f64, tokens: u64) -> f64 {
        slo_ttft - self.predict(waited, tokens)
    }

    /// [`Self::predict`] plus a mandatory cross-pool KV-transfer term:
    /// on a prefill-role replica the first token can only be generated
    /// *after* the handoff transfer completes, so `transfer_secs` (from
    /// [`Evaluator::handoff_transfer`]) is part of every sound TTFT
    /// lower bound. Still optimistic — decode-pool queueing after the
    /// transfer only adds time. Monotone in all three arguments.
    pub fn predict_with_transfer(&self, waited: f64, tokens: u64, transfer_secs: f64) -> f64 {
        self.predict(waited, tokens) + transfer_secs.max(0.0)
    }

    /// [`Self::slack`] against the transfer-inclusive bound of
    /// [`Self::predict_with_transfer`].
    pub fn slack_with_transfer(
        &self,
        slo_ttft: f64,
        waited: f64,
        tokens: u64,
        transfer_secs: f64,
    ) -> f64 {
        slo_ttft - self.predict_with_transfer(waited, tokens, transfer_secs)
    }
}

/// Prices cross-pool KV handoffs for one evaluator: the request's
/// resident KV bytes (exact — the per-token KV footprint is linear,
/// including TP-driven KV-head replication), rounded up to transfer
/// pages at the paged-KV granularity (the page geometry applies to the
/// *transfer* even when the paged pool itself is disabled), priced by
/// [`KvTransferConfig`]. Built by [`Evaluator::kv_transfer_model`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvTransferModel {
    /// KV bytes one resident token occupies (replication included).
    bytes_per_token: u64,
    /// Transfer granularity in bytes (≥ 1).
    page_bytes: u64,
    /// The latency/bandwidth cost terms.
    config: KvTransferConfig,
}

impl KvTransferModel {
    /// A model with explicit geometry (tests and custom pools;
    /// [`Evaluator::kv_transfer_model`] derives the real one).
    pub fn new(bytes_per_token: u64, page_bytes: u64, config: KvTransferConfig) -> Self {
        KvTransferModel {
            bytes_per_token: bytes_per_token.max(1),
            page_bytes: page_bytes.max(1),
            config,
        }
    }

    /// The `(bytes, pages, seconds)` of handing off a request with
    /// `tokens` resident KV tokens. Zero-token handoffs are free;
    /// otherwise bytes, pages, and seconds are all strictly monotone in
    /// `tokens` (pages stepwise), which keeps transfer-inclusive TTFT
    /// bounds sound.
    pub fn transfer(&self, tokens: u64) -> (u64, u64, f64) {
        if tokens == 0 {
            return (0, 0, 0.0);
        }
        let bytes = self.bytes_per_token * tokens;
        let pages = bytes.div_ceil(self.page_bytes);
        (bytes, pages, self.config.transfer_secs(pages, bytes))
    }
}

/// Evaluates one (system, model, techniques) configuration on traces.
#[derive(Debug)]
pub struct Evaluator {
    system: SystemConfig,
    model: ModelConfig,
    techniques: Techniques,
    policy: SchedulingPolicy,
    preemption: PreemptionPolicy,
    prefill: PrefillConfig,
    paged_kv: PagedKvConfig,
    /// Scales the replica's KV pool (1.0 = the hardware capacity);
    /// fractions below one model memory pressure without re-sizing the
    /// system, the knob preemption studies sweep.
    kv_capacity_factor: f64,
    /// Per-tenant TTFT SLO targets in seconds, as `(tenant id, target)`
    /// pairs — reporting metadata consumed by the cluster merge
    /// (attainment in `ServingReport::latency_by_tenant`), and the
    /// deadline source for the opt-in SLO-aware policies
    /// ([`Self::with_shedding`], [`Self::with_victim_order`],
    /// `RouterKind::SloAware`). With those knobs off — the default —
    /// it never touches scheduling. Normally set by `system::scenario`
    /// specs.
    tenant_slos: Vec<(u8, f64)>,
    shedding: SheddingPolicy,
    victim_order: VictimOrder,
    /// The serving phase this evaluator's replicas own. `Mixed` (the
    /// default) is the historical full-lifecycle behavior, bit-exact
    /// with every pool-free run; `Prefill` replicas retire requests at
    /// prompt residency and hand them off, `Decode` replicas admit
    /// handoffs with prefill credited. Set per pool by
    /// `system::scenario`/`system::cluster`.
    pool_role: PoolRole,
    /// Cross-pool KV-transfer cost terms — only priced when
    /// `pool_role` is `Prefill` (a mixed-only cluster never transfers).
    kv_transfer: KvTransferConfig,
    kernels: KernelModel,
    energy: EnergyModel,
    /// Recompute the iteration time every `stride` decode steps (the
    /// chunk is priced at its midpoint step, making the chunked sum
    /// per-step exact under the affine kernel model).
    stride: u64,
}

impl Evaluator {
    /// Creates an evaluator with AiMX timing, the default energy model,
    /// and the closed-world wave scheduling policy.
    pub fn new(system: SystemConfig, model: ModelConfig, techniques: Techniques) -> Self {
        Evaluator {
            system,
            model,
            techniques,
            policy: SchedulingPolicy::Wave,
            preemption: PreemptionPolicy::None,
            prefill: PrefillConfig::disabled(),
            paged_kv: PagedKvConfig::disabled(),
            kv_capacity_factor: 1.0,
            tenant_slos: Vec::new(),
            shedding: SheddingPolicy::None,
            victim_order: VictimOrder::RecentFirst,
            pool_role: PoolRole::Mixed,
            kv_transfer: KvTransferConfig::default(),
            kernels: KernelModel::new(pim_sim::Timing::aimx(), model.head_dim),
            energy: EnergyModel::aimx(),
            stride: 64,
        }
    }

    /// Returns this evaluator with a different scheduling policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns this evaluator with a preemption policy: what the
    /// continuous scheduler may do when an arrived request cannot be
    /// admitted for lack of KV memory (see
    /// [`PreemptionPolicy`]). The default `None` reproduces the
    /// historical admitted-runs-to-completion behavior bit-exactly; the
    /// wave policy ignores this knob.
    pub fn with_preemption(mut self, preemption: PreemptionPolicy) -> Self {
        self.preemption = preemption;
        self
    }

    /// The active preemption policy.
    pub fn preemption_policy(&self) -> PreemptionPolicy {
        self.preemption
    }

    /// Returns this evaluator with the replica KV pool scaled by
    /// `factor` (must be positive; 1.0 — the default — is the hardware
    /// capacity, bit-exact with historical behavior). Fractions below
    /// one model KV memory pressure — the regime where admission
    /// blocks, head-of-line queueing explodes, and preemption policies
    /// start to matter — without re-sizing modules or models.
    pub fn with_kv_capacity_factor(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "KV capacity factor must be positive"
        );
        self.kv_capacity_factor = factor;
        self
    }

    /// The configured KV-pool scale factor.
    pub fn kv_capacity_factor(&self) -> f64 {
        self.kv_capacity_factor
    }

    /// Returns this evaluator with per-tenant TTFT SLO targets, as
    /// `(tenant id, target seconds)` pairs. Reporting metadata only:
    /// the cluster merge computes each tenant's SLO attainment in
    /// [`ServingReport::latency_by_tenant`] against these; scheduling
    /// is untouched, so the default (empty) is bit-exact with every
    /// historical run.
    pub fn with_tenant_slos(mut self, slos: Vec<(u8, f64)>) -> Self {
        self.tenant_slos = slos;
        self
    }

    /// The configured per-tenant TTFT SLO targets.
    pub fn tenant_slos(&self) -> &[(u8, f64)] {
        &self.tenant_slos
    }

    /// The TTFT SLO target for one tenant — `+inf` (never missed) when
    /// the tenant has no target, the same convention the per-tenant
    /// attainment report uses.
    pub fn tenant_slo(&self, tenant: u8) -> f64 {
        self.tenant_slos
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(f64::INFINITY, |(_, slo)| *slo)
    }

    /// Returns this evaluator with a deadline-aware admission-control
    /// policy (see [`SheddingPolicy`]). The default `None` admits
    /// everything, bit-exact with every historical run; the wave policy
    /// ignores this knob.
    pub fn with_shedding(mut self, shedding: SheddingPolicy) -> Self {
        self.shedding = shedding;
        self
    }

    /// The active shedding policy.
    pub fn shedding_policy(&self) -> SheddingPolicy {
        self.shedding
    }

    /// Returns this evaluator with a victim-selection order for
    /// preemption (see [`VictimOrder`]). The default `RecentFirst` is
    /// bit-exact with every historical run; the knob only matters when
    /// a [`PreemptionPolicy`] is armed.
    pub fn with_victim_order(mut self, order: VictimOrder) -> Self {
        self.victim_order = order;
        self
    }

    /// The active victim-selection order.
    pub fn victim_order(&self) -> VictimOrder {
        self.victim_order
    }

    /// Returns this evaluator with a serving phase assignment for its
    /// replicas (see [`PoolRole`]). The default `Mixed` runs the full
    /// request lifecycle exactly as every historical run did; `Prefill`
    /// retires requests at prompt residency (the cluster layer hands
    /// them off), `Decode` admits handed-off requests with their
    /// prefill credited. Continuous policy only — the closed-world
    /// wave policy ignores this knob.
    pub fn with_pool_role(mut self, role: PoolRole) -> Self {
        self.pool_role = role;
        self
    }

    /// The serving phase this evaluator's replicas own.
    pub fn pool_role(&self) -> PoolRole {
        self.pool_role
    }

    /// Returns this evaluator with explicit KV-transfer cost terms for
    /// cross-pool handoffs (see [`KvTransferConfig`]). Only priced when
    /// the pool role is `Prefill`, so the default is bit-exact for
    /// every colocated run.
    pub fn with_kv_transfer(mut self, kv_transfer: KvTransferConfig) -> Self {
        self.kv_transfer = kv_transfer;
        self
    }

    /// The active KV-transfer cost terms.
    pub fn kv_transfer_config(&self) -> KvTransferConfig {
        self.kv_transfer
    }

    /// The KV-transfer pricing model for this configuration: per-token
    /// KV bytes include any TP-driven KV-head replication (the same
    /// footprint admission reserves), and page count is taken at the
    /// paged-KV granularity — the page geometry applies even when the
    /// paged pool itself is off, since the transfer engine ships
    /// page-sized chunks regardless of how the source tracked them.
    pub fn kv_transfer_model(&self) -> KvTransferModel {
        let replication = u64::from((self.system.parallel.tp / self.model.kv_heads()).max(1));
        KvTransferModel::new(
            replication * self.model.kv_bytes(1),
            self.paged_kv.page_bytes,
            self.kv_transfer,
        )
    }

    /// Prices shipping one request's prompt KV across pools: `(bytes,
    /// pages, seconds)` for a `context_len`-token resident prompt.
    pub fn handoff_transfer(&self, context_len: u64) -> (u64, u64, f64) {
        self.kv_transfer_model().transfer(context_len)
    }

    /// Calibrates the optimistic [`TtftPredictor`] for this
    /// configuration: the per-token rate of the *first* prefill chunk,
    /// the cheapest point of the prefill curve, so predictions lower-
    /// bound real chunked prefill times. A zero-rate predictor when
    /// prefill is not modeled (TTFT is then dominated by queueing,
    /// which the predictor's `waited` argument carries).
    pub fn ttft_predictor(&self) -> TtftPredictor {
        if !self.prefill.enabled {
            return TtftPredictor::with_rate(0.0);
        }
        let chunk = self.prefill.chunk_tokens.max(1);
        let secs = self.stage_model().prefill_chunk(0, 0, chunk).seconds;
        TtftPredictor::with_rate(secs / chunk as f64)
    }

    /// Returns this evaluator with an explicit prefill configuration.
    pub fn with_prefill(mut self, prefill: PrefillConfig) -> Self {
        self.prefill = prefill;
        self
    }

    /// Returns this evaluator with chunked prefill enabled: prompts are
    /// processed `chunk_tokens` at a time before decoding, and TTFT
    /// covers arrival → first token end-to-end.
    pub fn with_chunked_prefill(self, chunk_tokens: u64) -> Self {
        self.with_prefill(PrefillConfig::chunked(chunk_tokens))
    }

    /// The active prefill configuration.
    pub fn prefill_config(&self) -> PrefillConfig {
        self.prefill
    }

    /// Returns this evaluator with an explicit paged-KV configuration
    /// (see [`PagedKvConfig`]). The default `disabled()` keeps the
    /// historical whole-request reservations bit-exactly; enabling it
    /// gives each replica a refcounted page pool with prefix caching
    /// and page-granular reclamation (continuous policy only — the
    /// closed-world wave policy ignores this knob).
    pub fn with_paged_kv(mut self, paged_kv: PagedKvConfig) -> Self {
        self.paged_kv = paged_kv;
        self
    }

    /// Returns this evaluator with paged KV + prefix caching enabled at
    /// `page_bytes` granularity.
    pub fn with_prefix_caching(self, page_bytes: u64) -> Self {
        self.with_paged_kv(PagedKvConfig::paged(page_bytes))
    }

    /// The active paged-KV configuration.
    pub fn paged_kv_config(&self) -> PagedKvConfig {
        self.paged_kv
    }

    /// Prompt/decode tokens one KV page holds under the active paged-KV
    /// configuration (≥ 1): `page_bytes` over the per-token KV footprint
    /// including any TP-driven KV-head replication.
    pub fn page_tokens(&self) -> u64 {
        let replication = u64::from((self.system.parallel.tp / self.model.kv_heads()).max(1));
        let per_token = (replication * self.model.kv_bytes(1)).max(1);
        (self.paged_kv.page_bytes / per_token).max(1)
    }

    /// Returns this evaluator with a different chunk-pricing stride
    /// (decode steps between iteration-cost recomputes; ≥ 1). Since
    /// chunks are priced at their midpoint step, throughput is
    /// stride-invariant up to the kernel model's affine approximation —
    /// `stride = 1` is exact per-step pricing, larger strides are the
    /// fast path (enforced by `tests/engine_properties.rs`).
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// The system configuration.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The enabled techniques.
    pub fn techniques(&self) -> &Techniques {
        &self.techniques
    }

    /// The active scheduling policy.
    pub fn scheduling_policy(&self) -> SchedulingPolicy {
        self.policy
    }

    pub(crate) fn stage_model(&self) -> StageModel<'_> {
        StageModel::new(self.system, self.model, self.techniques, &self.kernels)
    }

    pub(crate) fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    pub(crate) fn stride(&self) -> u64 {
        self.stride
    }

    /// One decode iteration for an explicit batch (ids and token counts).
    pub fn iteration(&self, batch: &[(u64, u64)]) -> IterationBreakdown {
        self.stage_model().iteration(batch)
    }

    /// One prefill step for a single request with `done` prompt tokens
    /// already resident, processing its next `chunk` tokens. The
    /// breakdown holds the chunk's *totals* (not per-step values).
    pub fn prefill_chunk(&self, done: u64, chunk: u64) -> IterationBreakdown {
        self.stage_model().prefill_chunk(0, done, chunk)
    }

    /// Seconds to process a whole `prompt` in isolation under the
    /// configured prefill chunking — the minimum prompt-processing
    /// latency any request with that prompt can experience. 0 when
    /// prefill is disabled.
    pub fn prefill_time(&self, prompt: u64) -> f64 {
        if !self.prefill.enabled {
            return 0.0;
        }
        let stage = self.stage_model();
        let mut secs = 0.0;
        let mut done = 0u64;
        while done < prompt {
            let c = self.prefill.chunk_tokens.min(prompt - done);
            secs += stage.prefill_chunk(0, done, c).seconds;
            done += c;
        }
        secs
    }

    /// KV bytes available to one replica (capacity minus weights,
    /// scaled by [`Self::with_kv_capacity_factor`]).
    pub fn replica_kv_capacity(&self) -> u64 {
        let total = u64::from(self.system.parallel.modules()) * self.system.module.capacity_bytes;
        let cap = total.saturating_sub(self.model.weight_bytes());
        if self.kv_capacity_factor == 1.0 {
            cap // bit-exact fast path for the unscaled default
        } else {
            (cap as f64 * self.kv_capacity_factor) as u64
        }
    }

    /// Per-request KV reservation under the active memory policy, for a
    /// request that will finish at `final_len` tokens when the serving
    /// configuration is compiled for a worst case of `t_max` tokens.
    ///
    /// Static PIM instruction streams embed physical addresses for the
    /// worst case, so every request reserves `kv_bytes(t_max)`; DPA
    /// reserves the actual footprint plus one partial chunk per module.
    pub fn kv_reservation(&self, final_len: u64, t_max: u64) -> u64 {
        // When TP exceeds the KV-head count, KV heads are replicated
        // across modules and the footprint grows accordingly.
        let replication = u64::from((self.system.parallel.tp / self.model.kv_heads()).max(1));
        if self.techniques.dpa {
            // Lazy allocation: actual KV plus one partial chunk per module.
            replication * self.model.kv_bytes(final_len)
                + u64::from(self.system.parallel.modules()) * DEFAULT_CHUNK_BYTES / 2
        } else {
            replication * self.model.kv_bytes(t_max.min(self.model.context_window))
        }
    }

    /// Maximum requests admissible under Head-First Partitioning's
    /// placement constraint: every (request, KV-head) pair's cache must be
    /// *channel-resident* (paper §IV: "a request typically consumes nearly
    /// the entire memory capacity of a single PIM channel"). TCP removes
    /// the constraint by spreading each pair's tokens over all channels.
    pub fn hfp_batch_limit(&self, t_max: u64) -> u64 {
        if self.techniques.tcp {
            return u64::MAX;
        }
        let p = self.system.parallel;
        let weights_per_module = self.model.weight_bytes() / u64::from(p.modules());
        let channel_cap = self
            .system
            .module
            .capacity_bytes
            .saturating_sub(weights_per_module)
            / u64::from(self.system.module.channels);
        // One module holds, per pair, its pipeline stage's layer share.
        let pair_kv = (self.model.kv_bytes(t_max.min(self.model.context_window))
            / u64::from(self.model.kv_heads())
            / u64::from(p.pp))
        .max(1);
        let slots_per_channel = channel_cap / pair_kv;
        // Pairs are (request, KV-head instance) on each module.
        let q_heads = self.model.heads.div_ceil(p.tp).max(1);
        let g_eff = self.model.gqa_group.min(q_heads).max(1);
        let kv_instances = q_heads.div_ceil(g_eff).max(1);
        (u64::from(self.system.module.channels) * slots_per_channel / u64::from(kv_instances))
            .max(1)
    }

    /// Whether one replica can hold the model weights plus at least one
    /// worst-case request.
    pub fn feasible(&self, t_max: u64) -> bool {
        self.replica_kv_capacity() >= self.kv_reservation(t_max, t_max)
    }

    /// Serves `trace` through the event-driven engine under the active
    /// scheduling policy.
    pub fn run_trace(&self, trace: &Trace) -> ServingReport {
        Engine::new(self, self.policy).run(trace)
    }

    /// The original monolithic wave loop, kept as the fidelity oracle
    /// for the engine's wave policy (hidden from docs; used by the
    /// `engine_properties` tests). The only arithmetic change since
    /// extraction is the exact per-step chunk pricing (midpoint-step
    /// token counts), applied identically here and in the engine so the
    /// two stay bit-exact. It reports the pre-fix utilization formula
    /// (divided by `max_seconds × replicas`) and leaves the newer
    /// `busy_seconds`/`latency`/prefill fields at their defaults.
    #[doc(hidden)]
    pub fn run_trace_wave_reference(&self, trace: &Trace) -> ServingReport {
        let replicas = self.system.replicas();
        let stage = self.stage_model();
        let mut report = ServingReport::default();
        let mut batch_sum = 0.0;
        let mut util_weighted = 0.0;
        let mut used_kv = 0.0;
        let mut reserved_kv = 0.0;

        // The serving configuration is compiled for the workload's worst
        // case (static streams must cover it).
        let t_max = trace.iter().map(|r| r.final_len()).max().unwrap_or(0);
        // Partition requests across replicas.
        let mut per_replica: Vec<Vec<workload::Request>> = vec![Vec::new(); replicas as usize];
        for (i, r) in trace.iter().enumerate() {
            per_replica[i % replicas as usize].push(*r);
        }

        let mut max_seconds = 0.0f64;
        for queue in &per_replica {
            let mut idx = 0usize;
            let mut replica_seconds = 0.0f64;
            while idx < queue.len() {
                // Greedy capacity bound, then balance the remaining
                // requests evenly over the implied number of waves (a
                // trailing near-empty wave would waste a whole decode
                // pass).
                let greedy = policy::wave_greedy_admit(self, &queue[idx..], t_max);
                let remaining = queue.len() - idx;
                let waves_needed = remaining.div_ceil(greedy);
                let admitted = remaining.div_ceil(waves_needed).min(greedy);
                let wave = &queue[idx..idx + admitted];
                idx += admitted;
                report.waves += 1;
                batch_sum += admitted as f64;

                // Decode the wave; all requests share the same decode
                // budget, growing token counts as they generate.
                let decode_len = wave.iter().map(|r| r.decode_len).max().unwrap_or(0);
                let mut step = 0u64;
                while step < decode_len {
                    let chunk = self.stride.min(decode_len - step);
                    // Exact per-step pricing: the affine kernel model
                    // makes Σₛ it(T+s) equal chunk·it(T + (chunk-1)/2),
                    // so the chunk is priced at its midpoint step (the
                    // same rule the engine's policies use — chunk
                    // granularity no longer skews costs).
                    let batch: Vec<(u64, u64)> = wave
                        .iter()
                        .filter(|r| r.decode_len > step)
                        .map(|r| (r.id, r.context_len + step + (chunk - 1) / 2))
                        .collect();
                    if batch.is_empty() {
                        break;
                    }
                    let it = stage.iteration(&batch);
                    let secs = it.seconds * chunk as f64;
                    replica_seconds += secs;
                    report.tokens += batch.len() as u64 * chunk;
                    report.attn_seconds += it.attn_seconds * chunk as f64;
                    report.fc_seconds += it.fc_seconds * chunk as f64;
                    util_weighted += it.attn_utilization * secs;
                    self.energy.accumulate(
                        &mut report.energy,
                        &it,
                        chunk as f64,
                        self.system.parallel.modules(),
                        self.system.module.channels,
                    );
                    step += chunk;
                }

                for r in wave {
                    used_kv += self.model.kv_bytes(r.final_len()) as f64;
                    reserved_kv += self.kv_reservation(r.final_len(), t_max) as f64;
                }
            }
            max_seconds = max_seconds.max(replica_seconds);
        }

        report.seconds = max_seconds;
        report.tokens_per_second = if max_seconds > 0.0 {
            report.tokens as f64 / max_seconds
        } else {
            0.0
        };
        report.mean_batch = if report.waves > 0 {
            batch_sum / f64::from(report.waves)
        } else {
            0.0
        };
        report.attn_utilization = if max_seconds > 0.0 {
            util_weighted / (max_seconds * replicas as f64)
        } else {
            0.0
        };
        report.capacity_utilization = if reserved_kv > 0.0 {
            used_kv / reserved_kv
        } else {
            0.0
        };
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::{LLM_7B_128K_GQA, LLM_7B_32K};
    use workload::{Dataset, TraceBuilder};

    fn small_trace() -> Trace {
        TraceBuilder::new(Dataset::QmSum)
            .seed(3)
            .requests(12)
            .decode_len(32)
            .build()
    }

    #[test]
    fn pimphony_beats_baseline_throughput() {
        let trace = small_trace();
        let base = Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_32K),
            LLM_7B_32K,
            Techniques::baseline(),
        );
        let phony = Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_32K),
            LLM_7B_32K,
            Techniques::pimphony(),
        );
        let rb = base.run_trace(&trace);
        let rp = phony.run_trace(&trace);
        assert!(
            rp.tokens_per_second > 1.4 * rb.tokens_per_second,
            "pimphony {} vs base {}",
            rp.tokens_per_second,
            rb.tokens_per_second
        );
        assert_eq!(rb.tokens, rp.tokens, "same work served");
    }

    #[test]
    fn ladder_is_monotone() {
        let trace = small_trace();
        let mut last = 0.0;
        for t in Techniques::ladder() {
            let e = Evaluator::new(SystemConfig::cent_for(&LLM_7B_32K), LLM_7B_32K, t);
            let r = e.run_trace(&trace);
            assert!(
                r.tokens_per_second >= last * 0.999,
                "{}: {} < {}",
                t.label(),
                r.tokens_per_second,
                last
            );
            last = r.tokens_per_second;
        }
    }

    #[test]
    fn dpa_improves_capacity_utilization_and_batch() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(40)
            .decode_len(16)
            .build();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let stat = Evaluator::new(sys, LLM_7B_32K, Techniques::tcp_dcs()).run_trace(&trace);
        let dpa = Evaluator::new(sys, LLM_7B_32K, Techniques::pimphony()).run_trace(&trace);
        assert!(dpa.capacity_utilization > stat.capacity_utilization + 0.2);
        assert!(dpa.mean_batch >= stat.mean_batch);
    }

    #[test]
    fn gqa_model_serves_long_contexts() {
        let trace = TraceBuilder::new(Dataset::MultiFieldQa)
            .seed(2)
            .requests(6)
            .decode_len(16)
            .build();
        let e = Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_128K_GQA),
            LLM_7B_128K_GQA,
            Techniques::pimphony(),
        );
        let r = e.run_trace(&trace);
        assert!(r.tokens_per_second > 0.0);
        assert_eq!(r.tokens, trace.total_decode_tokens());
    }

    #[test]
    fn reservation_policy_differs() {
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let stat = Evaluator::new(sys, LLM_7B_32K, Techniques::tcp_dcs());
        let dpa = Evaluator::new(sys, LLM_7B_32K, Techniques::pimphony());
        // A short request reserves far less under DPA than under a
        // static stream compiled for the dataset's 30K worst case.
        assert!(dpa.kv_reservation(8_000, 30_000) < stat.kv_reservation(8_000, 30_000) / 2);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let e = Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_32K),
            LLM_7B_32K,
            Techniques::pimphony(),
        );
        let r = e.run_trace(&Trace::new());
        assert_eq!(r.tokens, 0);
        assert_eq!(r.tokens_per_second, 0.0);
        assert_eq!(r.latency.completed, 0);
    }

    #[test]
    fn fairness_helpers_are_guarded_against_empty_and_all_zero() {
        // Empty per-replica / per-tenant data (the wave-reference loop
        // and default reports): defined as perfectly fair, never NaN.
        let empty = ServingReport::default();
        assert_eq!(empty.replica_fairness(), 1.0);
        assert_eq!(empty.tenant_fairness(), 1.0);
        // All-zero loads (a run that served nothing): still 1.0.
        let mut zeroed = ServingReport {
            per_replica: vec![metrics::ReplicaBreakdown::default(); 3],
            latency_by_tenant: vec![metrics::TenantLatency::default(); 2],
            ..ServingReport::default()
        };
        assert_eq!(zeroed.replica_fairness(), 1.0);
        assert_eq!(zeroed.tenant_fairness(), 1.0);
        assert!(!zeroed.replica_fairness().is_nan());
        // Skewed tenant goodput drops below 1 and stays positive.
        zeroed.latency_by_tenant[0].tokens = 100;
        let f = zeroed.tenant_fairness();
        assert!((f - 0.5).abs() < 1e-12, "{f}");
    }

    #[test]
    fn busy_seconds_accounts_every_replica() {
        // Utilization divides by busy time, not wall-clock × replicas:
        // with balanced load they coincide; busy is never larger.
        let trace = small_trace();
        let e = Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_32K),
            LLM_7B_32K,
            Techniques::pimphony(),
        );
        let r = e.run_trace(&trace);
        let replicas = e.system().replicas() as f64;
        assert!(r.busy_seconds > 0.0);
        assert!(r.busy_seconds <= r.seconds * replicas + 1e-9);
        assert!((0.0..=1.0).contains(&r.attn_utilization));
    }

    #[test]
    fn utilization_fix_does_not_deflate_under_idle_replicas() {
        // 3 requests over 2 replicas: one replica serves 2, the other 1,
        // so the lighter replica idles. The fixed metric (busy-time
        // weighted) must be at least the reference metric, which divided
        // by max_seconds × replicas and double-counted the idle tail.
        let sys = SystemConfig::cent_for(&LLM_7B_32K)
            .with_parallel(pim_compiler::ParallelConfig::new(4, 1));
        assert!(sys.replicas() >= 2);
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(4)
            .requests(3)
            .decode_len(16)
            .build();
        let e = Evaluator::new(sys, LLM_7B_32K, Techniques::pimphony());
        let fixed = e.run_trace(&trace);
        let reference = e.run_trace_wave_reference(&trace);
        assert!(
            fixed.attn_utilization >= reference.attn_utilization - 1e-12,
            "fixed {} < reference {}",
            fixed.attn_utilization,
            reference.attn_utilization
        );
        assert!(fixed.busy_seconds < fixed.seconds * e.system().replicas() as f64);
    }
}
