//! Decode-iteration composition: attention stage, FC stage, TP/PP.
//!
//! One decode iteration advances every admitted request by one token.
//! Under tensor parallelism each module owns `kv_heads / tp` heads and a
//! `1/tp` shard of every FC matrix; under pipeline parallelism each module
//! owns `layers / pp` consecutive layers and micro-batches flow through
//! the stages (bubbles appear when the batch is smaller than the pipeline
//! depth — the CENT collapse of paper Fig. 17(b)).

use crate::config::{SystemConfig, SystemKind, Techniques};
use crate::kernel::{AttentionKind, KernelModel, KernelStats};
use llm_model::ModelConfig;
use pim_compiler::{ModulePartition, Partitioning};
use pim_sim::SchedulerKind;
use serde::Serialize;

/// Latency and activity of one attention stage execution on one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct AttentionStage {
    /// Module makespan in cycles (slowest channel).
    pub cycles: f64,
    /// MAC utilization across the module's channels in `[0, 1]`.
    pub utilization: f64,
    /// Aggregate kernel statistics across all channels.
    pub totals: KernelStats,
    /// Channels with work.
    pub active_channels: u32,
}

/// One decode iteration's latency breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct IterationBreakdown {
    /// Wall-clock seconds for the iteration.
    pub seconds: f64,
    /// Seconds in PIM attention.
    pub attn_seconds: f64,
    /// Seconds in the FC stage.
    pub fc_seconds: f64,
    /// Seconds in TP synchronization.
    pub sync_seconds: f64,
    /// Pipeline-bubble seconds.
    pub bubble_seconds: f64,
    /// Attention MAC utilization (module average).
    pub attn_utilization: f64,
    /// Aggregate attention kernel statistics (per replica, all layers).
    pub attn_totals: KernelStats,
    /// FC FLOPs executed (per replica).
    pub fc_flops: f64,
    /// Aggregate FC kernel statistics (PIM-only systems).
    pub fc_totals: KernelStats,
}

/// Computes stage latencies for one (system, model, techniques) tuple.
#[derive(Debug)]
pub struct StageModel<'a> {
    system: SystemConfig,
    model: ModelConfig,
    techniques: Techniques,
    kernels: &'a KernelModel,
}

impl<'a> StageModel<'a> {
    /// Creates a stage model.
    pub fn new(
        system: SystemConfig,
        model: ModelConfig,
        techniques: Techniques,
        kernels: &'a KernelModel,
    ) -> Self {
        StageModel {
            system,
            model,
            techniques,
            kernels,
        }
    }

    /// The command scheduler implied by the technique set.
    pub fn scheduler(&self) -> SchedulerKind {
        if self.techniques.dcs {
            SchedulerKind::Dcs
        } else {
            SchedulerKind::Static
        }
    }

    /// Whether the GQA row-reuse mapping is active (profitable only with
    /// DCS, paper §V-C), given the module's effective group size.
    pub fn row_reuse(&self) -> bool {
        self.effective_group() > 1 && self.techniques.dcs
    }

    fn partitioning(&self) -> Partitioning {
        if self.techniques.tcp {
            Partitioning::TokenCentric
        } else {
            Partitioning::HeadFirst
        }
    }

    /// Query heads resident on one module under TP.
    fn q_heads_per_module(&self) -> u32 {
        self.model.heads.div_ceil(self.system.parallel.tp).max(1)
    }

    /// GQA group size as seen by one module: TP shards query heads, so a
    /// module may hold fewer queries per KV head than the model's `g`.
    pub fn effective_group(&self) -> u32 {
        self.model.gqa_group.min(self.q_heads_per_module()).max(1)
    }

    /// KV-head instances a module computes against (its query heads
    /// grouped by shared KV).
    fn kv_instances_per_module(&self) -> u32 {
        self.q_heads_per_module()
            .div_ceil(self.effective_group())
            .max(1)
    }

    /// Attention stage for one layer on one module, given the admitted
    /// requests' current token counts.
    pub fn attention_layer(&self, batch_tokens: &[(u64, u64)]) -> AttentionStage {
        if batch_tokens.is_empty() {
            return AttentionStage::default();
        }
        let channels = self.system.module.channels;
        let sched = self.scheduler();
        let buffers = self.techniques.dcs;
        let group = self.effective_group();
        let row_reuse = self.row_reuse();
        let epu = pim_sim::epu::Epu::default();
        // Inter-channel SV reduction through the HUB/GPR + EPU (TCP only)
        // — negligible by design (paper §IV-C: <0.2% of attention time).
        let reduction = if self.techniques.tcp {
            epu.reduce_cycles(channels, self.model.head_dim) as f64
        } else {
            0.0
        };

        // This is the simulator's innermost loop: one slice per
        // (request, head, channel) under TCP, priced at every simulated
        // iteration. The affine fit is resolved once per kernel up
        // front (no per-slice memo lock) and the partition is visited
        // without materializing it (no per-call Vec churn); the float
        // accumulation sequence is identical to looping the
        // materialized partition, so results are bit-exact.
        let qkt_eval =
            self.kernels
                .attention_eval(AttentionKind::Qkt, sched, buffers, group, row_reuse);
        let sv_eval =
            self.kernels
                .attention_eval(AttentionKind::Sv, sched, buffers, group, row_reuse);
        let mut makespan: f64 = 0.0;
        let mut totals = KernelStats::default();
        let mut busy_sum = 0.0;
        let mut cycles = 0.0;
        let mut cur_ch = 0u32;
        let mut channel_has_work = false;
        let mut active_channels = 0u32;
        ModulePartition::for_each_slice(
            self.partitioning(),
            channels,
            self.kv_instances_per_module(),
            batch_tokens,
            |ch, t| {
                if ch != cur_ch {
                    makespan = makespan.max(cycles);
                    cycles = 0.0;
                    active_channels += u32::from(channel_has_work);
                    cur_ch = ch;
                }
                channel_has_work = true;
                let qkt = qkt_eval.stats(t);
                let sv = sv_eval.stats(t);
                cycles += qkt.cycles + sv.cycles + reduction;
                totals.accumulate(&qkt);
                totals.accumulate(&sv);
                busy_sum += qkt.mac_busy + sv.mac_busy;
            },
        );
        makespan = makespan.max(cycles);
        active_channels += u32::from(channel_has_work);
        // Softmax on the EPU between QKT and SV, per (request, head);
        // pipelined with PIM execution, it adds only its serial tail.
        let softmax: f64 = batch_tokens
            .iter()
            .map(|&(_, t)| epu.softmax_cycles(t) as f64)
            .sum::<f64>()
            * f64::from(self.kv_instances_per_module())
            / f64::from(channels);
        makespan += softmax;
        let utilization = if makespan > 0.0 {
            (busy_sum / (f64::from(channels) * makespan)).min(1.0)
        } else {
            0.0
        };
        AttentionStage {
            cycles: makespan,
            utilization,
            totals,
            active_channels,
        }
    }

    /// Attention stage of one *prefill* step on one module: `chunk`
    /// prompt tokens of a single request whose first `done` prompt
    /// tokens are already KV-resident. Causal attention makes the total
    /// work a prefix sum, priced in closed form by
    /// [`KernelModel::attention_prefill`]; the per-channel share follows
    /// the same KV partitioning as decode (HFP: channel-resident pairs,
    /// TCP: token slices across all channels), distributing the causal
    /// total proportionally to each channel's resident-key share.
    pub fn prefill_attention_layer(&self, req_id: u64, done: u64, chunk: u64) -> AttentionStage {
        if chunk == 0 {
            return AttentionStage::default();
        }
        let total_keys = done + chunk;
        let channels = self.system.module.channels;
        let partition = ModulePartition::assign(
            self.partitioning(),
            channels,
            self.kv_instances_per_module(),
            &[(req_id, total_keys)],
        );
        let sched = self.scheduler();
        let buffers = self.techniques.dcs;
        let group = self.effective_group();
        let row_reuse = self.row_reuse();
        let epu = pim_sim::epu::Epu::default();
        // Every query position reduces across channels under TCP.
        let reduction = if self.techniques.tcp {
            epu.reduce_cycles(channels, self.model.head_dim) as f64 * chunk as f64
        } else {
            0.0
        };
        let qkt = self.kernels.attention_prefill(
            AttentionKind::Qkt,
            sched,
            buffers,
            group,
            row_reuse,
            done,
            chunk,
        );
        let sv = self.kernels.attention_prefill(
            AttentionKind::Sv,
            sched,
            buffers,
            group,
            row_reuse,
            done,
            chunk,
        );

        let mut makespan: f64 = 0.0;
        let mut totals = KernelStats::default();
        let mut busy_sum = 0.0;
        for ch in partition.channels() {
            let mut cycles = 0.0;
            for slice in &ch.slices {
                let share = slice.tokens() as f64 / total_keys as f64;
                cycles += (qkt.cycles + sv.cycles) * share + reduction;
                totals.accumulate(&qkt.scaled(share));
                totals.accumulate(&sv.scaled(share));
                busy_sum += (qkt.mac_busy + sv.mac_busy) * share;
            }
            makespan = makespan.max(cycles);
        }
        // Softmax per query position over its causal prefix — affine in
        // the prefix length, so the chunk prices at its midpoint
        // position (same EPU distribution as decode).
        let mid_keys = done + chunk.div_ceil(2);
        let softmax = chunk as f64
            * epu.softmax_cycles(mid_keys) as f64
            * f64::from(self.kv_instances_per_module())
            / f64::from(channels);
        makespan += softmax;
        let utilization = if makespan > 0.0 {
            (busy_sum / (f64::from(channels) * makespan)).min(1.0)
        } else {
            0.0
        };
        AttentionStage {
            cycles: makespan,
            utilization,
            totals,
            active_channels: partition.active_channels(),
        }
    }

    /// One prefill step processing `chunk` prompt tokens of one request
    /// (`done` prompt tokens already resident) through every layer. FC
    /// runs the chunk as a token batch — streamed GEMV passes on PIM, a
    /// genuine weight-amortizing GEMM on the xPU — TP syncs the chunk's
    /// activations, and PP micro-batches the chunk's tokens through the
    /// stages in causal order (micro `j` prefills after micro `j-1`'s
    /// tokens are resident). Unlike [`Self::iteration`], which prices
    /// one decode step, the returned breakdown holds the chunk's
    /// *totals*.
    ///
    /// Chunking granularity: the causal attention/FC work is
    /// chunk-invariant (the prefix sum does not care where it is cut),
    /// so at `pp = 1` a prompt costs the same however it is chunked. At
    /// `pp ≥ 2` each chunk is a separate pipeline pass — the scheduler
    /// interleaves decode iterations between chunks, so the pipeline
    /// genuinely drains — and a chunk smaller than the pipeline depth
    /// pays its own fill/drain bubbles; fine-grained chunked prefill is
    /// therefore *not* free under pipeline parallelism.
    pub fn prefill_chunk(&self, req_id: u64, done: u64, chunk: u64) -> IterationBreakdown {
        if chunk == 0 {
            return IterationBreakdown::default();
        }
        let pp = self.system.parallel.pp as usize;
        let layers_per_stage = (self.model.layers as usize).div_ceil(pp);
        let m = chunk.min(pp as u64).max(1) as usize;
        let clock = self.system.module.clock_hz;

        let mut out = IterationBreakdown::default();
        let mut stage_secs_sum = 0.0;
        let mut util_weighted = 0.0;
        let mut offset = done;
        let base = chunk / m as u64;
        let rem = (chunk % m as u64) as usize;
        for j in 0..m {
            let c_j = base + u64::from(j < rem);
            let attn = self.prefill_attention_layer(req_id, offset, c_j);
            let (fc_secs, fc_flops, fc_stats) = self.fc_layer(c_j as usize);
            let sync = self.sync_layer(c_j as usize);
            let attn_secs = attn.cycles / clock;
            let layer_secs = attn_secs + fc_secs + sync;
            let stage = layers_per_stage as f64 * layer_secs;
            stage_secs_sum += stage;
            out.attn_seconds += layers_per_stage as f64 * attn_secs;
            out.fc_seconds += layers_per_stage as f64 * fc_secs;
            out.sync_seconds += layers_per_stage as f64 * sync;
            out.attn_totals
                .accumulate(&attn.totals.scaled(layers_per_stage as f64 * pp as f64));
            out.fc_flops += fc_flops * layers_per_stage as f64 * pp as f64;
            out.fc_totals
                .accumulate(&fc_stats.scaled(layers_per_stage as f64 * pp as f64));
            util_weighted += attn.utilization * stage;
            offset += c_j;
        }
        let mean_stage = stage_secs_sum / m as f64;
        out.bubble_seconds = (pp.saturating_sub(m)) as f64 * mean_stage;
        out.seconds = stage_secs_sum + out.bubble_seconds;
        out.attn_utilization = if stage_secs_sum > 0.0 {
            (util_weighted / stage_secs_sum) * (stage_secs_sum / out.seconds)
        } else {
            0.0
        };
        out
    }

    /// FC-op dimensions of one decoder layer: Q/K/V/O projections + gated
    /// FFN.
    fn fc_ops(&self) -> [(u32, u32); 7] {
        let d = self.model.hidden_dim;
        let kvd = self.model.kv_heads() * self.model.head_dim;
        let f = self.model.ffn_dim;
        [(d, d), (kvd, d), (kvd, d), (d, d), (f, d), (f, d), (d, f)]
    }

    /// FC stage seconds for one layer at batch size `batch`, plus FLOPs
    /// and (PIM-only) kernel statistics.
    pub fn fc_layer(&self, batch: usize) -> (f64, f64, KernelStats) {
        if batch == 0 {
            return (0.0, 0.0, KernelStats::default());
        }
        let tp = self.system.parallel.tp;
        let ops = self.fc_ops();
        let flops: f64 = 2.0
            * batch as f64
            * ops
                .iter()
                .map(|&(o, i)| f64::from(o) * f64::from(i))
                .sum::<f64>()
            / f64::from(tp);
        match self.system.kind {
            SystemKind::PimOnly => {
                // FC runs on PIM: every channel owns a dout shard; the
                // batch streams through as `batch` GEMV passes.
                let sched = self.scheduler();
                let buffers = self.techniques.dcs;
                let channels = self.system.module.channels;
                let mut cycles = 0.0;
                let mut totals = KernelStats::default();
                for &(dout, din) in &ops {
                    let dout_pc = dout.div_ceil(tp * channels).max(1);
                    let g = self.kernels.gemv(sched, buffers, dout_pc, din);
                    cycles += batch as f64 * g.cycles;
                    totals.accumulate(&g.scaled(batch as f64 * f64::from(channels)));
                }
                (cycles / self.system.module.clock_hz, flops, totals)
            }
            SystemKind::XpuPim => {
                let weight_bytes: f64 = ops
                    .iter()
                    .map(|&(o, i)| f64::from(o) * f64::from(i))
                    .sum::<f64>()
                    * f64::from(self.model.dtype_bytes)
                    / f64::from(tp);
                let compute = flops / self.system.module.xpu_flops;
                let memory = weight_bytes / self.system.module.xpu_mem_bw;
                (compute.max(memory), flops, KernelStats::default())
            }
        }
    }

    /// TP all-reduce seconds per layer.
    fn sync_layer(&self, batch: usize) -> f64 {
        let tp = self.system.parallel.tp;
        if tp <= 1 || batch == 0 {
            return 0.0;
        }
        let bytes =
            batch as f64 * f64::from(self.model.hidden_dim) * f64::from(self.model.dtype_bytes);
        2.0 * (f64::from(tp) - 1.0) / f64::from(tp) * bytes / self.system.module.interconnect_bw
    }

    /// One decode iteration over the admitted requests (id, tokens pairs).
    pub fn iteration(&self, batch: &[(u64, u64)]) -> IterationBreakdown {
        let b = batch.len();
        if b == 0 {
            return IterationBreakdown::default();
        }
        let pp = self.system.parallel.pp as usize;
        let layers_per_stage = (self.model.layers as usize).div_ceil(pp);
        let m = b.min(pp).max(1);

        let clock = self.system.module.clock_hz;
        let mut out = IterationBreakdown::default();
        let mut stage_secs_sum = 0.0;
        let mut util_weighted = 0.0;
        let mut step = |micro: &[(u64, u64)]| {
            let attn = self.attention_layer(micro);
            let (fc_secs, fc_flops, fc_stats) = self.fc_layer(micro.len());
            let sync = self.sync_layer(micro.len());
            let attn_secs = attn.cycles / clock;
            let layer_secs = attn_secs + fc_secs + sync;
            let stage = layers_per_stage as f64 * layer_secs;
            stage_secs_sum += stage;
            out.attn_seconds += layers_per_stage as f64 * attn_secs;
            out.fc_seconds += layers_per_stage as f64 * fc_secs;
            out.sync_seconds += layers_per_stage as f64 * sync;
            out.attn_totals
                .accumulate(&attn.totals.scaled(layers_per_stage as f64 * pp as f64));
            out.fc_flops += fc_flops * layers_per_stage as f64 * pp as f64;
            out.fc_totals
                .accumulate(&fc_stats.scaled(layers_per_stage as f64 * pp as f64));
            util_weighted += attn.utilization * stage;
        };
        if m == 1 {
            // The common no-pipeline case: the single micro-batch is
            // the whole batch in order — price it in place.
            step(batch);
        } else {
            // Round-robin micro-batch split.
            let mut micros: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m];
            for (i, &req) in batch.iter().enumerate() {
                micros[i % m].push(req);
            }
            for micro in &micros {
                step(micro);
            }
        }
        let mean_stage = stage_secs_sum / m as f64;
        out.bubble_seconds = (pp.saturating_sub(m)) as f64 * mean_stage;
        out.seconds = stage_secs_sum + out.bubble_seconds;
        out.attn_utilization = if stage_secs_sum > 0.0 {
            // Bubbles idle the whole module, scaling utilization down.
            (util_weighted / stage_secs_sum) * (stage_secs_sum / out.seconds)
        } else {
            0.0
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::{LLM_7B_128K_GQA, LLM_7B_32K};
    use pim_compiler::ParallelConfig;
    use pim_sim::Timing;

    fn kernels() -> KernelModel {
        KernelModel::new(Timing::aimx(), 128)
    }

    #[test]
    fn tcp_raises_attention_utilization() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let base = StageModel::new(sys, LLM_7B_32K, Techniques::baseline(), &k);
        let tcp = StageModel::new(sys, LLM_7B_32K, Techniques::tcp_only(), &k);
        // One long request: HFP strands all but a few channels.
        let batch = [(0u64, 32_768u64)];
        let b = base.attention_layer(&batch);
        let t = tcp.attention_layer(&batch);
        assert!(
            t.utilization > b.utilization * 2.0,
            "{} vs {}",
            t.utilization,
            b.utilization
        );
        assert!(t.cycles < b.cycles);
        assert_eq!(t.active_channels, 32);
    }

    #[test]
    fn dcs_shrinks_attention_cycles_further() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let tcp = StageModel::new(sys, LLM_7B_32K, Techniques::tcp_only(), &k);
        let dcs = StageModel::new(sys, LLM_7B_32K, Techniques::tcp_dcs(), &k);
        let batch = [(0u64, 32_768u64), (1, 16_384)];
        assert!(dcs.attention_layer(&batch).cycles < tcp.attention_layer(&batch).cycles);
    }

    #[test]
    fn iteration_time_grows_with_context() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let m = StageModel::new(sys, LLM_7B_32K, Techniques::pimphony(), &k);
        let short = m.iteration(&[(0, 4096)]);
        let long = m.iteration(&[(0, 65_536)]);
        assert!(long.seconds > 2.0 * short.seconds);
        assert!(long.attn_seconds > short.attn_seconds);
    }

    #[test]
    fn pp_with_small_batch_has_bubbles() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K).with_parallel(ParallelConfig::new(1, 8));
        let m = StageModel::new(sys, LLM_7B_32K, Techniques::pimphony(), &k);
        let solo = m.iteration(&[(0, 16_384)]);
        assert!(solo.bubble_seconds > 0.0);
        let full: Vec<(u64, u64)> = (0..8).map(|i| (i, 16_384)).collect();
        let filled = m.iteration(&full);
        assert_eq!(filled.bubble_seconds, 0.0);
        // Eight requests through a full pipeline finish in far less than
        // eight times the solo latency.
        assert!(filled.seconds < 4.0 * solo.seconds);
    }

    #[test]
    fn xpu_fc_is_much_faster_than_pim_fc() {
        let k = kernels();
        let cent = SystemConfig::cent_for(&LLM_7B_32K);
        let neu = SystemConfig::neupims_for(&LLM_7B_32K);
        let mc = StageModel::new(cent, LLM_7B_32K, Techniques::pimphony(), &k);
        let mn = StageModel::new(neu, LLM_7B_32K, Techniques::pimphony(), &k);
        // At batch 1, PIM's internal bandwidth makes FC GEMV competitive;
        // the NPU pulls ahead once batching amortizes weight streaming.
        let (fc_c, _, _) = mc.fc_layer(16);
        let (fc_n, _, _) = mn.fc_layer(16);
        assert!(fc_c > 2.0 * fc_n, "CENT {fc_c} vs NeuPIMs {fc_n}");
    }

    #[test]
    fn gqa_row_reuse_only_with_dcs() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_128K_GQA);
        let no_dcs = StageModel::new(sys, LLM_7B_128K_GQA, Techniques::tcp_only(), &k);
        let dcs = StageModel::new(sys, LLM_7B_128K_GQA, Techniques::tcp_dcs(), &k);
        assert!(!no_dcs.row_reuse());
        assert!(dcs.row_reuse());
    }

    #[test]
    fn prefill_chunk_monotone_in_chunk_and_position() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let m = StageModel::new(sys, LLM_7B_32K, Techniques::pimphony(), &k);
        assert_eq!(m.prefill_chunk(0, 0, 0).seconds, 0.0);
        let small = m.prefill_chunk(0, 0, 256);
        let large = m.prefill_chunk(0, 0, 1024);
        assert!(large.seconds > small.seconds);
        // Later chunks attend to longer prefixes, so the same chunk
        // size costs more deeper into the prompt.
        let early = m.prefill_chunk(0, 0, 512);
        let late = m.prefill_chunk(0, 8192, 512);
        assert!(late.seconds > early.seconds);
        assert!(late.attn_seconds > early.attn_seconds);
    }

    #[test]
    fn chunked_prefill_sums_to_whole_prompt_without_pp() {
        // At pp = 1 (no pipeline fill/drain) splitting a prompt into
        // chunks must cost (almost) the same as one whole-prompt pass:
        // causal totals are chunk-invariant; only softmax midpoint
        // rounding may differ.
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        assert_eq!(sys.parallel.pp, 1);
        let m = StageModel::new(sys, LLM_7B_32K, Techniques::pimphony(), &k);
        let prompt = 4096u64;
        let whole = m.prefill_chunk(0, 0, prompt);
        let mut split = 0.0;
        let mut done = 0u64;
        while done < prompt {
            let c = 512.min(prompt - done);
            split += m.prefill_chunk(0, done, c).seconds;
            done += c;
        }
        let err = (whole.seconds - split).abs() / whole.seconds;
        assert!(err < 0.02, "whole {} vs split {split}", whole.seconds);
    }

    #[test]
    fn chunked_prefill_pays_pipeline_fill_under_pp() {
        // At pp >= 2 every chunk is its own pipeline pass (decode
        // iterations interleave between chunks, draining the pipeline),
        // so chunks below the pipeline depth pay fill/drain bubbles and
        // fine chunking costs strictly more than one whole-prompt pass
        // — bounded by the fully-serialized pp× worst case.
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K).with_parallel(ParallelConfig::new(1, 4));
        let m = StageModel::new(sys, LLM_7B_32K, Techniques::pimphony(), &k);
        let prompt = 2048u64;
        let whole = m.prefill_chunk(0, 0, prompt);
        assert_eq!(whole.bubble_seconds, 0.0, "chunk >= pp streams bubble-free");
        let mut split = 0.0;
        let mut done = 0u64;
        while done < prompt {
            split += m.prefill_chunk(0, done, 1).seconds;
            done += 1;
        }
        assert!(split > whole.seconds, "{split} vs {}", whole.seconds);
        assert!(
            split <= 4.0 * whole.seconds * 1.02,
            "{split} vs {}",
            whole.seconds
        );
    }

    #[test]
    fn xpu_prefill_fc_is_faster_than_pim_fc() {
        // Prefill FC is a GEMM: the xPU amortizes weight streaming over
        // the chunk's tokens, while PIM pays per-token GEMV passes.
        let k = kernels();
        let cent = SystemConfig::cent_for(&LLM_7B_32K);
        let neu = SystemConfig::neupims_for(&LLM_7B_32K);
        let mc = StageModel::new(cent, LLM_7B_32K, Techniques::pimphony(), &k);
        let mn = StageModel::new(neu, LLM_7B_32K, Techniques::pimphony(), &k);
        let pc = mc.prefill_chunk(0, 0, 512);
        let pn = mn.prefill_chunk(0, 0, 512);
        assert!(pc.fc_seconds > 4.0 * pn.fc_seconds, "{pc:?} vs {pn:?}");
    }

    #[test]
    fn tcp_spreads_prefill_attention_over_channels() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let base = StageModel::new(sys, LLM_7B_32K, Techniques::baseline(), &k);
        let tcp = StageModel::new(sys, LLM_7B_32K, Techniques::tcp_only(), &k);
        let b = base.prefill_attention_layer(0, 0, 2048);
        let t = tcp.prefill_attention_layer(0, 0, 2048);
        assert!(t.cycles < b.cycles);
        assert_eq!(t.active_channels, 32);
    }

    #[test]
    fn empty_batch_is_free() {
        let k = kernels();
        let sys = SystemConfig::cent_for(&LLM_7B_32K);
        let m = StageModel::new(sys, LLM_7B_32K, Techniques::pimphony(), &k);
        assert_eq!(m.iteration(&[]).seconds, 0.0);
        assert_eq!(m.attention_layer(&[]).cycles, 0.0);
    }
}
