//! Multi-module PIM system model for the PIMphony reproduction.
//!
//! Composes the per-channel cycle simulator (`pim-sim`), the partitioning
//! compiler (`pim-compiler`) and the memory manager (`pim-mem`) into full
//! CENT-like (PIM-only) and NeuPIMs-like (xPU+PIM) systems, with:
//!
//! * [`config`] — Table IV module/system configurations and the
//!   [`config::Techniques`] ladder (base / +TCP / +DCS / +DPA).
//! * [`kernel`] — memoized per-channel kernel latency model calibrated by
//!   exact cycle simulation.
//! * [`stage`] — attention/FC stage composition under TP and PP.
//! * [`serve`] — the [`Evaluator`]: memory policy, admission primitives,
//!   and the [`ServingReport`].
//! * [`engine`] — event-driven serving facade advancing per-replica
//!   virtual time over admission/step/completion events.
//! * [`replica`] — the standalone per-replica state machine
//!   (`ReplicaSim`) behind both the engine and the cluster.
//! * [`cluster`] — multi-replica serving: globally ordered arrivals
//!   dispatched through a pluggable [`cluster::Router`] (round-robin /
//!   join-shortest-queue / least-loaded) with replica sims running on
//!   scoped threads and a deterministic merge.
//! * [`policy`] — pluggable batch scheduling: closed-world
//!   [`SchedulingPolicy::Wave`] (paper-figure fidelity, Figs. 13–15 and
//!   17) and online [`SchedulingPolicy::Continuous`] batching over
//!   arrival times; [`PrefillConfig`] turns on end-to-end prompt
//!   processing (wave: whole-batch prefill before decode; continuous:
//!   chunked prefill interleaved with running decode steps);
//!   [`PreemptionPolicy`] lets blocked higher-priority arrivals evict
//!   running requests under KV memory pressure (evict-and-restart or
//!   evict-and-pause with extended-prompt re-prefill).
//! * [`scenario`] — the declarative, serializable experiment spec: one
//!   [`Scenario`] value (model + system + techniques + multi-tenant
//!   workload + cluster + policies) round-trips through JSON
//!   (`scenarios/*.json`) and materializes into a runnable
//!   evaluator/trace pair.
//! * [`metrics`] — per-request TTFT/TPOT/E2E latency percentiles with a
//!   queueing-vs-prefill TTFT decomposition, per-replica and per-tenant
//!   breakdowns (SLO attainment), Jain fairness.
//! * [`energy`] — the Fig. 16 energy decomposition.
//! * [`gpu`] — the A100 flash-decoding + paged-attention baseline of
//!   Fig. 20.
//!
//! # Example
//!
//! ```no_run
//! use llm_model::LLM_7B_32K;
//! use system::{Evaluator, SystemConfig, Techniques};
//! use workload::{Dataset, TraceBuilder};
//!
//! let trace = TraceBuilder::new(Dataset::QmSum).requests(8).decode_len(16).build();
//! let eval = Evaluator::new(
//!     SystemConfig::cent_for(&LLM_7B_32K),
//!     LLM_7B_32K,
//!     Techniques::pimphony(),
//! );
//! let report = eval.run_trace(&trace);
//! println!("{:.1} tokens/s", report.tokens_per_second);
//! ```
//!
//! Online serving with continuous batching and latency percentiles:
//!
//! ```no_run
//! use llm_model::LLM_7B_32K;
//! use system::{Evaluator, SchedulingPolicy, SystemConfig, Techniques};
//! use workload::{Dataset, TraceBuilder};
//!
//! let trace = TraceBuilder::new(Dataset::QmSum)
//!     .requests(64)
//!     .decode_range(16, 128)
//!     .poisson(4.0)
//!     .build();
//! let eval = Evaluator::new(
//!     SystemConfig::cent_for(&LLM_7B_32K),
//!     LLM_7B_32K,
//!     Techniques::pimphony(),
//! ).with_policy(SchedulingPolicy::Continuous);
//! let report = eval.run_trace(&trace);
//! println!(
//!     "{:.1} tok/s, TTFT p99 {:.3}s, TPOT p50 {:.4}s",
//!     report.tokens_per_second, report.latency.ttft.p99, report.latency.tpot.p50,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod energy;
pub mod engine;
pub mod gpu;
pub mod kernel;
pub mod metrics;
pub mod policy;
pub mod replica;
pub mod scenario;
pub mod serve;
pub mod stage;

pub use cluster::{
    run_pools, Cluster, JoinShortestQueue, LeastLoaded, LeastPrefill, PoolRun, RoundRobin, Router,
    RouterKind, SloAware,
};
pub use config::{ModuleConfig, SystemConfig, SystemKind, Techniques};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use engine::Engine;
pub use gpu::GpuSystem;
pub use kernel::{AttentionKind, KernelModel, KernelStats};
pub use metrics::{
    jain_fairness, tenant_goodput_fairness, LatencyReport, LatencySummary, PoolBreakdown,
    PriorityLatency, ReplicaBreakdown, RequestTiming, TenantLatency,
};
pub use policy::{
    KvTransferConfig, PagedKvConfig, PoolRole, PreemptionPolicy, PrefillConfig, SchedulingPolicy,
    SheddingPolicy, VictimOrder,
};
pub use replica::ReplicaLoad;
pub use scenario::{
    ClusterSpec, Materialized, MaterializedPool, PolicySpec, PoolSpec, Scenario, TenantSpec,
};
pub use serve::{Evaluator, KvTransferModel, ServingReport, TtftPredictor};
pub use stage::{AttentionStage, IterationBreakdown, StageModel};
