//! Pluggable batch-scheduling policies for the serving engine.
//!
//! A policy decides *when requests join a batch*; the memory policy
//! (static `T_max` reservation vs DPA lazy chunks, [`crate::Evaluator`])
//! decides *how many fit*. Two policies are provided:
//!
//! * [`SchedulingPolicy::Wave`] — the paper's closed-world evaluation
//!   loop, extracted verbatim from the original `serve` module: admit a
//!   capacity-bounded wave (balanced over the implied number of waves),
//!   decode it to completion, repeat. Arrival times are ignored; this is
//!   the policy behind Figs. 13–15/17.
//! * [`SchedulingPolicy::Continuous`] — continuous batching for online
//!   traffic: pending requests join the running batch the moment the
//!   memory policy has room, and finished requests immediately free
//!   their reservation. FCFS without reordering, so head-of-line
//!   blocking under static reservations is visible by design (that gap
//!   is exactly what DPA's lazy allocation closes).

use crate::serve::Evaluator;
use serde::Serialize;
use workload::Request;

/// Which batch-scheduling policy the engine runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum SchedulingPolicy {
    /// Closed-world wave serving (paper-figure fidelity).
    #[default]
    Wave,
    /// Event-driven continuous batching over arrival times.
    Continuous,
}

impl SchedulingPolicy {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulingPolicy::Wave => "wave",
            SchedulingPolicy::Continuous => "continuous",
        }
    }
}

impl std::fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the continuous scheduler may do when an arrived request cannot
/// be admitted because the memory policy has no room.
///
/// Admission is priority-ordered ([`workload::Request::priority`],
/// FCFS within a priority class); preemption decides whether a blocked
/// *higher-priority* candidate may reclaim KV memory from
/// strictly-lower-priority running requests. Victims are chosen lowest
/// priority first, most recently (re-)admitted first (the least
/// progress is lost), released back to the pending queue in arrival
/// order, and re-admitted under the same priority rules. Strictly-lower
/// priority is required, so a trace whose priorities are all equal
/// never evicts — every variant is then bit-exact with
/// [`PreemptionPolicy::None`].
///
/// The wave policy is closed-world (admitted waves always run to
/// completion) and ignores this knob entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum PreemptionPolicy {
    /// Never evict: an admitted request holds its KV reservation until
    /// completion (the historical behavior; head-of-line blocking under
    /// memory pressure is visible by design).
    #[default]
    None,
    /// Evict-and-restart: the victim's KV *and generated tokens* are
    /// dropped; on re-admission it re-prefills its prompt and decodes
    /// from scratch (wasted prompt and decode work).
    EvictRestart,
    /// Evict-and-pause: the victim's KV is dropped but its generated
    /// tokens are kept; on re-admission the prompt *plus* the kept
    /// tokens are re-prefilled as an extended prompt and decoding
    /// resumes where it stopped (wasted prompt work only).
    EvictPause,
}

impl PreemptionPolicy {
    /// Every policy, for comparison sweeps.
    pub const ALL: [PreemptionPolicy; 3] = [
        PreemptionPolicy::None,
        PreemptionPolicy::EvictRestart,
        PreemptionPolicy::EvictPause,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            PreemptionPolicy::None => "none",
            PreemptionPolicy::EvictRestart => "evict-restart",
            PreemptionPolicy::EvictPause => "evict-pause",
        }
    }

    /// Whether this policy ever evicts.
    pub fn evicts(&self) -> bool {
        !matches!(self, PreemptionPolicy::None)
    }
}

impl std::fmt::Display for PreemptionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Deadline-aware admission control for the continuous scheduler.
///
/// Off by default: every arrived request is eventually admitted, and a
/// hopeless interactive request inflates the tail of the TTFT
/// distribution instead of being counted honestly. When armed, the
/// admission sweep consults the [`crate::TtftPredictor`] the moment a
/// candidate reaches the head of its priority lane: if the optimistic
/// lower bound on its time-to-first-token — the wait it has already
/// accumulated plus its isolated remaining prefill time — already
/// exceeds its tenant's TTFT SLO, the request is *shed*: dropped from
/// the queue, counted in [`crate::ServingReport::shed`], and never
/// billed to the latency percentiles. Because the predictor is a lower
/// bound (queueing and batch interleaving only add time), shedding only
/// ever drops requests that were certain to miss; on a trace where
/// every request meets its SLO, `shed == 0` and the run is bit-exact
/// with [`SheddingPolicy::None`].
///
/// Requests whose tenant has no TTFT SLO are never shed, and the wave
/// policy (closed-world, no deadlines) ignores this knob entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum SheddingPolicy {
    /// Never shed: all arrivals are eventually admitted (historical
    /// behavior).
    #[default]
    None,
    /// Reject at admission time any request whose predicted TTFT lower
    /// bound already exceeds its tenant SLO.
    Reject,
}

impl SheddingPolicy {
    /// Every policy, for comparison sweeps.
    pub const ALL: [SheddingPolicy; 2] = [SheddingPolicy::None, SheddingPolicy::Reject];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            SheddingPolicy::None => "none",
            SheddingPolicy::Reject => "reject",
        }
    }

    /// Whether this policy ever sheds.
    pub fn sheds(&self) -> bool {
        !matches!(self, SheddingPolicy::None)
    }
}

impl std::fmt::Display for SheddingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How `plan_eviction` orders victims *within* a priority class.
///
/// Preemption always takes strictly-lower-priority victims, lowest
/// class first (the no-thrash strict-descent invariant); this knob only
/// chooses which member of the chosen class goes first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum VictimOrder {
    /// Most recently (re-)admitted first — the least decode progress is
    /// lost (historical behavior).
    #[default]
    RecentFirst,
    /// Deadline-monotonic: the request with the *most* remaining SLO
    /// slack first. A request's TTFT deadline `arrival + slo_ttft` is
    /// fixed at arrival, so "most slack at time t" is simply "latest
    /// deadline" — requests without an SLO (deadline `+inf`) are evicted
    /// before any deadline-carrying peer in the same class, and ties
    /// fall back to most-recently-admitted.
    SlackFirst,
}

impl VictimOrder {
    /// Every order, for comparison sweeps.
    pub const ALL: [VictimOrder; 2] = [VictimOrder::RecentFirst, VictimOrder::SlackFirst];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            VictimOrder::RecentFirst => "recent-first",
            VictimOrder::SlackFirst => "slack-first",
        }
    }
}

impl std::fmt::Display for VictimOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The serving phase a replica pool is responsible for.
///
/// Mixed (the default) is the historical colocated behavior: one
/// replica carries a request from admission through its last decode
/// token. Prefill/Decode split the lifecycle DistServe/Splitwise-style:
/// a prefill-role replica retires a request the moment its prompt is
/// resident and hands it — priced by [`KvTransferConfig`] — to a
/// decode-role replica, which admits it with the prefill already
/// credited and only generates tokens. A role is a property of the
/// *evaluator* (see `Evaluator::with_pool_role`), so pools with
/// different hardware carry different roles naturally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum PoolRole {
    /// Full-lifecycle replicas (the historical colocated default).
    #[default]
    Mixed,
    /// Prompt-processing only: requests hand off at prompt residency.
    Prefill,
    /// Token-generation only: requests arrive with prefill credited.
    Decode,
}

impl PoolRole {
    /// Every role, for sweeps and parsers.
    pub const ALL: [PoolRole; 3] = [PoolRole::Mixed, PoolRole::Prefill, PoolRole::Decode];

    /// Short display label (the `scenario` spelling).
    pub fn label(&self) -> &'static str {
        match self {
            PoolRole::Mixed => "mixed",
            PoolRole::Prefill => "prefill",
            PoolRole::Decode => "decode",
        }
    }

    /// Whether fresh (prefill-phase) arrivals may be routed to a pool
    /// of this role.
    pub fn serves_prefill(&self) -> bool {
        !matches!(self, PoolRole::Decode)
    }

    /// Whether prefill-complete handoffs may be routed to a pool of
    /// this role.
    pub fn accepts_handoff(&self) -> bool {
        matches!(self, PoolRole::Decode)
    }
}

impl std::fmt::Display for PoolRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// KV-transfer cost model for cross-pool handoffs.
///
/// When a prefill-role replica retires a prompt-resident request, the
/// request's KV cache — the pages its reservation held — must move over
/// the interconnect to the decode pool before the first token can be
/// generated there. The transfer is priced from the reserved page
/// count: a fixed per-page setup latency (descriptor/doorbell cost per
/// page-granular DMA) plus the bytes over the link bandwidth. Both
/// terms are monotone in the page count, which keeps the
/// `TtftPredictor`'s transfer-inclusive bound a sound lower bound.
///
/// The defaults model an NVLink-class link (64 GB/s, 20 µs per page)
/// and only matter when a scenario arms prefill/decode pools — a
/// mixed-only cluster never prices a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvTransferConfig {
    /// Fixed setup latency per transferred KV page, in microseconds.
    pub page_latency_us: f64,
    /// Link bandwidth in gigabytes (1e9 bytes) per second.
    pub gbps: f64,
}

impl KvTransferConfig {
    /// Default per-page setup latency in microseconds.
    pub const DEFAULT_PAGE_LATENCY_US: f64 = 20.0;
    /// Default link bandwidth in GB/s (NVLink-class).
    pub const DEFAULT_GBPS: f64 = 64.0;

    /// Seconds to transfer `pages` pages totalling `bytes` bytes.
    pub fn transfer_secs(&self, pages: u64, bytes: u64) -> f64 {
        self.page_latency_us * 1e-6 * pages as f64 + bytes as f64 / (self.gbps * 1e9)
    }
}

impl Default for KvTransferConfig {
    fn default() -> Self {
        KvTransferConfig {
            page_latency_us: Self::DEFAULT_PAGE_LATENCY_US,
            gbps: Self::DEFAULT_GBPS,
        }
    }
}

/// Prompt-processing (prefill) configuration for the serving engine.
///
/// Disabled by default: the simulator then reproduces the historical
/// decode-only behavior bit-exactly, and TTFT measures admission → first
/// decode step. When enabled, every request must process its
/// `context_len` prompt tokens before decoding, in chunks of
/// `chunk_tokens`, and TTFT covers arrival → first emitted token
/// end-to-end:
///
/// * [`SchedulingPolicy::Wave`] admits a wave, prefills the *whole
///   batch* (FCFS, chunked), then decodes it in lockstep — first tokens
///   only after whole-batch prefill.
/// * [`SchedulingPolicy::Continuous`] starts a request's chunked prefill
///   at admission and interleaves prompt chunks with decode steps of the
///   running batch, so running decodes are not starved behind long
///   prompts (at a bounded per-chunk TPOT cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct PrefillConfig {
    /// Whether prompt processing is simulated at all.
    pub enabled: bool,
    /// Prompt tokens per prefill chunk (≥ 1; the interleaving
    /// granularity under the continuous policy).
    pub chunk_tokens: u64,
}

impl PrefillConfig {
    /// The default interleaving granularity in prompt tokens per chunk.
    pub const DEFAULT_CHUNK: u64 = 512;

    /// Prefill disabled — decode-only simulation (the historical
    /// default).
    pub fn disabled() -> Self {
        PrefillConfig {
            enabled: false,
            chunk_tokens: Self::DEFAULT_CHUNK,
        }
    }

    /// Chunked prefill with `chunk_tokens` prompt tokens per chunk.
    pub fn chunked(chunk_tokens: u64) -> Self {
        PrefillConfig {
            enabled: true,
            chunk_tokens: chunk_tokens.max(1),
        }
    }
}

impl Default for PrefillConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Paged KV cache configuration for the serving engine.
///
/// Disabled by default: KV admission then uses the historical
/// whole-request reservation (`kv_reservation(final_len, t_max)`) and
/// eviction is all-or-nothing per request — bit-exact with every run
/// before this knob existed. When enabled (continuous policy only), each
/// replica manages a [`pim_mem::PagePool`]: admission reserves
/// page-rounded footprints, requests whose prompt shares a prefix with a
/// cached sequence map the shared pages and skip their prefill (TTFT
/// drops by the shared prefill cost), released shared pages stay warm as
/// reclaimable cache, and memory pressure reclaims cold pages LRU-first
/// before falling back to whole-request eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct PagedKvConfig {
    /// Whether the paged KV pool (and with it prefix caching) is on.
    pub prefix_caching: bool,
    /// Page size in bytes (≥ 1; the reservation and reclamation
    /// granularity).
    pub page_bytes: u64,
}

impl PagedKvConfig {
    /// The default page size in bytes (8 MB ≈ 16 tokens of 7B-class
    /// MHA KV at 512 KB/token — the vLLM-style block granularity). A
    /// page must hold at least one token of KV or the pool would
    /// under-account memory; Table I's densest model (72B MHA,
    /// ~5 MB/token) still fits one.
    pub const DEFAULT_PAGE_BYTES: u64 = 8 << 20;

    /// Paged KV disabled — whole-request reservations (the historical
    /// default).
    pub fn disabled() -> Self {
        PagedKvConfig {
            prefix_caching: false,
            page_bytes: Self::DEFAULT_PAGE_BYTES,
        }
    }

    /// Paged KV with prefix caching at `page_bytes` granularity.
    pub fn paged(page_bytes: u64) -> Self {
        PagedKvConfig {
            prefix_caching: true,
            page_bytes: page_bytes.max(1),
        }
    }
}

impl Default for PagedKvConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Greedy admission of a wave from `pending` under the memory policy.
/// Returns how many of the leading requests are admitted (at least one —
/// a single request that cannot fit is admitted alone and truncated to
/// capacity by construction of the workloads). Extracted verbatim from
/// the original wave loop.
pub(crate) fn wave_greedy_admit(eval: &Evaluator, pending: &[Request], t_max: u64) -> usize {
    let capacity = eval.replica_kv_capacity();
    let limit = eval.hfp_batch_limit(t_max);
    let mut used = 0u64;
    let mut n = 0usize;
    for r in pending {
        if n as u64 >= limit {
            break;
        }
        let need = eval.kv_reservation(r.final_len(), t_max);
        if n > 0 && used + need > capacity {
            break;
        }
        used += need;
        n += 1;
        if used >= capacity {
            break;
        }
    }
    n.max(1)
}

/// Wave sizing for the head of `queue_rest`: greedy capacity bound, then
/// balance the remaining requests evenly over the implied number of
/// waves (a trailing near-empty wave would waste a whole decode pass).
pub(crate) fn wave_plan(eval: &Evaluator, queue_rest: &[Request], t_max: u64) -> usize {
    let greedy = wave_greedy_admit(eval, queue_rest, t_max);
    let remaining = queue_rest.len();
    let waves_needed = remaining.div_ceil(greedy);
    remaining.div_ceil(waves_needed).min(greedy)
}

/// Incremental admission bookkeeping for the continuous policy: tracks
/// the reservation bytes of the running batch against replica capacity
/// and the HFP placement limit.
#[derive(Debug)]
pub(crate) struct ContinuousAdmitter {
    capacity: u64,
    limit: u64,
    used: u64,
}

impl ContinuousAdmitter {
    pub(crate) fn new(eval: &Evaluator, t_max: u64) -> Self {
        ContinuousAdmitter {
            capacity: eval.replica_kv_capacity(),
            limit: eval.hfp_batch_limit(t_max),
            used: 0,
        }
    }

    /// The raw admission predicate against a *hypothetical* batch state
    /// (`used` reserved bytes, `occupancy` running requests) — used by
    /// eviction planning, which must know whether removing a victim set
    /// would make a blocked candidate admissible before actually
    /// evicting anyone.
    pub(crate) fn fits_given(&self, need: u64, used: u64, occupancy: usize) -> bool {
        // Mirror the wave loop's guarantee: an empty batch always accepts
        // its first request, even one whose worst case exceeds capacity.
        if occupancy == 0 {
            return true;
        }
        if occupancy as u64 >= self.limit {
            return false;
        }
        used.saturating_add(need) <= self.capacity
    }

    /// Reserves `r`'s memory. Call only after [`Self::fits`] approved it.
    /// Production code reserves through [`Self::reserve_bytes`] with a
    /// role-aware length; this convenience form pins the equivalence
    /// for the mixed role in tests.
    #[cfg(test)]
    pub(crate) fn reserve(&mut self, eval: &Evaluator, r: &Request, t_max: u64) {
        self.used = self
            .used
            .saturating_add(eval.kv_reservation(r.final_len(), t_max));
    }

    /// Releases a finished request's reservation (test counterpart of
    /// [`Self::release_bytes`]).
    #[cfg(test)]
    pub(crate) fn release(&mut self, eval: &Evaluator, r: &Request, t_max: u64) {
        self.used = self
            .used
            .saturating_sub(eval.kv_reservation(r.final_len(), t_max));
    }

    /// Reserves an explicit byte amount (the paged-KV path, where the
    /// page pool prices admissions instead of `kv_reservation`).
    pub(crate) fn reserve_bytes(&mut self, bytes: u64) {
        self.used = self.used.saturating_add(bytes);
    }

    /// Releases an explicit byte amount (paged-KV path).
    pub(crate) fn release_bytes(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Reservation bytes currently held by the running batch.
    pub(crate) fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SystemConfig, Techniques};
    use llm_model::LLM_7B_32K;
    use workload::{Dataset, TraceBuilder};

    fn eval() -> Evaluator {
        Evaluator::new(
            SystemConfig::cent_for(&LLM_7B_32K),
            LLM_7B_32K,
            Techniques::pimphony(),
        )
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::Wave);
        assert_eq!(SchedulingPolicy::Wave.label(), "wave");
        assert_eq!(SchedulingPolicy::Continuous.to_string(), "continuous");
    }

    #[test]
    fn preemption_labels_and_default() {
        assert_eq!(PreemptionPolicy::default(), PreemptionPolicy::None);
        assert!(!PreemptionPolicy::None.evicts());
        for p in PreemptionPolicy::ALL {
            assert_eq!(p.to_string(), p.label());
        }
        assert!(PreemptionPolicy::EvictRestart.evicts());
        assert_eq!(PreemptionPolicy::EvictPause.label(), "evict-pause");
    }

    #[test]
    fn shedding_and_victim_order_labels_and_defaults() {
        assert_eq!(SheddingPolicy::default(), SheddingPolicy::None);
        assert!(!SheddingPolicy::None.sheds());
        assert!(SheddingPolicy::Reject.sheds());
        for p in SheddingPolicy::ALL {
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(VictimOrder::default(), VictimOrder::RecentFirst);
        for o in VictimOrder::ALL {
            assert_eq!(o.to_string(), o.label());
        }
        assert_eq!(VictimOrder::SlackFirst.label(), "slack-first");
    }

    #[test]
    fn pool_role_labels_and_phase_predicates() {
        assert_eq!(PoolRole::default(), PoolRole::Mixed);
        for r in PoolRole::ALL {
            assert_eq!(r.to_string(), r.label());
        }
        // Fresh arrivals go to prefill-serving pools; handoffs go only
        // to decode pools (a mixed pool completes requests in place and
        // never receives a handoff).
        assert!(PoolRole::Mixed.serves_prefill());
        assert!(PoolRole::Prefill.serves_prefill());
        assert!(!PoolRole::Decode.serves_prefill());
        assert!(PoolRole::Decode.accepts_handoff());
        assert!(!PoolRole::Mixed.accepts_handoff());
        assert!(!PoolRole::Prefill.accepts_handoff());
    }

    #[test]
    fn kv_transfer_is_monotone_in_pages_and_bytes() {
        let cfg = KvTransferConfig::default();
        assert_eq!(cfg.transfer_secs(0, 0), 0.0);
        let mut last = 0.0;
        for pages in 1..=16u64 {
            let secs = cfg.transfer_secs(pages, pages * (8 << 20));
            assert!(secs > last, "{pages} pages: {secs} <= {last}");
            last = secs;
        }
        // The two terms are separable: pure page-latency growth and
        // pure bandwidth growth are each monotone on their own.
        assert!(cfg.transfer_secs(2, 100) > cfg.transfer_secs(1, 100));
        assert!(cfg.transfer_secs(1, 200) > cfg.transfer_secs(1, 100));
        // Sanity of magnitudes: one 8 MB page at 64 GB/s + 20 µs.
        let one = cfg.transfer_secs(1, 8 << 20);
        assert!((one - (20e-6 + (8 << 20) as f64 / 64e9)).abs() < 1e-15);
    }

    #[test]
    fn prefill_config_defaults_and_clamps() {
        assert_eq!(PrefillConfig::default(), PrefillConfig::disabled());
        assert!(!PrefillConfig::default().enabled);
        let c = PrefillConfig::chunked(0);
        assert!(c.enabled);
        assert_eq!(c.chunk_tokens, 1, "chunk clamps to >= 1");
        assert_eq!(
            PrefillConfig::chunked(PrefillConfig::DEFAULT_CHUNK).chunk_tokens,
            512
        );
    }

    #[test]
    fn paged_kv_config_defaults_and_clamps() {
        assert_eq!(PagedKvConfig::default(), PagedKvConfig::disabled());
        assert!(!PagedKvConfig::default().prefix_caching);
        let c = PagedKvConfig::paged(0);
        assert!(c.prefix_caching);
        assert_eq!(c.page_bytes, 1, "page size clamps to >= 1");
        assert_eq!(
            PagedKvConfig::paged(PagedKvConfig::DEFAULT_PAGE_BYTES).page_bytes,
            8 << 20
        );
    }

    #[test]
    fn continuous_admitter_mirrors_wave_greedy_count() {
        let e = eval();
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(9)
            .requests(64)
            .decode_len(32)
            .build();
        let reqs = trace.requests();
        let t_max = reqs.iter().map(|r| r.final_len()).max().unwrap();
        let greedy = wave_greedy_admit(&e, reqs, t_max);

        let mut adm = ContinuousAdmitter::new(&e, t_max);
        let mut n = 0usize;
        for r in reqs {
            let need = e.kv_reservation(r.final_len(), t_max);
            if !adm.fits_given(need, adm.used(), n) {
                break;
            }
            adm.reserve(&e, r, t_max);
            n += 1;
        }
        // The incremental admitter packs at least as tightly as the wave
        // loop's greedy scan (which also stops at the `used >= capacity`
        // boundary), and never less than one.
        assert!(
            n >= greedy.min(reqs.len()).saturating_sub(1).max(1),
            "{n} vs greedy {greedy}"
        );
    }

    #[test]
    fn released_memory_is_reusable() {
        let e = eval();
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(3)
            .requests(4)
            .decode_len(8)
            .build();
        let r = trace.requests()[0];
        let t_max = r.final_len();
        let mut adm = ContinuousAdmitter::new(&e, t_max);
        adm.reserve(&e, &r, t_max);
        let used_before = adm.used;
        adm.release(&e, &r, t_max);
        assert_eq!(adm.used, 0);
        adm.reserve(&e, &r, t_max);
        assert_eq!(adm.used, used_before);
    }

    #[test]
    fn wave_plan_balances_trailing_waves() {
        let e = eval();
        // If greedy admits G and 2G-1 requests remain, planning balances
        // to ceil((2G-1)/2) instead of a full G then a near-empty tail.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(40)
            .decode_len(8)
            .build();
        let reqs = trace.requests();
        let t_max = reqs.iter().map(|r| r.final_len()).max().unwrap();
        let planned = wave_plan(&e, reqs, t_max);
        let greedy = wave_greedy_admit(&e, reqs, t_max);
        assert!(planned >= 1 && planned <= greedy);
    }
}
