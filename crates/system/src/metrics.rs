//! Per-request serving metrics: TTFT, TPOT, end-to-end latency, and
//! their distribution summaries.
//!
//! The wave loop of the original reproduction only reported aggregate
//! decode throughput (the paper's Figs. 13–15/17 metric). Online serving
//! is judged on *latency percentiles* instead, so the engine records one
//! [`RequestTiming`] per finished request and summarizes them here.
//!
//! With prefill enabled ([`crate::policy::PrefillConfig`]) TTFT covers
//! arrival → first emitted token *end-to-end*: queueing delay, prompt
//! processing, and the first decode iteration. Each timing carries the
//! stage boundaries ([`RequestTiming::prefill_end`]) so reports can
//! decompose TTFT into queueing vs prefill delay
//! ([`LatencyReport::queueing`] / [`LatencyReport::prefill`]). When
//! prefill is disabled (the historical decode-only mode) `prefill_end`
//! coincides with `admitted` and TTFT measures arrival → first decode
//! step; comparisons between policies remain apples-to-apples because
//! every policy shares whichever convention is configured.
//!
//! Requests that never emit a token (a zero decode budget) produce **no**
//! timing sample: a fabricated first-token instant would silently clamp
//! TTFT to the admission time. [`LatencyReport::completed`] therefore
//! counts requests that emitted at least one token.

use crate::policy::PoolRole;
use serde::Serialize;

/// Timestamps of one request's path through a replica, in seconds of the
/// replica's virtual clock (trace epoch = 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTiming {
    /// Request id within the trace.
    pub id: u64,
    /// Arrival time (0 for closed-world batch traces).
    pub arrival: f64,
    /// When the scheduling policy admitted the request into a batch.
    pub admitted: f64,
    /// When the request's prompt finished processing (equals `admitted`
    /// when prefill is not modeled).
    pub prefill_end: f64,
    /// When the first generated token completed.
    pub first_token: f64,
    /// When the last generated token completed.
    pub finished: f64,
    /// Tokens generated.
    pub decode_len: u64,
    /// The request's scheduling priority class (higher is more urgent).
    pub priority: u8,
    /// The tenant (traffic class) the request belongs to (0 for
    /// single-tenant traces).
    pub tenant: u8,
    /// How many times the request was evicted under memory pressure.
    pub evictions: u32,
    /// Seconds spent *re*-prefilling tokens that had already been
    /// computed before an eviction dropped their KV entries (0 when the
    /// request was never evicted). This is re-work: attributing it to
    /// the ordinary prefill bucket would silently inflate the
    /// prompt-processing story, so it gets its own
    /// [`LatencyReport::restart`] summary.
    pub restart_secs: f64,
}

impl RequestTiming {
    /// Time to first token: arrival → first generated token (includes
    /// queueing, prompt processing when modeled, and the first decode
    /// iteration).
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// Queueing delay: arrival → admission into a batch.
    pub fn queueing_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Prompt-processing delay: admission → prompt resident in the KV
    /// cache (0 when prefill is not modeled).
    pub fn prefill_delay(&self) -> f64 {
        self.prefill_end - self.admitted
    }

    /// Time per output token over the steady decode phase (first → last
    /// token). Single-token requests have no inter-token gap; their TPOT
    /// is the first (only) token's post-prefill service time.
    pub fn tpot(&self) -> f64 {
        if self.decode_len > 1 {
            (self.finished - self.first_token) / (self.decode_len - 1) as f64
        } else {
            self.first_token - self.prefill_end
        }
    }

    /// End-to-end latency: arrival → last generated token.
    pub fn e2e(&self) -> f64 {
        self.finished - self.arrival
    }

    /// Seconds of post-eviction re-prefill service (see
    /// [`RequestTiming::restart_secs`]).
    pub fn restart_delay(&self) -> f64 {
        self.restart_secs
    }
}

/// Distribution summary of one latency metric, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a sample set (empty input produces the zero summary).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        // total_cmp, not partial_cmp: floats are not totally ordered, and
        // a NaN must not be able to panic (or reorder) the percentile
        // pipeline — under total_cmp a stray NaN sorts last,
        // deterministically (the float-key simlint rule).
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            // Nearest-rank percentile (smallest rank k with k/n >= q):
            // monotone in q by construction. The epsilon pins the exact
            // integer boundaries (`0.95 * 20` must stay rank 19, not
            // jump to 20): 0.95 is not representable in binary, so the
            // product can only be trusted to land within rounding noise
            // of the boundary, and a bare `ceil` would amplify any
            // upward noise into a whole rank. Safe because the exact
            // products of the fixed quantiles are multiples of 1/100,
            // which is many orders above the epsilon.
            let rank = (q * sorted.len() as f64 - 1e-9).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

/// Per-replica serving totals, populated by the cluster layer so
/// load-balancer skew is observable in the serving report
/// (`crate::ServingReport::per_replica`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ReplicaBreakdown {
    /// Requests the router dispatched to this replica.
    pub routed: u64,
    /// Requests that completed on this replica.
    pub served: u64,
    /// Decode tokens this replica produced.
    pub tokens: u64,
    /// Seconds this replica spent decoding.
    pub busy_seconds: f64,
    /// This replica's virtual end time.
    pub seconds: f64,
    /// Peak KV bytes reserved by the running batch under the active
    /// memory policy (whole-wave reservation under the wave policy).
    pub peak_reserved_kv: u64,
    /// Requests this replica evicted under memory pressure (0 unless a
    /// preemption policy is active).
    pub evictions: u64,
    /// Requests deadline-aware admission control dropped on this replica
    /// (0 unless a [`crate::policy::SheddingPolicy`] is armed).
    pub shed: u64,
}

/// Per-pool serving totals, populated by the cluster layer when the
/// scenario defines heterogeneous replica pools
/// (`crate::ServingReport::per_pool`; empty for pool-free runs so
/// historical reports stay byte-identical). A prefill pool's `served`
/// counts requests it *handed off* — the request finishes, and is
/// counted again, in the decode pool that ran its token generation.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PoolBreakdown {
    /// The pool's name from the scenario spec.
    pub name: String,
    /// The serving phase the pool owns.
    pub role: PoolRole,
    /// Replicas in the pool.
    pub replicas: u32,
    /// Requests the phase-aware router dispatched into this pool.
    pub routed: u64,
    /// Requests retired by this pool (handed off for prefill pools,
    /// finished for decode/mixed pools).
    pub served: u64,
    /// Decode tokens the pool produced (0 for a pure prefill pool).
    pub tokens: u64,
    /// Seconds the pool's replicas spent serving batches.
    pub busy_seconds: f64,
    /// Requests evicted under memory pressure inside the pool.
    pub evictions: u64,
    /// Requests deadline-aware admission control dropped in the pool.
    pub shed: u64,
    /// Prefill-complete requests this pool handed off to a decode pool
    /// (0 unless the pool serves prefill in a disaggregated cluster).
    pub handoffs: u64,
    /// KV-cache bytes this pool shipped across the interconnect while
    /// handing off.
    pub kv_transferred_bytes: u64,
    /// Seconds of modeled KV-transfer latency the pool's handoffs spent
    /// on the wire (sum over handoffs, not wall-clock overlap).
    pub transfer_seconds: f64,
}

/// Jain's fairness index over a load vector: `(Σx)² / (n·Σx²)`, 1.0 for
/// a perfectly even split, approaching `1/n` when one entry carries
/// everything. Empty and all-zero inputs are defined as perfectly fair.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sum_sq)
    }
}

/// Latency statistics over every request that completed in a run.
///
/// Units and the full TTFT decomposition are documented in
/// `docs/metrics.md`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LatencyReport {
    /// Requests that finished with at least one emitted token.
    pub completed: u64,
    /// Time-to-first-token distribution (arrival → first token; includes
    /// prompt processing when prefill is modeled).
    pub ttft: LatencySummary,
    /// Time-per-output-token distribution.
    pub tpot: LatencySummary,
    /// End-to-end latency distribution.
    pub e2e: LatencySummary,
    /// Queueing-delay distribution (arrival → admission) — the TTFT
    /// share the *scheduler* is responsible for.
    pub queueing: LatencySummary,
    /// Prompt-processing delay distribution (admission → prompt
    /// resident; all-zero when prefill is not modeled) — the TTFT share
    /// the *prefill stage* is responsible for.
    pub prefill: LatencySummary,
    /// Post-eviction re-prefill service time distribution (all-zero
    /// when nothing was evicted) — re-work the *preemption policy* is
    /// responsible for, kept out of the `prefill` bucket so the
    /// prompt-processing decomposition stays honest.
    pub restart: LatencySummary,
}

impl LatencyReport {
    /// Builds the report from per-request timings.
    pub fn from_timings(timings: &[RequestTiming]) -> Self {
        let collect =
            |f: fn(&RequestTiming) -> f64| -> Vec<f64> { timings.iter().map(f).collect() };
        LatencyReport {
            completed: timings.len() as u64,
            ttft: LatencySummary::from_samples(&collect(RequestTiming::ttft)),
            tpot: LatencySummary::from_samples(&collect(RequestTiming::tpot)),
            e2e: LatencySummary::from_samples(&collect(RequestTiming::e2e)),
            queueing: LatencySummary::from_samples(&collect(RequestTiming::queueing_delay)),
            prefill: LatencySummary::from_samples(&collect(RequestTiming::prefill_delay)),
            restart: LatencySummary::from_samples(&collect(RequestTiming::restart_delay)),
        }
    }

    /// Splits the timings into one report per priority class present,
    /// sorted by descending priority (the most urgent class first) —
    /// the per-SLO view preemption policies are judged on. A
    /// single-class trace yields one entry identical to the aggregate
    /// report.
    pub fn by_priority(timings: &[RequestTiming]) -> Vec<PriorityLatency> {
        let mut classes: Vec<u8> = timings.iter().map(|t| t.priority).collect();
        classes.sort_unstable_by(|a, b| b.cmp(a));
        classes.dedup();
        classes
            .into_iter()
            .map(|priority| {
                let class: Vec<RequestTiming> = timings
                    .iter()
                    .filter(|t| t.priority == priority)
                    .copied()
                    .collect();
                PriorityLatency {
                    priority,
                    latency: LatencyReport::from_timings(&class),
                }
            })
            .collect()
    }

    /// Splits the timings into one [`TenantLatency`] per tenant id
    /// present, ascending. `slos` maps tenant ids to TTFT targets in
    /// seconds (tenants absent from the map have no target); attainment
    /// is the fraction of the tenant's completed requests whose TTFT
    /// met its target. A single-tenant trace yields one entry whose
    /// latency mirrors the aggregate report.
    pub fn by_tenant(timings: &[RequestTiming], slos: &[(u8, f64)]) -> Vec<TenantLatency> {
        let mut tenants: Vec<u8> = timings.iter().map(|t| t.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants
            .into_iter()
            .map(|tenant| {
                let class: Vec<RequestTiming> = timings
                    .iter()
                    .filter(|t| t.tenant == tenant)
                    .copied()
                    .collect();
                let slo_ttft = slos
                    .iter()
                    .find(|(t, _)| *t == tenant)
                    .map(|(_, s)| *s)
                    .unwrap_or(f64::INFINITY);
                let met = class.iter().filter(|t| t.ttft() <= slo_ttft).count();
                TenantLatency {
                    tenant,
                    latency: LatencyReport::from_timings(&class),
                    tokens: class.iter().map(|t| t.decode_len).sum(),
                    goodput_tokens: class
                        .iter()
                        .filter(|t| t.ttft() <= slo_ttft)
                        .map(|t| t.decode_len)
                        .sum(),
                    slo_ttft,
                    slo_attainment: if class.is_empty() {
                        1.0
                    } else {
                        met as f64 / class.len() as f64
                    },
                }
            })
            .collect()
    }
}

/// Latency statistics of one priority class (see
/// [`LatencyReport::by_priority`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PriorityLatency {
    /// The class's priority value (higher is more urgent).
    pub priority: u8,
    /// Latency statistics over the class's completed requests.
    pub latency: LatencyReport,
}

/// Serving statistics of one tenant (traffic class): latency summary,
/// delivered tokens, and — when the tenant carries an SLO target —
/// attainment against it (see [`LatencyReport::by_tenant`]; field
/// glossary in `docs/metrics.md`).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TenantLatency {
    /// The tenant id ([`workload::Request::tenant`]).
    pub tenant: u8,
    /// Latency statistics over the tenant's completed requests.
    pub latency: LatencyReport,
    /// Decode tokens delivered to the tenant (the trace-demanded tokens
    /// of its completed requests, excluding any eviction re-decode
    /// waste).
    pub tokens: u64,
    /// The share of `tokens` delivered *inside* the tenant's TTFT SLO —
    /// its goodput numerator (`crate::ServingReport::goodput` divides
    /// the cluster-wide sum by wall-clock seconds). Equals `tokens`
    /// when the tenant has no target: an untargeted tenant's service
    /// always counts.
    pub goodput_tokens: u64,
    /// The tenant's p99-style TTFT SLO target in seconds
    /// (`f64::INFINITY` when the tenant has none).
    pub slo_ttft: f64,
    /// Fraction of the tenant's completed requests whose TTFT met the
    /// SLO target (1.0 when there is no target or no completion —
    /// vacuously attained).
    pub slo_attainment: f64,
}

/// Jain's fairness index over per-tenant delivered tokens (goodput):
/// 1.0 when every tenant received equal token service, approaching
/// `1/tenants` when one tenant monopolized the cluster. Empty and
/// all-zero inputs are defined as perfectly fair (see
/// [`jain_fairness`]).
pub fn tenant_goodput_fairness(tenants: &[TenantLatency]) -> f64 {
    let tokens: Vec<f64> = tenants.iter().map(|t| t.tokens as f64).collect();
    jain_fairness(&tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(arrival: f64, admitted: f64, first: f64, finished: f64, d: u64) -> RequestTiming {
        RequestTiming {
            id: 0,
            arrival,
            admitted,
            prefill_end: admitted,
            first_token: first,
            finished,
            decode_len: d,
            priority: 0,
            tenant: 0,
            evictions: 0,
            restart_secs: 0.0,
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::from_samples(&samples);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_and_singleton_summaries() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        // 1 sample: every rank clamps to the sole observation and the
        // percentiles stay (trivially) monotone.
        let s = LatencySummary::from_samples(&[2.5]);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (2.5, 2.5, 2.5, 2.5));
        assert_eq!(s.mean, 2.5);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn two_sample_nearest_rank() {
        // n = 2: p50 is rank ceil(0.5·2) = 1 (the smaller sample), while
        // p95/p99 are rank 2 — clamp's upper boundary. Monotone, and p50
        // must NOT be pulled up to the max.
        let s = LatencySummary::from_samples(&[4.0, 1.0]);
        assert_eq!(s.p50, 1.0);
        assert_eq!(s.p95, 4.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn integer_rank_boundaries_do_not_round_up() {
        // 0.95·20 = 19 exactly in ℝ but only within rounding noise of it
        // in f64; the nearest-rank pick must return the 19th sample, not
        // the 20th, regardless of which side the product lands on.
        let samples: Vec<f64> = (1..=20).map(f64::from).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.p95, 19.0);
        assert_eq!(s.p50, 10.0); // 0.50·20 = rank 10, not 11
        assert_eq!(s.p99, 20.0); // ceil(19.8) = 20
        assert_eq!(s.max, 20.0);
    }

    #[test]
    fn rank_clamps_at_lower_boundary() {
        // Tiny q·n products still clamp to rank 1 (first sample), never
        // rank 0 / underflow.
        let s = LatencySummary::from_samples(&[7.0, 9.0]);
        assert_eq!(s.p50, 7.0);
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness(&[3.0, 3.0, 3.0]), 1.0);
        let skewed = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "{skewed}");
        let mild = jain_fairness(&[2.0, 1.0]);
        assert!(mild > 0.25 && mild < 1.0, "{mild}");
    }

    #[test]
    fn timing_derivations() {
        let t = timing(1.0, 2.0, 3.0, 12.0, 10);
        assert_eq!(t.ttft(), 2.0);
        assert_eq!(t.e2e(), 11.0);
        assert!((t.tpot() - 1.0).abs() < 1e-12);
        // Single-token request: TPOT is the sole token's service time.
        let one = timing(0.0, 0.5, 1.5, 1.5, 1);
        assert_eq!(one.tpot(), 1.0);
    }

    #[test]
    fn ttft_decomposes_into_queueing_prefill_and_first_step() {
        let t = RequestTiming {
            id: 1,
            arrival: 1.0,
            admitted: 2.5,
            prefill_end: 4.0,
            first_token: 4.2,
            finished: 9.2,
            decode_len: 6,
            priority: 0,
            tenant: 0,
            evictions: 0,
            restart_secs: 0.0,
        };
        assert!((t.queueing_delay() - 1.5).abs() < 1e-12);
        assert!((t.prefill_delay() - 1.5).abs() < 1e-12);
        // TTFT = queueing + prefill + first decode step, exactly.
        let first_step = t.first_token - t.prefill_end;
        assert!((t.ttft() - (t.queueing_delay() + t.prefill_delay() + first_step)).abs() < 1e-12);
        // Single-token TPOT measures from the end of prefill, not from
        // admission — prompt processing is not token service time.
        let one = RequestTiming {
            decode_len: 1,
            finished: 4.2,
            ..t
        };
        assert!((one.tpot() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn report_summarizes_queueing_and_prefill() {
        let mk = |arrival: f64, admitted: f64, prefill_end: f64| RequestTiming {
            id: 0,
            arrival,
            admitted,
            prefill_end,
            first_token: prefill_end + 0.1,
            finished: prefill_end + 1.1,
            decode_len: 4,
            priority: 0,
            tenant: 0,
            evictions: 0,
            restart_secs: 0.0,
        };
        let r = LatencyReport::from_timings(&[mk(0.0, 0.5, 1.5), mk(1.0, 1.2, 3.2)]);
        assert!((r.queueing.max - 0.5).abs() < 1e-12);
        assert!((r.prefill.max - 2.0).abs() < 1e-12);
        assert!((r.queueing.mean - 0.35).abs() < 1e-12);
        // Decode-only timings leave the prefill summary at zero.
        let d = LatencyReport::from_timings(&[timing(0.0, 0.5, 1.0, 2.0, 4)]);
        assert_eq!(d.prefill, LatencySummary::from_samples(&[0.0]));
    }

    #[test]
    fn restart_rework_lands_in_its_own_bucket_not_prefill() {
        // Two requests with identical prompt-residency timestamps; one
        // was evicted and spent 2.0 s re-prefilling afterwards. The
        // prefill decomposition (admission → first prompt residency)
        // must be identical for both — re-work is reported under
        // `restart`, never folded into `prefill`.
        let clean = timing(0.0, 1.0, 3.5, 9.0, 8);
        let evicted = RequestTiming {
            evictions: 1,
            restart_secs: 2.0,
            finished: 11.0,
            ..clean
        };
        assert_eq!(clean.prefill_delay(), evicted.prefill_delay());
        assert_eq!(evicted.restart_delay(), 2.0);
        let r = LatencyReport::from_timings(&[clean, evicted]);
        assert_eq!(r.prefill.max, clean.prefill_delay());
        assert_eq!(r.restart.max, 2.0);
        assert_eq!(r.restart.p50, 0.0, "the clean request has no re-work");
        // An eviction-free run reports an all-zero restart summary.
        let quiet = LatencyReport::from_timings(&[clean]);
        assert_eq!(quiet.restart, LatencySummary::from_samples(&[0.0]));
    }

    #[test]
    fn by_priority_splits_classes_most_urgent_first() {
        let mk = |priority: u8, first: f64| RequestTiming {
            priority,
            ..timing(0.0, 0.5, first, first + 1.0, 4)
        };
        let timings = [mk(0, 10.0), mk(2, 1.0), mk(0, 12.0), mk(1, 5.0)];
        let split = LatencyReport::by_priority(&timings);
        assert_eq!(split.len(), 3);
        assert_eq!(
            split.iter().map(|p| p.priority).collect::<Vec<_>>(),
            vec![2, 1, 0]
        );
        assert_eq!(split[0].latency.completed, 1);
        assert_eq!(split[2].latency.completed, 2);
        assert!(split[0].latency.ttft.max < split[2].latency.ttft.p50);
        // A single-class input collapses to the aggregate report.
        let single = LatencyReport::by_priority(&[mk(0, 10.0), mk(0, 12.0)]);
        assert_eq!(single.len(), 1);
        assert_eq!(
            single[0].latency,
            LatencyReport::from_timings(&[mk(0, 10.0), mk(0, 12.0)])
        );
    }

    #[test]
    fn by_tenant_splits_ascending_with_slo_attainment() {
        let mk = |tenant: u8, first: f64, d: u64| RequestTiming {
            tenant,
            decode_len: d,
            ..timing(0.0, 0.5, first, first + 1.0, d)
        };
        // Tenant 0: TTFTs 1.0 and 5.0; tenant 2: TTFT 10.0.
        let timings = [mk(0, 1.0, 8), mk(2, 10.0, 4), mk(0, 5.0, 8)];
        let split = LatencyReport::by_tenant(&timings, &[(0, 2.0), (2, 20.0)]);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].tenant, 0);
        assert_eq!(split[1].tenant, 2);
        assert_eq!(split[0].latency.completed, 2);
        assert_eq!(split[0].tokens, 16);
        assert_eq!(split[0].slo_ttft, 2.0);
        assert!((split[0].slo_attainment - 0.5).abs() < 1e-12);
        assert_eq!(split[1].slo_attainment, 1.0);
        // Goodput tokens count only the in-SLO completions: tenant 0
        // delivered 16 tokens but only the TTFT-1.0 request's 8 landed
        // inside its 2.0 s target; tenant 2 met its target fully.
        assert_eq!(split[0].goodput_tokens, 8);
        assert_eq!(split[1].goodput_tokens, split[1].tokens);
        // A tenant without a target is vacuously attained.
        let untargeted = LatencyReport::by_tenant(&timings, &[]);
        assert!(untargeted.iter().all(|t| t.slo_attainment == 1.0));
        assert!(untargeted.iter().all(|t| t.slo_ttft.is_infinite()));
        // Goodput fairness: even split is 1.0, monopolized is 1/n.
        assert_eq!(tenant_goodput_fairness(&[]), 1.0);
        let even = LatencyReport::by_tenant(&[mk(0, 1.0, 8), mk(1, 1.0, 8)], &[]);
        assert!((tenant_goodput_fairness(&even) - 1.0).abs() < 1e-12);
        let skewed = LatencyReport::by_tenant(&[mk(0, 1.0, 8), mk(1, 1.0, 0)], &[]);
        assert!((tenant_goodput_fairness(&skewed) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_counts_completions() {
        let r = LatencyReport::from_timings(&[
            timing(0.0, 0.0, 1.0, 5.0, 8),
            timing(0.5, 1.0, 2.0, 6.0, 8),
        ]);
        assert_eq!(r.completed, 2);
        assert!(r.ttft.p50 > 0.0 && r.e2e.max >= r.e2e.p99);
    }
}
