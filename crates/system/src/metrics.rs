//! Per-request serving metrics: TTFT, TPOT, end-to-end latency, and
//! their distribution summaries.
//!
//! The wave loop of the original reproduction only reported aggregate
//! decode throughput (the paper's Figs. 13–15/17 metric). Online serving
//! is judged on *latency percentiles* instead, so the engine records one
//! [`RequestTiming`] per finished request and summarizes them here.
//!
//! Prefill is not modeled by this simulator (the paper's evaluation is
//! decode-phase); TTFT therefore measures arrival → first *generated*
//! token, which includes queueing delay and the first decode iteration
//! but no prompt-processing time. Comparisons between policies remain
//! apples-to-apples because every policy shares that convention.

use serde::Serialize;

/// Timestamps of one request's path through a replica, in seconds of the
/// replica's virtual clock (trace epoch = 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTiming {
    /// Request id within the trace.
    pub id: u64,
    /// Arrival time (0 for closed-world batch traces).
    pub arrival: f64,
    /// When the scheduling policy admitted the request into a batch.
    pub admitted: f64,
    /// When the first generated token completed.
    pub first_token: f64,
    /// When the last generated token completed.
    pub finished: f64,
    /// Tokens generated.
    pub decode_len: u64,
}

impl RequestTiming {
    /// Time to first token: arrival → first generated token.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// Time per output token over the steady decode phase (first → last
    /// token). Single-token requests have no inter-token gap; their TPOT
    /// is the first (only) token's service time.
    pub fn tpot(&self) -> f64 {
        if self.decode_len > 1 {
            (self.finished - self.first_token) / (self.decode_len - 1) as f64
        } else {
            self.first_token - self.admitted
        }
    }

    /// End-to-end latency: arrival → last generated token.
    pub fn e2e(&self) -> f64 {
        self.finished - self.arrival
    }
}

/// Distribution summary of one latency metric, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a sample set (empty input produces the zero summary).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
        let pick = |q: f64| {
            // Nearest-rank percentile: monotone in q by construction.
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

/// Latency statistics over every request that completed in a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LatencyReport {
    /// Requests that finished decoding.
    pub completed: u64,
    /// Time-to-first-token distribution.
    pub ttft: LatencySummary,
    /// Time-per-output-token distribution.
    pub tpot: LatencySummary,
    /// End-to-end latency distribution.
    pub e2e: LatencySummary,
}

impl LatencyReport {
    /// Builds the report from per-request timings.
    pub fn from_timings(timings: &[RequestTiming]) -> Self {
        let collect =
            |f: fn(&RequestTiming) -> f64| -> Vec<f64> { timings.iter().map(f).collect() };
        LatencyReport {
            completed: timings.len() as u64,
            ttft: LatencySummary::from_samples(&collect(RequestTiming::ttft)),
            tpot: LatencySummary::from_samples(&collect(RequestTiming::tpot)),
            e2e: LatencySummary::from_samples(&collect(RequestTiming::e2e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(arrival: f64, admitted: f64, first: f64, finished: f64, d: u64) -> RequestTiming {
        RequestTiming {
            id: 0,
            arrival,
            admitted,
            first_token: first,
            finished,
            decode_len: d,
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::from_samples(&samples);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_and_singleton_summaries() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let s = LatencySummary::from_samples(&[2.5]);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (2.5, 2.5, 2.5, 2.5));
    }

    #[test]
    fn timing_derivations() {
        let t = timing(1.0, 2.0, 3.0, 12.0, 10);
        assert_eq!(t.ttft(), 2.0);
        assert_eq!(t.e2e(), 11.0);
        assert!((t.tpot() - 1.0).abs() < 1e-12);
        // Single-token request: TPOT is the sole token's service time.
        let one = timing(0.0, 0.5, 1.5, 1.5, 1);
        assert_eq!(one.tpot(), 1.0);
    }

    #[test]
    fn report_counts_completions() {
        let r = LatencyReport::from_timings(&[
            timing(0.0, 0.0, 1.0, 5.0, 8),
            timing(0.5, 1.0, 2.0, 6.0, 8),
        ]);
        assert_eq!(r.completed, 2);
        assert!(r.ttft.p50 > 0.0 && r.e2e.max >= r.e2e.p99);
    }
}
