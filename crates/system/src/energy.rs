//! Energy model (paper Fig. 16).
//!
//! Energy is decomposed the way the paper reports it: MAC (compute), I/O
//! (GBuf/OutReg transfers), Background (runtime-proportional standby /
//! peripheral power — the baseline's dominant term at low utilization),
//! and Else (ACT/PRE, refresh, EPU, interconnect). FC and Attention are
//! tracked separately for the top panel of Fig. 16.

use crate::kernel::KernelStats;
use crate::stage::IterationBreakdown;
use serde::Serialize;

/// Per-event and per-time energy constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyModel {
    /// Energy per `MAC` command (one 16-lane dot product in 16 banks), nJ.
    pub mac_nj: f64,
    /// Energy per I/O command (32 B transfer), nJ.
    pub io_nj: f64,
    /// Energy per row activate+precharge, nJ.
    pub row_nj: f64,
    /// Background power per PIM channel, W.
    pub background_w_per_channel: f64,
    /// xPU FC energy per FLOP, pJ.
    pub fc_pj_per_flop: f64,
}

impl EnergyModel {
    /// AiMX-flavoured constants, calibrated so the conventional
    /// baseline's low MAC utilization makes background energy ~70% of
    /// attention energy (paper Fig. 16's 71.5%).
    pub fn aimx() -> Self {
        EnergyModel {
            // A MAC command reads 512 B across 16 banks: bit-line energy
            // dominates (~16 pJ/B).
            mac_nj: 8.0,
            io_nj: 4.0,
            row_nj: 20.0,
            background_w_per_channel: 0.5,
            fc_pj_per_flop: 0.8,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::aimx()
    }
}

/// Accumulated energy in joules, decomposed per Fig. 16.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct EnergyBreakdown {
    /// MAC compute energy.
    pub mac: f64,
    /// I/O transfer energy.
    pub io: f64,
    /// Runtime-proportional background energy.
    pub background: f64,
    /// Everything else (ACT/PRE, refresh, EPU, FC compute on xPU).
    pub else_: f64,
    /// Attention-stage share of the total.
    pub attention: f64,
    /// FC-stage share of the total.
    pub fc: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.mac + self.io + self.background + self.else_
    }

    /// Background share of the total (the paper's headline 71.5% → 13.0%).
    pub fn background_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.background / t
        } else {
            0.0
        }
    }
}

impl EnergyModel {
    fn kernel_energy(&self, s: &KernelStats) -> (f64, f64, f64) {
        let mac = s.macs * self.mac_nj * 1e-9;
        let io = s.ios * self.io_nj * 1e-9;
        let row = s.row_switches * self.row_nj * 1e-9;
        (mac, io, row)
    }

    /// Accumulates the energy of `steps` decode iterations described by
    /// `it` into `acc`, for a replica of `modules` modules with `channels`
    /// channels each.
    pub fn accumulate(
        &self,
        acc: &mut EnergyBreakdown,
        it: &IterationBreakdown,
        steps: f64,
        modules: u32,
        channels: u32,
    ) {
        let (a_mac, a_io, a_row) = self.kernel_energy(&it.attn_totals);
        let (f_mac, f_io, f_row) = self.kernel_energy(&it.fc_totals);
        let fc_xpu = it.fc_flops * self.fc_pj_per_flop * 1e-12;
        let bg_power = self.background_w_per_channel * f64::from(modules) * f64::from(channels);
        let bg = bg_power * it.seconds;

        acc.mac += steps * (a_mac + f_mac);
        acc.io += steps * (a_io + f_io);
        acc.background += steps * bg;
        acc.else_ += steps * (a_row + f_row + fc_xpu);

        // Attribute stage shares: background splits by stage time.
        let attn_bg = if it.seconds > 0.0 {
            bg * (it.attn_seconds / it.seconds)
        } else {
            0.0
        };
        let fc_bg = if it.seconds > 0.0 {
            bg * (it.fc_seconds / it.seconds)
        } else {
            0.0
        };
        acc.attention += steps * (a_mac + a_io + a_row + attn_bg);
        acc.fc += steps * (f_mac + f_io + f_row + fc_xpu + fc_bg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iteration(seconds: f64, attn_macs: f64, attn_ios: f64) -> IterationBreakdown {
        IterationBreakdown {
            seconds,
            attn_seconds: seconds * 0.8,
            fc_seconds: seconds * 0.2,
            attn_totals: KernelStats {
                cycles: 0.0,
                mac_busy: 0.0,
                macs: attn_macs,
                ios: attn_ios,
                row_switches: 10.0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn low_utilization_inflates_background_share() {
        let m = EnergyModel::aimx();
        // Same work, 5x the runtime (an underutilized baseline).
        let fast = iteration(1e-3, 1e6, 5e5);
        let slow = iteration(5e-3, 1e6, 5e5);
        let mut ef = EnergyBreakdown::default();
        let mut es = EnergyBreakdown::default();
        m.accumulate(&mut ef, &fast, 1.0, 8, 32);
        m.accumulate(&mut es, &slow, 1.0, 8, 32);
        assert!(es.background_fraction() > ef.background_fraction());
        assert!(es.total() > ef.total());
        assert!((es.mac - ef.mac).abs() < 1e-12, "work energy unchanged");
    }

    #[test]
    fn totals_are_consistent() {
        let m = EnergyModel::aimx();
        let mut e = EnergyBreakdown::default();
        m.accumulate(&mut e, &iteration(2e-3, 2e6, 1e6), 3.0, 8, 32);
        let sum = e.mac + e.io + e.background + e.else_;
        assert!((e.total() - sum).abs() < 1e-15);
        // Stage attribution covers (almost) the whole total.
        assert!((e.attention + e.fc) / e.total() > 0.95);
    }

    #[test]
    fn steps_scale_linearly() {
        let m = EnergyModel::aimx();
        let it = iteration(1e-3, 1e6, 1e6);
        let mut one = EnergyBreakdown::default();
        let mut ten = EnergyBreakdown::default();
        m.accumulate(&mut one, &it, 1.0, 8, 32);
        m.accumulate(&mut ten, &it, 10.0, 8, 32);
        assert!((ten.total() / one.total() - 10.0).abs() < 1e-9);
    }
}
