//! Declarative, serializable experiment specs: one [`Scenario`] value
//! describes workload + cluster + policy and materializes into a
//! runnable simulation.
//!
//! The configuration surface of this repository grew organically across
//! four layers — `Evaluator::with_*`, the `pimphony` builder, the
//! `workload` trace builder, and twenty bench binaries each hand-rolling
//! its own argument parsing — so every new knob had to be plumbed
//! through all of them. A `Scenario` collapses that: experiments are
//! *data*, round-tripping through the dependency-free [`jsonio`] layer
//! (`scenarios/*.json`), shared verbatim by tests, benches, and CI.
//!
//! ```text
//! scenarios/*.json ──parse──▶ Scenario ──materialize──▶ Evaluator + Trace
//!                                                        │
//!                                       Cluster ◀─router─┘──▶ ServingReport
//! ```
//!
//! Multi-tenant traffic is first-class: the workload is a list of
//! [`TenantSpec`]s, each with its own arrival process, dataset, decode
//! spec, priority class, and optional TTFT SLO target. Tenant traces
//! are generated independently (per-tenant seeds, so one tenant's knobs
//! never perturb another's RNG stream), tagged with their tenant id,
//! and merged into one globally arrival-ordered trace; the serving
//! report then carries per-tenant latency percentiles, SLO attainment,
//! and goodput (fed into the Jain tenant-fairness index,
//! [`crate::ServingReport::tenant_fairness`]).
//!
//! A one-tenant scenario with priority 0 and default knobs is
//! **bit-exact** with the historical `TraceBuilder` + `Evaluator` path
//! (enforced by `tests/scenario_properties.rs` against the golden
//! pins): the spec layer adds no arithmetic, only structure.

use crate::cluster::{run_pools, Cluster, PoolRun, RouterKind};
use crate::config::{SystemConfig, SystemKind, Techniques};
use crate::policy::{
    KvTransferConfig, PagedKvConfig, PoolRole, PreemptionPolicy, PrefillConfig, SchedulingPolicy,
    SheddingPolicy, VictimOrder,
};
use crate::serve::{Evaluator, ServingReport};
use jsonio::Json;
use llm_model::ModelConfig;
use pim_compiler::ParallelConfig;
use workload::{ArrivalProcess, Dataset, DecodeSpec, Trace, TraceBuilder};

/// One tenant's traffic in a scenario: its own dataset, volume, decode
/// spec, arrival process, priority class, and optional TTFT SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (report tables key on it).
    pub name: String,
    /// Table II dataset the context lengths are drawn from.
    pub dataset: Dataset,
    /// Requests this tenant offers.
    pub requests: usize,
    /// RNG seed for this tenant's trace (independent per tenant).
    pub seed: u64,
    /// Per-request decode budget.
    pub decode: DecodeSpec,
    /// Arrival-time process.
    pub arrivals: ArrivalProcess,
    /// Scheduling priority class shared by every request of the tenant
    /// (higher is more urgent; priority diversity across tenants is
    /// what lets preemption policies evict).
    pub priority: u8,
    /// Optional TTFT SLO target in seconds — the report's per-tenant
    /// attainment is the fraction of completed requests meeting it.
    pub slo_ttft_p99: Option<f64>,
    /// Leading prompt tokens every request of this tenant shares (a
    /// common system prompt), clamped per request to its context
    /// length. 0 (the default) means no sharing; with
    /// `policies.prefix_caching` on, shared tokens hit the page-level
    /// prefix cache after the tenant's first admission.
    pub shared_prefix: u64,
}

impl TenantSpec {
    /// A tenant with the trace builder's defaults: 128 requests,
    /// seed 0, fixed 256-token decode, batch arrivals, priority 0, no
    /// SLO.
    pub fn new(name: impl Into<String>, dataset: Dataset) -> Self {
        TenantSpec {
            name: name.into(),
            dataset,
            requests: 128,
            seed: 0,
            decode: DecodeSpec::Fixed(256),
            arrivals: ArrivalProcess::Batch,
            priority: 0,
            slo_ttft_p99: None,
            shared_prefix: 0,
        }
    }

    /// Sets the request count.
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the decode budget spec.
    pub fn decode(mut self, spec: DecodeSpec) -> Self {
        self.decode = spec;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, process: ArrivalProcess) -> Self {
        self.arrivals = process;
        self
    }

    /// Sets the priority class.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the TTFT SLO target in seconds.
    pub fn slo_ttft_p99(mut self, seconds: f64) -> Self {
        self.slo_ttft_p99 = Some(seconds);
        self
    }

    /// Sets the shared leading-prompt length in tokens.
    pub fn shared_prefix(mut self, tokens: u64) -> Self {
        self.shared_prefix = tokens;
        self
    }

    /// Builds this tenant's trace, tagged with `tenant`.
    fn build_trace(&self, tenant: u8) -> Trace {
        TraceBuilder::new(self.dataset)
            .seed(self.seed)
            .requests(self.requests)
            .decode(self.decode)
            .arrivals(self.arrivals)
            .priority(self.priority)
            .tenant(tenant)
            .shared_prefix(self.shared_prefix)
            .build()
    }

    /// Validates the spec, naming the offending field.
    fn validate(&self, idx: usize) -> Result<(), String> {
        if self.requests == 0 {
            return Err(format!(
                "workload[{idx}] ({}): requests must be > 0",
                self.name
            ));
        }
        if !self.decode.is_valid() {
            return Err(format!(
                "workload[{idx}] ({}): decode range requires 1 <= lo <= hi, got {:?}",
                self.name, self.decode
            ));
        }
        if self.decode == DecodeSpec::Fixed(0) {
            // Zero-emission requests produce no latency samples, so a
            // whole tenant of them would silently vanish from the
            // per-tenant report — reject the spec instead.
            return Err(format!(
                "workload[{idx}] ({}): decode must be >= 1 token",
                self.name
            ));
        }
        if let Some(rate) = self.arrivals.rate() {
            if !(rate > 0.0 && rate.is_finite()) {
                return Err(format!(
                    "workload[{idx}] ({}): arrival rate must be positive and finite",
                    self.name
                ));
            }
        }
        if let ArrivalProcess::Bursty { cv, .. } = self.arrivals {
            if cv < 1.0 {
                return Err(format!(
                    "workload[{idx}] ({}): bursty cv must be >= 1",
                    self.name
                ));
            }
        }
        if let Some(slo) = self.slo_ttft_p99 {
            if !(slo > 0.0 && slo.is_finite()) {
                return Err(format!(
                    "workload[{idx}] ({}): slo_ttft_p99 must be positive and finite",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// One replica pool of a disaggregated cluster: a named group of
/// identical replicas with a serving role, its own sizing, and
/// optionally its own system preset and router — so an xPU+PIM prefill
/// pool can front a PIM-only decode pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSpec {
    /// Pool name (report breakdowns key on it; must be unique).
    pub name: String,
    /// Serving phase the pool owns. `mixed` runs the full lifecycle;
    /// `prefill` retires at prompt residency and hands the KV off;
    /// `decode` admits only handoffs.
    pub role: PoolRole,
    /// Replicas in the pool (>= 1).
    pub replicas: u32,
    /// Tensor-parallel degree of one replica; 0 (the default) means
    /// "whole node" — the pool's system preset unpartitioned.
    pub tp: u32,
    /// Pipeline-parallel degree of one replica.
    pub pp: u32,
    /// System preset override for this pool; `None` inherits the
    /// scenario-level `system`.
    pub system: Option<SystemKind>,
    /// Router override for this pool; `None` inherits
    /// `policies.router`.
    pub router: Option<RouterKind>,
}

impl PoolSpec {
    /// A pool of `replicas` whole-node replicas inheriting the
    /// scenario's system preset and router.
    pub fn new(name: impl Into<String>, role: PoolRole, replicas: u32) -> Self {
        PoolSpec {
            name: name.into(),
            role,
            replicas,
            tp: 0,
            pp: 1,
            system: None,
            router: None,
        }
    }

    /// Sets the per-replica TP/PP partitioning.
    pub fn parallel(mut self, tp: u32, pp: u32) -> Self {
        self.tp = tp;
        self.pp = pp;
        self
    }

    /// Overrides the pool's system preset.
    pub fn system(mut self, kind: SystemKind) -> Self {
        self.system = Some(kind);
        self
    }

    /// Overrides the pool's router.
    pub fn router(mut self, kind: RouterKind) -> Self {
        self.router = Some(kind);
        self
    }

    /// Validates the pool spec, naming the offending field.
    fn validate(&self, idx: usize) -> Result<(), String> {
        if self.name.is_empty() {
            return Err(format!("cluster.pools[{idx}]: name must be nonempty"));
        }
        if self.replicas == 0 {
            return Err(format!(
                "cluster.pools[{idx}] ({}): replicas must be >= 1",
                self.name
            ));
        }
        Ok(())
    }
}

/// Cluster sizing of a scenario: the parallelization of one replica and
/// the simulation thread count — plus, for disaggregated serving, the
/// heterogeneous replica pools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Tensor-parallel degree of one replica; 0 (the default) means
    /// "whole node" — the system preset's own parallelization (all
    /// modules in one replica, the paper's configuration).
    pub tp: u32,
    /// Pipeline-parallel degree of one replica.
    pub pp: u32,
    /// Total PIM modules in the node; 0 (the default) keeps the system
    /// preset's sizing. Overriding it scales the *cluster*: with the
    /// TP/PP override set, the replica count is
    /// `modules / (tp * pp)` — e.g. `modules: 200, tp: 2` simulates a
    /// 100-replica fleet of 2-module replicas.
    pub modules: u32,
    /// Replica-simulation threads (0 = one per available CPU; results
    /// are byte-identical whatever the count).
    pub threads: usize,
    /// Replica pools for disaggregated serving. Empty (the default)
    /// means the flat `tp`/`pp`/`modules` sizing above — exactly one
    /// anonymous mixed pool. A single all-default `mixed` pool entry
    /// is byte-identical with the equivalent flat form (the desugaring
    /// is pinned by `tests/disagg_properties.rs`); when pools are
    /// listed, the flat sizing fields are ignored.
    pub pools: Vec<PoolSpec>,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            tp: 0,
            pp: 1,
            modules: 0,
            threads: 1,
            pools: Vec::new(),
        }
    }
}

/// Scheduling/memory policy bundle of a scenario — every serving knob
/// that used to be plumbed through three builders, in one place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicySpec {
    /// Batch scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Cross-replica load balancer.
    pub router: RouterKind,
    /// What a blocked candidate may do under KV memory pressure.
    pub preemption: PreemptionPolicy,
    /// Prompt-processing configuration.
    pub prefill: PrefillConfig,
    /// KV-pool scale factor (1.0 = hardware capacity).
    pub kv_capacity_factor: f64,
    /// Decode chunk-pricing stride.
    pub stride: u64,
    /// Paged KV cache with prefix caching and page-granular eviction
    /// (continuous scheduling only; off is bit-exact with whole-request
    /// reservations).
    pub paged_kv: PagedKvConfig,
    /// Deadline-aware admission control (continuous scheduling only;
    /// `None` — the default — is bit-exact with no admission control).
    pub shedding: SheddingPolicy,
    /// Within-class eviction victim order (the default `RecentFirst` is
    /// bit-exact with the historical most-recently-admitted order).
    pub victim_order: VictimOrder,
    /// Cross-pool KV-transfer cost model (per-page latency + link
    /// bandwidth), priced only when a `prefill`-role pool hands
    /// requests off — inert for colocated clusters.
    pub kv_transfer: KvTransferConfig,
}

impl Default for PolicySpec {
    fn default() -> Self {
        PolicySpec {
            scheduling: SchedulingPolicy::Wave,
            router: RouterKind::RoundRobin,
            preemption: PreemptionPolicy::None,
            prefill: PrefillConfig::disabled(),
            kv_capacity_factor: 1.0,
            stride: 64,
            paged_kv: PagedKvConfig::disabled(),
            shedding: SheddingPolicy::None,
            victim_order: VictimOrder::RecentFirst,
            kv_transfer: KvTransferConfig::default(),
        }
    }
}

/// A complete, serializable experiment description: model + system +
/// techniques + multi-tenant workload + cluster + policies. See the
/// module docs for the JSON format and the bit-exactness guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Table I model name (e.g. `"LLM-7B-32K"`).
    pub model: String,
    /// Node organization preset (PIM-only / xPU+PIM sizing).
    pub system: SystemKind,
    /// Enabled PIMphony techniques.
    pub techniques: Techniques,
    /// One entry per tenant; tenant ids are list positions.
    pub workload: Vec<TenantSpec>,
    /// Replica parallelization and simulation threads.
    pub cluster: ClusterSpec,
    /// Scheduling, routing, preemption, prefill, and memory knobs.
    pub policies: PolicySpec,
}

impl Scenario {
    /// A scenario with the orchestrator defaults — PIM-only sizing,
    /// full PIMphony techniques, wave scheduling, round-robin routing,
    /// no preemption/prefill, hardware KV capacity — and an empty
    /// workload.
    pub fn new(model: impl Into<String>) -> Self {
        Scenario {
            model: model.into(),
            system: SystemKind::PimOnly,
            techniques: Techniques::pimphony(),
            workload: Vec::new(),
            cluster: ClusterSpec::default(),
            policies: PolicySpec::default(),
        }
    }

    /// Appends a tenant to the workload.
    pub fn tenant(mut self, tenant: TenantSpec) -> Self {
        self.workload.push(tenant);
        self
    }

    /// Resolves the Table I model by name.
    pub fn resolve_model(&self) -> Result<ModelConfig, String> {
        ModelConfig::table1()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(&self.model))
            .ok_or_else(|| {
                let known: Vec<&str> = ModelConfig::table1().iter().map(|m| m.name).collect();
                format!(
                    "unknown model {:?} (Table I models: {})",
                    self.model,
                    known.join(", ")
                )
            })
    }

    /// The system configuration this scenario describes for `model`
    /// (the preset sizing, with the cluster's TP/PP override applied).
    pub fn system_config_for(&self, model: &ModelConfig) -> SystemConfig {
        let mut sys = match self.system {
            SystemKind::PimOnly => SystemConfig::cent_for(model),
            SystemKind::XpuPim => SystemConfig::neupims_for(model),
        };
        if self.cluster.modules > 0 {
            sys.modules = self.cluster.modules;
        }
        if self.cluster.tp > 0 {
            sys.with_parallel(ParallelConfig::new(self.cluster.tp, self.cluster.pp.max(1)))
        } else {
            sys
        }
    }

    /// The system configuration of one pool: the pool's preset (or the
    /// scenario's), partitioned per the pool's TP/PP, with the module
    /// count sized so the replica count is exactly `pool.replicas`.
    pub fn pool_system_config(&self, pool: &PoolSpec, model: &ModelConfig) -> SystemConfig {
        let mut sys = match pool.system.unwrap_or(self.system) {
            SystemKind::PimOnly => SystemConfig::cent_for(model),
            SystemKind::XpuPim => SystemConfig::neupims_for(model),
        };
        if pool.tp > 0 {
            sys = sys.with_parallel(ParallelConfig::new(pool.tp, pool.pp.max(1)));
        }
        sys.modules = sys.parallel.modules() * pool.replicas;
        sys
    }

    /// Builds the fully configured evaluator for an explicit (possibly
    /// non-Table-I) model config — the path the `pimphony` builder
    /// uses, since it accepts arbitrary `ModelConfig` values.
    pub fn evaluator_for(&self, model: ModelConfig) -> Evaluator {
        let sys = self.system_config_for(&model);
        self.evaluator_with(sys, model)
    }

    /// Builds one pool's evaluator: the shared policy bundle on the
    /// pool's own system sizing, tagged with the pool's role.
    pub fn pool_evaluator_for(&self, pool: &PoolSpec, model: ModelConfig) -> Evaluator {
        let sys = self.pool_system_config(pool, &model);
        self.evaluator_with(sys, model).with_pool_role(pool.role)
    }

    /// The shared evaluator-configuration chain over an explicit system
    /// config — the single place every policy knob is applied, so flat
    /// and pooled evaluators cannot drift apart.
    fn evaluator_with(&self, sys: SystemConfig, model: ModelConfig) -> Evaluator {
        let p = &self.policies;
        let slos: Vec<(u8, f64)> = self
            .workload
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.slo_ttft_p99.map(|s| (i as u8, s)))
            .collect();
        Evaluator::new(sys, model, self.techniques)
            .with_policy(p.scheduling)
            .with_preemption(p.preemption)
            .with_prefill(p.prefill)
            .with_kv_capacity_factor(p.kv_capacity_factor)
            .with_stride(p.stride)
            .with_paged_kv(p.paged_kv)
            .with_shedding(p.shedding)
            .with_victim_order(p.victim_order)
            .with_kv_transfer(p.kv_transfer)
            .with_tenant_slos(slos)
    }

    /// Validates the whole spec without building anything: model name,
    /// tenant list (nonempty, ≤ 256, each tenant's fields), and policy
    /// knobs. Shared by [`Self::materialize`] and [`Self::from_json`],
    /// so a spec file that cannot materialize does not parse either.
    pub fn validate(&self) -> Result<(), String> {
        self.resolve_model()?;
        if self.workload.is_empty() {
            return Err("workload must name at least one tenant".to_string());
        }
        if self.workload.len() > 256 {
            return Err("at most 256 tenants are supported (tenant ids are u8)".to_string());
        }
        for (i, t) in self.workload.iter().enumerate() {
            t.validate(i)?;
        }
        if !(self.policies.kv_capacity_factor > 0.0 && self.policies.kv_capacity_factor.is_finite())
        {
            return Err("policies.kv_capacity_factor must be positive and finite".to_string());
        }
        if self.policies.paged_kv.page_bytes == 0 {
            return Err("policies.page_bytes must be > 0".to_string());
        }
        let kt = self.policies.kv_transfer;
        if !(kt.page_latency_us >= 0.0 && kt.page_latency_us.is_finite()) {
            return Err(
                "policies.kv_transfer_page_latency_us must be nonnegative and finite".to_string(),
            );
        }
        if !(kt.gbps > 0.0 && kt.gbps.is_finite()) {
            return Err("policies.kv_transfer_gbps must be positive and finite".to_string());
        }
        self.validate_pools()
    }

    /// Validates the disaggregated pool topology: unique nonempty
    /// names, a runnable phase graph (prefill pools need a decode pool
    /// to hand off to and vice versa), and policy prerequisites (roles
    /// are a continuous-scheduling feature; a `prefill` pool without
    /// modeled prefill would retire instantly).
    fn validate_pools(&self) -> Result<(), String> {
        let pools = &self.cluster.pools;
        if pools.is_empty() {
            return Ok(());
        }
        for (i, p) in pools.iter().enumerate() {
            p.validate(i)?;
            if pools[..i].iter().any(|q| q.name == p.name) {
                return Err(format!(
                    "cluster.pools[{i}]: duplicate pool name {:?}",
                    p.name
                ));
            }
        }
        let roled = pools.iter().any(|p| p.role != PoolRole::Mixed);
        if roled && self.policies.scheduling != SchedulingPolicy::Continuous {
            return Err(
                "cluster.pools: prefill/decode roles require continuous scheduling".to_string(),
            );
        }
        if pools.iter().any(|p| p.role == PoolRole::Prefill) {
            if !self.policies.prefill.enabled {
                return Err(
                    "cluster.pools: a prefill pool requires policies.prefill_chunk > 0 \
                     (unmodeled prefill would retire instantly)"
                        .to_string(),
                );
            }
            if !pools.iter().any(|p| p.role == PoolRole::Decode) {
                return Err(
                    "cluster.pools: a prefill pool hands requests off, so at least one \
                     decode pool is required"
                        .to_string(),
                );
            }
        }
        if pools.iter().any(|p| p.role == PoolRole::Decode)
            && !pools.iter().any(|p| p.role == PoolRole::Prefill)
        {
            // Mixed pools keep their own decodes, so only a prefill
            // pool feeds a decode pool; without one it would idle.
            return Err(
                "cluster.pools: a decode pool admits only handoffs, so at least one \
                 prefill pool is required"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Validates the scenario and builds the runnable pieces: the fully
    /// configured [`Evaluator`] and the merged, tenant-tagged,
    /// arrival-ordered [`Trace`], bundled with the routing/threading
    /// choices as a [`Materialized`] simulation.
    pub fn materialize(&self) -> Result<Materialized, String> {
        self.validate()?;
        let model = self.resolve_model()?;
        let trace = Trace::merge(
            self.workload
                .iter()
                .enumerate()
                .map(|(i, t)| t.build_trace(i as u8)),
        );
        let pools = self
            .cluster
            .pools
            .iter()
            .map(|p| MaterializedPool {
                name: p.name.clone(),
                evaluator: self.pool_evaluator_for(p, model),
                router: p.router.unwrap_or(self.policies.router),
            })
            .collect();
        Ok(Materialized {
            evaluator: self.evaluator_for(model),
            trace,
            router: self.policies.router,
            threads: self.cluster.threads,
            tenant_names: self.workload.iter().map(|t| t.name.clone()).collect(),
            pools,
        })
    }

    /// Serializes the scenario as a [`Json`] tree (see the checked-in
    /// `scenarios/*.json` for the format).
    pub fn to_json(&self) -> Json {
        let p = &self.policies;
        Json::obj([
            ("model", Json::str(self.model.clone())),
            (
                "system",
                Json::str(match self.system {
                    SystemKind::PimOnly => "pim-only",
                    SystemKind::XpuPim => "xpu-pim",
                }),
            ),
            (
                "techniques",
                Json::obj([
                    ("tcp", Json::Bool(self.techniques.tcp)),
                    ("dcs", Json::Bool(self.techniques.dcs)),
                    ("dpa", Json::Bool(self.techniques.dpa)),
                ]),
            ),
            ("cluster", {
                let mut fields = vec![
                    ("tp", Json::num(self.cluster.tp as f64)),
                    ("pp", Json::num(self.cluster.pp as f64)),
                    ("modules", Json::num(self.cluster.modules as f64)),
                    ("threads", Json::num(self.cluster.threads as f64)),
                ];
                // Emitted only when present, so pool-free spec files
                // keep their historical canonical form byte-for-byte.
                if !self.cluster.pools.is_empty() {
                    fields.push((
                        "pools",
                        Json::Arr(self.cluster.pools.iter().map(pool_to_json).collect()),
                    ));
                }
                Json::obj(fields)
            }),
            ("policies", {
                let mut fields = vec![
                    ("scheduling", Json::str(p.scheduling.label())),
                    ("router", Json::str(p.router.label())),
                    ("preemption", Json::str(p.preemption.label())),
                    (
                        "prefill_chunk",
                        Json::num(if p.prefill.enabled {
                            p.prefill.chunk_tokens as f64
                        } else {
                            0.0
                        }),
                    ),
                    ("kv_capacity_factor", Json::num(p.kv_capacity_factor)),
                    ("stride", Json::num(p.stride as f64)),
                    ("prefix_caching", Json::Bool(p.paged_kv.prefix_caching)),
                    ("page_bytes", Json::num(p.paged_kv.page_bytes as f64)),
                    ("shedding", Json::str(p.shedding.label())),
                    ("victim_order", Json::str(p.victim_order.label())),
                ];
                // Transfer terms appear only off-default, keeping
                // pre-disaggregation spec files canonical.
                if p.kv_transfer != KvTransferConfig::default() {
                    fields.push((
                        "kv_transfer_page_latency_us",
                        Json::num(p.kv_transfer.page_latency_us),
                    ));
                    fields.push(("kv_transfer_gbps", Json::num(p.kv_transfer.gbps)));
                }
                Json::obj(fields)
            }),
            (
                "workload",
                Json::Arr(self.workload.iter().map(tenant_to_json).collect()),
            ),
        ])
    }

    /// Serializes to the pretty-printed JSON document format of the
    /// checked-in `scenarios/*.json` files.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a scenario from a JSON document.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_json(&doc)
    }

    /// Reads and parses a scenario file.
    pub fn from_file(path: &str) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Deserializes a scenario from a [`Json`] tree. Missing `cluster`
    /// / `policies` fields take their defaults, so spec files only
    /// state what they change; `model` and a nonempty `workload` are
    /// required.
    pub fn from_json(doc: &Json) -> Result<Scenario, String> {
        let model = req_str(doc, "model")?.to_string();
        let system = match doc.get("system").and_then(Json::as_str) {
            None | Some("pim-only") => SystemKind::PimOnly,
            Some("xpu-pim") => SystemKind::XpuPim,
            Some(other) => {
                return Err(format!(
                    "system: unknown kind {other:?} (expected \"pim-only\" or \"xpu-pim\")"
                ))
            }
        };
        let techniques = match doc.get("techniques") {
            None => Techniques::pimphony(),
            Some(t) => Techniques {
                tcp: get_bool(t, "tcp", false)?,
                dcs: get_bool(t, "dcs", false)?,
                dpa: get_bool(t, "dpa", false)?,
            },
        };
        let defaults = ClusterSpec::default();
        let cluster = match doc.get("cluster") {
            None => defaults,
            Some(c) => ClusterSpec {
                tp: get_u64(c, "tp", defaults.tp as u64)? as u32,
                pp: get_u64(c, "pp", defaults.pp as u64)? as u32,
                modules: get_u64(c, "modules", defaults.modules as u64)? as u32,
                threads: get_u64(c, "threads", defaults.threads as u64)? as usize,
                pools: match c.get("pools") {
                    None => Vec::new(),
                    Some(p) => p
                        .as_arr()
                        .ok_or("cluster.pools: expected an array of pool specs")?
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            pool_from_json(p).map_err(|e| format!("cluster.pools[{i}]: {e}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                },
            },
        };
        let pdefaults = PolicySpec::default();
        let policies = match doc.get("policies") {
            None => pdefaults,
            Some(p) => PolicySpec {
                scheduling: match get_str(p, "scheduling", SchedulingPolicy::Wave.label())? {
                    "wave" => SchedulingPolicy::Wave,
                    "continuous" => SchedulingPolicy::Continuous,
                    other => return Err(format!("policies.scheduling: unknown policy {other:?}")),
                },
                router: parse_router(get_str(p, "router", RouterKind::RoundRobin.label())?)?,
                preemption: parse_preemption(get_str(
                    p,
                    "preemption",
                    PreemptionPolicy::None.label(),
                )?)?,
                prefill: match get_u64(p, "prefill_chunk", 0)? {
                    0 => PrefillConfig::disabled(),
                    chunk => PrefillConfig::chunked(chunk),
                },
                kv_capacity_factor: get_f64(p, "kv_capacity_factor", 1.0)?,
                stride: get_u64(p, "stride", pdefaults.stride)?,
                paged_kv: PagedKvConfig {
                    prefix_caching: get_bool(p, "prefix_caching", false)?,
                    page_bytes: get_u64(p, "page_bytes", PagedKvConfig::DEFAULT_PAGE_BYTES)?,
                },
                shedding: parse_shedding(get_str(p, "shedding", SheddingPolicy::None.label())?)?,
                victim_order: parse_victim_order(get_str(
                    p,
                    "victim_order",
                    VictimOrder::RecentFirst.label(),
                )?)?,
                kv_transfer: KvTransferConfig {
                    page_latency_us: get_f64(
                        p,
                        "kv_transfer_page_latency_us",
                        KvTransferConfig::default().page_latency_us,
                    )?,
                    gbps: get_f64(p, "kv_transfer_gbps", KvTransferConfig::default().gbps)?,
                },
            },
        };
        let workload = doc
            .get("workload")
            .and_then(Json::as_arr)
            .ok_or("workload: required array of tenant specs")?
            .iter()
            .enumerate()
            .map(|(i, t)| tenant_from_json(t).map_err(|e| format!("workload[{i}]: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let scenario = Scenario {
            model,
            system,
            techniques,
            workload,
            cluster,
            policies,
        };
        // Fail fast: a spec file that cannot materialize should not
        // parse either.
        scenario.validate()?;
        Ok(scenario)
    }
}

/// A validated, runnable scenario: the configured evaluator, the merged
/// tenant-tagged trace, and the routing/threading choices — everything
/// [`Materialized::run`] needs to produce a [`ServingReport`].
#[derive(Debug)]
pub struct Materialized {
    /// The fully configured evaluator (policies, preemption, prefill,
    /// KV factor, stride, tenant SLOs). For pooled specs this is the
    /// scenario-level (flat) evaluator — each pool carries its own in
    /// [`Self::pools`].
    pub evaluator: Evaluator,
    /// The merged multi-tenant trace in global arrival order.
    pub trace: Trace,
    /// The cross-replica load balancer to route with.
    pub router: RouterKind,
    /// Replica-simulation threads (0 = one per CPU).
    pub threads: usize,
    /// Tenant names, indexed by tenant id (workload order).
    pub tenant_names: Vec<String>,
    /// Per-pool evaluators and routers, in `cluster.pools` order;
    /// empty for flat (pool-free) specs.
    pub pools: Vec<MaterializedPool>,
}

/// One materialized replica pool: its evaluator (sized to the pool,
/// tagged with its role) and the router serving it.
#[derive(Debug)]
pub struct MaterializedPool {
    /// Pool name from the spec.
    pub name: String,
    /// The pool's fully configured evaluator.
    pub evaluator: Evaluator,
    /// The pool's router kind (the spec override or the shared
    /// `policies.router`).
    pub router: RouterKind,
}

impl Materialized {
    /// Serves the scenario's trace through the cluster layer and
    /// returns the report (with per-tenant latency, SLO attainment and
    /// goodput in `latency_by_tenant`). Pooled specs run the
    /// phase-aware two-level path ([`run_pools`]); flat specs keep the
    /// historical single-pool path — one and the same machinery.
    pub fn run(&self) -> ServingReport {
        if !self.pools.is_empty() {
            // `build_for`: each pool's router routes on that pool's
            // calibrated prefill rate and tenant SLOs.
            let mut runs: Vec<PoolRun<'_>> = self
                .pools
                .iter()
                .map(|p| PoolRun {
                    name: p.name.clone(),
                    eval: &p.evaluator,
                    router: p.router.build_for(&p.evaluator),
                })
                .collect();
            return run_pools(
                &mut runs,
                self.evaluator.scheduling_policy(),
                self.threads,
                &self.trace,
            );
        }
        // `build_for`: the SLO-aware router routes on the evaluator's
        // real tenant SLOs and calibrated prefill rate, not the
        // uncalibrated `build()` fallback.
        let mut router = self.router.build_for(&self.evaluator);
        Cluster::new(&self.evaluator, self.evaluator.scheduling_policy())
            .with_threads(self.threads)
            .run(&self.trace, router.as_mut())
    }

    /// The name of a tenant id (`"tenant-N"` fallback for ids outside
    /// the workload list, which cannot occur for materialized traces).
    pub fn tenant_name(&self, tenant: u8) -> String {
        self.tenant_names
            .get(tenant as usize)
            .cloned()
            .unwrap_or_else(|| format!("tenant-{tenant}"))
    }
}

fn pool_to_json(p: &PoolSpec) -> Json {
    let mut fields = vec![
        ("name", Json::str(p.name.clone())),
        ("role", Json::str(p.role.label())),
        ("replicas", Json::num(p.replicas as f64)),
        ("tp", Json::num(p.tp as f64)),
        ("pp", Json::num(p.pp as f64)),
    ];
    if let Some(kind) = p.system {
        fields.push((
            "system",
            Json::str(match kind {
                SystemKind::PimOnly => "pim-only",
                SystemKind::XpuPim => "xpu-pim",
            }),
        ));
    }
    if let Some(router) = p.router {
        fields.push(("router", Json::str(router.label())));
    }
    Json::obj(fields)
}

fn pool_from_json(p: &Json) -> Result<PoolSpec, String> {
    let name = req_str(p, "name")?.to_string();
    let role = parse_pool_role(get_str(p, "role", PoolRole::Mixed.label())?)?;
    let system = match p.get("system").and_then(Json::as_str) {
        None => None,
        Some("pim-only") => Some(SystemKind::PimOnly),
        Some("xpu-pim") => Some(SystemKind::XpuPim),
        Some(other) => {
            return Err(format!(
                "system: unknown kind {other:?} (expected \"pim-only\" or \"xpu-pim\")"
            ))
        }
    };
    let router = match p.get("router") {
        None => None,
        Some(_) => Some(parse_router(get_str(p, "router", "")?)?),
    };
    Ok(PoolSpec {
        name,
        role,
        replicas: get_u64(p, "replicas", 1)? as u32,
        tp: get_u64(p, "tp", 0)? as u32,
        pp: get_u64(p, "pp", 1)? as u32,
        system,
        router,
    })
}

fn parse_pool_role(label: &str) -> Result<PoolRole, String> {
    PoolRole::ALL
        .into_iter()
        .find(|r| r.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = PoolRole::ALL.iter().map(|r| r.label()).collect();
            format!(
                "role: unknown pool role {label:?} (expected one of: {})",
                known.join(", ")
            )
        })
}

fn tenant_to_json(t: &TenantSpec) -> Json {
    let decode = match t.decode {
        DecodeSpec::Fixed(n) => Json::obj([("fixed", Json::num(n as f64))]),
        DecodeSpec::Uniform(lo, hi) => {
            Json::obj([("lo", Json::num(lo as f64)), ("hi", Json::num(hi as f64))])
        }
    };
    let arrivals = match t.arrivals {
        ArrivalProcess::Batch => Json::obj([("process", Json::str("batch"))]),
        ArrivalProcess::Poisson { rate } => {
            Json::obj([("process", Json::str("poisson")), ("rate", Json::num(rate))])
        }
        ArrivalProcess::Bursty { rate, cv } => Json::obj([
            ("process", Json::str("bursty")),
            ("rate", Json::num(rate)),
            ("cv", Json::num(cv)),
        ]),
    };
    Json::obj([
        ("name", Json::str(t.name.clone())),
        ("dataset", Json::str(t.dataset.name())),
        ("requests", Json::num(t.requests as f64)),
        ("seed", Json::num(t.seed as f64)),
        ("decode", decode),
        ("arrivals", arrivals),
        ("priority", Json::num(t.priority as f64)),
        (
            "slo_ttft_p99",
            t.slo_ttft_p99.map(Json::num).unwrap_or(Json::Null),
        ),
        ("shared_prefix", Json::num(t.shared_prefix as f64)),
    ])
}

fn tenant_from_json(t: &Json) -> Result<TenantSpec, String> {
    let name = req_str(t, "name")?.to_string();
    let dataset_name = req_str(t, "dataset")?;
    let dataset = Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(dataset_name))
        .ok_or_else(|| {
            let known: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
            format!(
                "unknown dataset {dataset_name:?} (Table II datasets: {})",
                known.join(", ")
            )
        })?;
    let decode = match t.get("decode") {
        None => DecodeSpec::Fixed(256),
        Some(d) => {
            if d.get("fixed").is_some() {
                DecodeSpec::Fixed(get_u64(d, "fixed", 0)?)
            } else if d.get("lo").is_some() || d.get("hi").is_some() {
                DecodeSpec::Uniform(get_u64(d, "lo", 0)?, get_u64(d, "hi", 0)?)
            } else {
                return Err("decode: expected {\"fixed\": n} or {\"lo\": n, \"hi\": n}".to_string());
            }
        }
    };
    let arrivals = match t.get("arrivals") {
        None => ArrivalProcess::Batch,
        Some(a) => match get_str(a, "process", "batch")? {
            "batch" => ArrivalProcess::Batch,
            "poisson" => ArrivalProcess::Poisson {
                rate: a
                    .get("rate")
                    .and_then(Json::as_f64)
                    .ok_or("arrivals: poisson requires \"rate\"")?,
            },
            "bursty" => ArrivalProcess::Bursty {
                rate: a
                    .get("rate")
                    .and_then(Json::as_f64)
                    .ok_or("arrivals: bursty requires \"rate\"")?,
                cv: a
                    .get("cv")
                    .and_then(Json::as_f64)
                    .ok_or("arrivals: bursty requires \"cv\"")?,
            },
            other => return Err(format!("arrivals: unknown process {other:?}")),
        },
    };
    let slo = match t.get("slo_ttft_p99") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or("slo_ttft_p99: expected a number or null")?,
        ),
    };
    Ok(TenantSpec {
        name,
        dataset,
        requests: get_u64(t, "requests", 128)? as usize,
        seed: get_u64(t, "seed", 0)?,
        decode,
        arrivals,
        priority: get_u64(t, "priority", 0)? as u8,
        slo_ttft_p99: slo,
        shared_prefix: get_u64(t, "shared_prefix", 0)?,
    })
}

fn parse_router(label: &str) -> Result<RouterKind, String> {
    RouterKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = RouterKind::ALL.iter().map(|k| k.label()).collect();
            format!(
                "policies.router: unknown router {label:?} (expected one of: {})",
                known.join(", ")
            )
        })
}

fn parse_preemption(label: &str) -> Result<PreemptionPolicy, String> {
    PreemptionPolicy::ALL
        .into_iter()
        .find(|p| p.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = PreemptionPolicy::ALL.iter().map(|p| p.label()).collect();
            format!(
                "policies.preemption: unknown policy {label:?} (expected one of: {})",
                known.join(", ")
            )
        })
}

fn parse_shedding(label: &str) -> Result<SheddingPolicy, String> {
    SheddingPolicy::ALL
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = SheddingPolicy::ALL.iter().map(|s| s.label()).collect();
            format!(
                "policies.shedding: unknown policy {label:?} (expected one of: {})",
                known.join(", ")
            )
        })
}

fn parse_victim_order(label: &str) -> Result<VictimOrder, String> {
    VictimOrder::ALL
        .into_iter()
        .find(|v| v.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = VictimOrder::ALL.iter().map(|v| v.label()).collect();
            format!(
                "policies.victim_order: unknown order {label:?} (expected one of: {})",
                known.join(", ")
            )
        })
}

fn req_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{key}: required string"))
}

fn get_str<'a>(obj: &'a Json, key: &str, default: &'static str) -> Result<&'a str, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("{key}: expected a string")),
    }
}

fn get_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{key}: expected a boolean")),
    }
}

fn get_f64(obj: &Json, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("{key}: expected a number")),
    }
}

fn get_u64(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    let v = get_f64(obj, key, default as f64)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{key}: expected a nonnegative integer, got {v}"));
    }
    Ok(v as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_scenario() -> Scenario {
        let mut s = Scenario::new("LLM-7B-32K");
        s.cluster.tp = 2;
        s.cluster.threads = 2;
        s.policies.scheduling = SchedulingPolicy::Continuous;
        s.policies.router = RouterKind::JoinShortestQueue;
        s.policies.preemption = PreemptionPolicy::EvictPause;
        s.policies.prefill = PrefillConfig::chunked(512);
        s.policies.kv_capacity_factor = 0.5;
        s.tenant(
            TenantSpec::new("interactive", Dataset::QmSum)
                .requests(12)
                .seed(7)
                .decode(DecodeSpec::Uniform(8, 32))
                .arrivals(ArrivalProcess::Bursty { rate: 4.0, cv: 2.0 })
                .priority(1)
                .slo_ttft_p99(30.0),
        )
        .tenant(
            TenantSpec::new("batch", Dataset::Musique)
                .requests(8)
                .seed(9)
                .decode(DecodeSpec::Fixed(64))
                .arrivals(ArrivalProcess::Poisson { rate: 1.0 }),
        )
    }

    #[test]
    fn json_round_trip_is_identity() {
        let s = two_tenant_scenario();
        let text = s.to_pretty();
        let back = Scenario::parse(&text).expect("parse back");
        assert_eq!(back, s);
        // And the re-serialization is byte-identical (deterministic
        // writer, insertion-ordered keys).
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn defaults_fill_missing_sections() {
        let s = Scenario::parse(
            r#"{"model": "LLM-7B-32K",
                "workload": [{"name": "only", "dataset": "QMSum"}]}"#,
        )
        .expect("minimal spec");
        assert_eq!(s.system, SystemKind::PimOnly);
        assert_eq!(s.techniques, Techniques::pimphony());
        assert_eq!(s.cluster, ClusterSpec::default());
        assert_eq!(s.policies, PolicySpec::default());
        let t = &s.workload[0];
        assert_eq!(t.requests, 128);
        assert_eq!(t.decode, DecodeSpec::Fixed(256));
        assert_eq!(t.arrivals, ArrivalProcess::Batch);
        assert_eq!(t.priority, 0);
        assert_eq!(t.slo_ttft_p99, None);
    }

    #[test]
    fn parse_rejects_unknown_names_with_candidates() {
        let bad_model = Scenario::parse(
            r#"{"model": "GPT-5", "workload": [{"name": "t", "dataset": "QMSum"}]}"#,
        )
        .unwrap_err();
        assert!(bad_model.contains("unknown model"), "{bad_model}");
        assert!(bad_model.contains("LLM-7B-32K"), "{bad_model}");
        let bad_dataset = Scenario::parse(
            r#"{"model": "LLM-7B-32K", "workload": [{"name": "t", "dataset": "imagenet"}]}"#,
        )
        .unwrap_err();
        assert!(bad_dataset.contains("unknown dataset"), "{bad_dataset}");
        assert!(bad_dataset.contains("QMSum"), "{bad_dataset}");
        let bad_router = Scenario::parse(
            r#"{"model": "LLM-7B-32K", "policies": {"router": "dns"},
                "workload": [{"name": "t", "dataset": "QMSum"}]}"#,
        )
        .unwrap_err();
        assert!(bad_router.contains("unknown router"), "{bad_router}");
        let empty = Scenario::parse(r#"{"model": "LLM-7B-32K", "workload": []}"#).unwrap_err();
        assert!(empty.contains("at least one tenant"), "{empty}");
    }

    #[test]
    fn parse_fails_fast_on_specs_that_cannot_materialize() {
        // Tenant-level problems are rejected at parse time, not
        // deferred to materialize.
        let zero_requests = Scenario::parse(
            r#"{"model": "LLM-7B-32K",
                "workload": [{"name": "t", "dataset": "QMSum", "requests": 0}]}"#,
        )
        .unwrap_err();
        assert!(
            zero_requests.contains("requests must be > 0"),
            "{zero_requests}"
        );
        let bad_kv = Scenario::parse(
            r#"{"model": "LLM-7B-32K", "policies": {"kv_capacity_factor": 0},
                "workload": [{"name": "t", "dataset": "QMSum"}]}"#,
        )
        .unwrap_err();
        assert!(bad_kv.contains("kv_capacity_factor"), "{bad_kv}");
        // Decode fields get full integer validation: negatives and
        // fractions are errors, not silent casts, and a fixed 0-token
        // decode (a tenant that would vanish from the report) is
        // rejected.
        for (decode, want) in [
            (r#"{"fixed": -5}"#, "nonnegative integer"),
            (r#"{"fixed": 2.5}"#, "nonnegative integer"),
            (r#"{"fixed": 0}"#, "decode must be >= 1"),
            (r#"{"lo": 9, "hi": 3}"#, "decode range"),
            (r#"{}"#, "expected"),
        ] {
            let err = Scenario::parse(&format!(
                r#"{{"model": "LLM-7B-32K",
                    "workload": [{{"name": "t", "dataset": "QMSum", "decode": {decode}}}]}}"#,
            ))
            .unwrap_err();
            assert!(err.contains(want), "decode {decode}: {err}");
        }
    }

    #[test]
    fn materialize_validates_degenerate_workloads() {
        let mut s = two_tenant_scenario();
        s.workload[0].requests = 0;
        let err = s.materialize().unwrap_err();
        assert!(err.contains("requests must be > 0"), "{err}");
        let mut s = two_tenant_scenario();
        s.workload[1].decode = DecodeSpec::Uniform(9, 3);
        let err = s.materialize().unwrap_err();
        assert!(err.contains("decode range"), "{err}");
        let mut s = two_tenant_scenario();
        s.workload.clear();
        assert!(s.materialize().is_err());
    }

    #[test]
    fn materialize_merges_tenant_tagged_traces_in_arrival_order() {
        let s = two_tenant_scenario();
        let m = s.materialize().expect("materialize");
        assert_eq!(m.trace.len(), 20);
        assert_eq!(m.trace.tenants(), vec![0, 1]);
        assert_eq!(m.tenant_name(0), "interactive");
        assert_eq!(m.tenant_name(1), "batch");
        // Globally arrival-ordered, unique ids.
        let reqs = m.trace.requests();
        assert!(reqs
            .windows(2)
            .all(|w| (w[0].arrival_us, w[0].id) < (w[1].arrival_us, w[1].id)));
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        // Priorities follow the tenant specs.
        assert!(reqs
            .iter()
            .all(|r| r.priority == if r.tenant == 0 { 1 } else { 0 }));
        // SLO targets reach the evaluator.
        assert_eq!(m.evaluator.tenant_slos(), &[(0u8, 30.0)]);
    }

    #[test]
    fn materialized_run_reports_per_tenant() {
        let m = two_tenant_scenario().materialize().expect("materialize");
        let r = m.run();
        assert_eq!(r.latency.completed, 20);
        assert_eq!(r.latency_by_tenant.len(), 2);
        let interactive = &r.latency_by_tenant[0];
        assert_eq!(interactive.tenant, 0);
        assert_eq!(interactive.latency.completed, 12);
        assert_eq!(interactive.slo_ttft, 30.0);
        assert!((0.0..=1.0).contains(&interactive.slo_attainment));
        let batch = &r.latency_by_tenant[1];
        assert_eq!(batch.latency.completed, 8);
        assert_eq!(batch.slo_ttft, f64::INFINITY);
        assert_eq!(batch.slo_attainment, 1.0, "no target is vacuously met");
        assert_eq!(batch.tokens, 8 * 64);
        let f = r.tenant_fairness();
        assert!(f > 0.0 && f <= 1.0, "{f}");
    }

    #[test]
    fn whole_node_cluster_spec_uses_preset_parallelization() {
        let s =
            Scenario::new("LLM-7B-32K").tenant(TenantSpec::new("t", Dataset::QmSum).requests(4));
        let model = s.resolve_model().unwrap();
        let sys = s.system_config_for(&model);
        assert_eq!(sys, SystemConfig::cent_for(&model));
        let mut tp2 = s.clone();
        tp2.cluster.tp = 2;
        assert_eq!(tp2.system_config_for(&model).parallel.tp, 2);
        assert_eq!(tp2.system_config_for(&model).replicas(), 4);
    }

    #[test]
    fn modules_override_scales_the_replica_count() {
        let s =
            Scenario::new("LLM-7B-32K").tenant(TenantSpec::new("t", Dataset::QmSum).requests(4));
        let model = s.resolve_model().unwrap();
        let mut big = s.clone();
        big.cluster.tp = 2;
        big.cluster.modules = 200;
        let sys = big.system_config_for(&model);
        assert_eq!(sys.modules, 200);
        assert_eq!(sys.replicas(), 100);
        // modules: 0 keeps the preset sizing.
        assert_eq!(
            s.system_config_for(&model).modules,
            SystemConfig::cent_for(&model).modules
        );
        // And the knob survives the JSON round trip.
        let back = Scenario::parse(&big.to_pretty()).expect("parse back");
        assert_eq!(back.cluster.modules, 200);
        assert_eq!(back, big);
    }
}
