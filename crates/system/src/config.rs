//! System and module configurations (paper Table IV).

use llm_model::ModelConfig;
use pim_compiler::ParallelConfig;
use serde::Serialize;

/// Node organization: PIM-only (CENT-like) or heterogeneous xPU+PIM
/// (NeuPIMs-like), per paper Fig. 3(b,c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SystemKind {
    /// CENT-like: all computation on PIM; a small PNM core handles
    /// non-GEMV work.
    PimOnly,
    /// NeuPIMs-like: NPU matrix units execute FC/GEMM, PIM executes
    /// attention GEMVs.
    XpuPim,
}

impl SystemKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::PimOnly => "PIM-only (CENT)",
            SystemKind::XpuPim => "xPU+PIM (NeuPIMs)",
        }
    }
}

/// One PIM module's resources (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModuleConfig {
    /// PIM channels per module.
    pub channels: u32,
    /// Module DRAM capacity in bytes.
    pub capacity_bytes: u64,
    /// Aggregate internal bandwidth in bytes/second.
    pub internal_bw: f64,
    /// xPU compute throughput in FLOP/s (NPU matrix units for NeuPIMs,
    /// PNM core for CENT).
    pub xpu_flops: f64,
    /// xPU-visible memory bandwidth in bytes/second (weight streaming for
    /// the FC stage on NeuPIMs).
    pub xpu_mem_bw: f64,
    /// Host/inter-module interconnect bandwidth in bytes/second.
    pub interconnect_bw: f64,
    /// Memory clock in Hz (converts simulator cycles to seconds).
    pub clock_hz: f64,
}

impl ModuleConfig {
    /// CENT-like module: PNM 3 TFLOPS, 32 channels, 16 GB, 16 TB/s.
    pub fn cent() -> Self {
        ModuleConfig {
            channels: 32,
            capacity_bytes: 16 * (1 << 30),
            internal_bw: 16e12,
            xpu_flops: 3e12,
            xpu_mem_bw: 0.4e12,
            interconnect_bw: 64e9,
            clock_hz: 1e9,
        }
    }

    /// NeuPIMs-like module: 8 matrix units (256 TFLOPS), 32 channels,
    /// 32 GB, 32 TB/s.
    pub fn neupims() -> Self {
        ModuleConfig {
            channels: 32,
            capacity_bytes: 32 * (1 << 30),
            internal_bw: 32e12,
            xpu_flops: 256e12,
            xpu_mem_bw: 2e12,
            interconnect_bw: 128e9,
            clock_hz: 1e9,
        }
    }
}

/// A full multi-module system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SystemConfig {
    /// Node organization.
    pub kind: SystemKind,
    /// Module resources.
    pub module: ModuleConfig,
    /// Total modules.
    pub modules: u32,
    /// Parallelization of one model replica.
    pub parallel: ParallelConfig,
}

impl SystemConfig {
    /// The paper's PIM-only setup: 8 modules (128 GB) for 7B models,
    /// 32 modules (512 GB) for 72B models.
    pub fn cent_for(model: &ModelConfig) -> Self {
        let modules = if model.hidden_dim >= 8192 { 32 } else { 8 };
        SystemConfig {
            kind: SystemKind::PimOnly,
            module: ModuleConfig::cent(),
            modules,
            parallel: ParallelConfig::new(modules, 1),
        }
    }

    /// The paper's xPU+PIM setup: 4 modules (128 GB) for 7B models,
    /// 16 modules (512 GB) for 72B models.
    pub fn neupims_for(model: &ModelConfig) -> Self {
        let modules = if model.hidden_dim >= 8192 { 16 } else { 4 };
        SystemConfig {
            kind: SystemKind::XpuPim,
            module: ModuleConfig::neupims(),
            modules,
            parallel: ParallelConfig::new(modules, 1),
        }
    }

    /// Replicas the system can host (`modules / (tp*pp)`).
    pub fn replicas(&self) -> u32 {
        (self.modules / self.parallel.modules()).max(1)
    }

    /// Total system capacity in bytes.
    pub fn total_capacity(&self) -> u64 {
        u64::from(self.modules) * self.module.capacity_bytes
    }

    /// Returns a copy with a different parallel configuration.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Which PIMphony techniques are enabled (the Figs. 13/14 increments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct Techniques {
    /// Token-Centric PIM Partitioning (§IV).
    pub tcp: bool,
    /// Dynamic PIM Command Scheduling (§V).
    pub dcs: bool,
    /// Dynamic PIM Access memory management (§VI).
    pub dpa: bool,
}

impl Techniques {
    /// The unmodified baseline (HFP + static scheduling + static memory).
    pub fn baseline() -> Self {
        Techniques {
            tcp: false,
            dcs: false,
            dpa: false,
        }
    }

    /// TCP only.
    pub fn tcp_only() -> Self {
        Techniques {
            tcp: true,
            dcs: false,
            dpa: false,
        }
    }

    /// TCP + DCS.
    pub fn tcp_dcs() -> Self {
        Techniques {
            tcp: true,
            dcs: true,
            dpa: false,
        }
    }

    /// Full PIMphony (TCP + DCS + DPA).
    pub fn pimphony() -> Self {
        Techniques {
            tcp: true,
            dcs: true,
            dpa: true,
        }
    }

    /// The incremental ladder used in Figs. 13–15.
    pub fn ladder() -> [Techniques; 4] {
        [
            Self::baseline(),
            Self::tcp_only(),
            Self::tcp_dcs(),
            Self::pimphony(),
        ]
    }

    /// Short label ("base", "+TCP", "+DCS", "+DPA").
    pub fn label(&self) -> &'static str {
        match (self.tcp, self.dcs, self.dpa) {
            (false, false, false) => "base",
            (true, false, false) => "+TCP",
            (true, true, false) => "+TCP+DCS",
            (true, true, true) => "+TCP+DCS+DPA",
            _ => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::{LLM_72B_32K, LLM_7B_32K};

    #[test]
    fn table4_capacities() {
        assert_eq!(
            SystemConfig::cent_for(&LLM_7B_32K).total_capacity(),
            128 * (1 << 30)
        );
        assert_eq!(
            SystemConfig::cent_for(&LLM_72B_32K).total_capacity(),
            512 * (1 << 30)
        );
        assert_eq!(
            SystemConfig::neupims_for(&LLM_7B_32K).total_capacity(),
            128 * (1 << 30)
        );
        assert_eq!(
            SystemConfig::neupims_for(&LLM_72B_32K).total_capacity(),
            512 * (1 << 30)
        );
    }

    #[test]
    fn module_specs_match_table4() {
        let c = ModuleConfig::cent();
        assert_eq!(c.channels, 32);
        assert!((c.internal_bw - 16e12).abs() < 1.0);
        let n = ModuleConfig::neupims();
        assert!((n.xpu_flops - 256e12).abs() < 1.0);
        assert_eq!(n.capacity_bytes, 32 * (1 << 30));
    }

    #[test]
    fn technique_ladder_is_monotone() {
        let l = Techniques::ladder();
        assert_eq!(l[0], Techniques::baseline());
        assert_eq!(l[3], Techniques::pimphony());
        assert!(l[1].tcp && !l[1].dcs);
        assert!(l[2].dcs && !l[2].dpa);
    }

    #[test]
    fn replicas_divide_modules() {
        let s = SystemConfig::cent_for(&LLM_7B_32K).with_parallel(ParallelConfig::new(4, 2));
        assert_eq!(s.replicas(), 1);
        let s2 = SystemConfig::cent_for(&LLM_7B_32K).with_parallel(ParallelConfig::new(2, 2));
        assert_eq!(s2.replicas(), 2);
    }
}
