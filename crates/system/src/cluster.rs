//! Cluster simulation: routed arrivals over parallel replica sims.
//!
//! The original engine partitioned a trace round-robin *before*
//! simulation started, so replicas never interacted and online load
//! imbalance was invisible. The [`Cluster`] instead consumes the
//! globally ordered arrival stream and dispatches each request through a
//! pluggable [`Router`] at its arrival instant, based on the replicas'
//! live load ([`ReplicaLoad`]):
//!
//! * [`RoundRobin`] — ignores load; through the cluster path this is
//!   bit-exact with the old trace-level partitioning (enforced by the
//!   wave-oracle tests, which now exercise this path via
//!   [`crate::Engine`]).
//! * [`JoinShortestQueue`] — fewest in-flight (queued + running)
//!   requests, the classic JSQ policy that absorbs bursts.
//! * [`LeastLoaded`] — fewest reserved KV bytes under the active memory
//!   policy, which sees *request size*, not just count.
//! * [`LeastPrefill`] — least outstanding prompt-processing backlog
//!   (pending prefill tokens), the TTFT-oriented signal when prefill is
//!   modeled.
//! * [`SloAware`] — power-of-two-choices by predicted TTFT slack
//!   against the arriving tenant's SLO; no-SLO tenants spread by
//!   memory footprint instead.
//!
//! During routing, replicas are advanced to each arrival's frontier
//! through an **event calendar**: every `ReplicaSim::advance_to` call
//! returns the replica's next-event bound (the earliest instant its
//! state can change), and only replicas whose bound the frontier has
//! passed are touched — next-event dispatch instead of polling every
//! replica per arrival, bit-exact because advancing a replica below its
//! bound is a state no-op. The drain then runs on [`std::thread::scope`]
//! threads ([`Cluster::threads`]). Parallel and sequential runs produce
//! byte-identical [`ServingReport`]s: routing decisions see identical
//! load snapshots either way, and accounting is replayed from
//! per-replica event logs in replica-index order, so no
//! float-accumulation order depends on thread scheduling.

use crate::metrics::{LatencyReport, PoolBreakdown, ReplicaBreakdown, RequestTiming};
use crate::policy::{PoolRole, SchedulingPolicy};
use crate::replica::{HandoffOut, ReplicaSim, SimEvent};
use crate::serve::{Evaluator, ServingReport, TtftPredictor};
use crate::stage::IterationBreakdown;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use workload::{Request, Trace};

pub use crate::replica::ReplicaLoad;

/// A load-balancing policy dispatching each arrival to one replica.
///
/// Routers see every arrival in global time order together with a load
/// snapshot per replica taken at the arrival instant. Implementations
/// must be deterministic (break ties by `ReplicaLoad::replica`) — the
/// cluster's parallel/sequential bit-exactness guarantee extends only to
/// deterministic routers.
pub trait Router: Send {
    /// Short display label (for report tables).
    fn label(&self) -> &'static str;

    /// Picks the replica `req` is dispatched to. Out-of-range indices
    /// are clamped to the last replica.
    fn route(&mut self, req: &Request, loads: &[ReplicaLoad]) -> usize;

    /// Whether routing decisions read the load snapshots. Stateless
    /// routers (round-robin) return `false`; the cluster then skips
    /// advancing replicas during the routing phase (simulating them
    /// end-to-end in parallel at the drain) and hands `route` placeholder
    /// snapshots carrying only the replica indices.
    fn inspects_load(&self) -> bool {
        true
    }
}

/// Cycles through replicas in dispatch order, ignoring load. Bit-exact
/// with the pre-cluster trace-level partitioning.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn label(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _req: &Request, loads: &[ReplicaLoad]) -> usize {
        let i = self.next % loads.len().max(1);
        self.next = self.next.wrapping_add(1);
        i
    }

    fn inspects_load(&self) -> bool {
        false
    }
}

/// Joins the replica with the fewest in-flight requests (ties to the
/// lowest index).
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl Router for JoinShortestQueue {
    fn label(&self) -> &'static str {
        "jsq"
    }

    fn route(&mut self, _req: &Request, loads: &[ReplicaLoad]) -> usize {
        loads
            .iter()
            .min_by_key(|l| (l.in_flight, l.replica))
            .map(|l| l.replica)
            .unwrap_or(0)
    }
}

/// Joins the replica with the fewest reserved KV bytes under the active
/// memory policy (ties to the lowest index). Unlike JSQ this sees
/// request *sizes*: one 100K-token context outweighs many short ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn label(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _req: &Request, loads: &[ReplicaLoad]) -> usize {
        loads
            .iter()
            .min_by_key(|l| (l.reserved_kv, l.replica))
            .map(|l| l.replica)
            .unwrap_or(0)
    }
}

/// Joins the replica with the least outstanding prompt-processing
/// backlog ([`ReplicaLoad::pending_prefill`] — queued prompts plus the
/// unprocessed remainder of running prefills), breaking ties by
/// reserved KV bytes then index. Long prompts serialize through a
/// replica's FCFS prefill stage, so this backlog predicts TTFT more
/// directly than request counts when prefill is modeled; without
/// prefill every backlog is 0 and the router degenerates to
/// [`LeastLoaded`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastPrefill;

impl Router for LeastPrefill {
    fn label(&self) -> &'static str {
        "least-prefill"
    }

    fn route(&mut self, _req: &Request, loads: &[ReplicaLoad]) -> usize {
        loads
            .iter()
            .min_by_key(|l| (l.pending_prefill, l.reserved_kv, l.replica))
            .map(|l| l.replica)
            .unwrap_or(0)
    }
}

/// Routes by predicted TTFT slack against the arriving tenant's SLO,
/// sampling two replicas per arrival (power-of-two-choices) so the
/// decision stays O(1) at 100-replica scale instead of scanning every
/// load snapshot.
///
/// For an interactive arrival (finite `slo_ttft`) the predicted TTFT on
/// a replica is `rate × (pending_prefill + context_len)` — the
/// [`TtftPredictor`]'s optimistic queueing + prefill bound, where the
/// prompt backlog ahead of the request must drain through the FCFS
/// prefill stage first. The sampled replica with the smaller bound has
/// the most remaining slack and wins; if even that bound misses the
/// SLO, the router falls back to one full scan (the rare overloaded
/// case — trading the O(1) budget for the request's deadline).
/// No-SLO (batch) arrivals have unbounded slack on every replica, so
/// they spread by memory footprint instead, keeping KV headroom on the
/// replicas interactive work will sample next.
///
/// Sampling uses a deterministically seeded xorshift64 generator.
/// Routing runs on the single coordinator thread in global arrival
/// order, so the stateful RNG preserves the cluster's bit-exactness
/// guarantee across thread counts; ties break by replica index so the
/// sample order cannot matter either.
#[derive(Debug, Clone)]
pub struct SloAware {
    /// Per-tenant TTFT targets, ascending tenant id (missing = no SLO).
    slos: Vec<(u8, f64)>,
    predictor: TtftPredictor,
    /// xorshift64 state; never zero.
    state: u64,
}

impl SloAware {
    /// Fixed nonzero RNG seed (the 64-bit golden-ratio constant): runs
    /// are reproducible by construction, not by configuration.
    const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    /// A router calibrated for `eval`: its tenant SLOs and its
    /// first-chunk prefill rate (see [`Evaluator::ttft_predictor`]).
    pub fn for_eval(eval: &Evaluator) -> Self {
        SloAware {
            slos: eval.tenant_slos().to_vec(),
            predictor: eval.ttft_predictor(),
            state: Self::SEED,
        }
    }

    /// The tenant's TTFT target, `+inf` when it has none.
    fn slo(&self, tenant: u8) -> f64 {
        self.slos
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(f64::INFINITY, |(_, slo)| *slo)
    }

    /// Next xorshift64 draw.
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Two distinct replica indices, uniformly sampled.
    fn sample_pair(&mut self, n: usize) -> (usize, usize) {
        let a = (self.next() % n as u64) as usize;
        let mut b = (self.next() % (n as u64 - 1)) as usize;
        if b >= a {
            b += 1;
        }
        (a, b)
    }
}

impl Default for SloAware {
    /// An uncalibrated router (no SLOs, zero prefill rate): every
    /// arrival takes the memory-spreading arm. [`RouterKind::build`]
    /// uses this; prefer [`SloAware::for_eval`] to route on real slack.
    fn default() -> Self {
        SloAware {
            slos: Vec::new(),
            predictor: TtftPredictor::with_rate(0.0),
            state: Self::SEED,
        }
    }
}

impl Router for SloAware {
    fn label(&self) -> &'static str {
        "slo-aware"
    }

    fn route(&mut self, req: &Request, loads: &[ReplicaLoad]) -> usize {
        let n = loads.len();
        if n <= 1 {
            return 0;
        }
        // A two-replica cluster IS the sample; otherwise draw a pair.
        let (a, b) = if n == 2 { (0, 1) } else { self.sample_pair(n) };
        let slo = self.slo(req.tenant);
        if slo.is_finite() {
            // The predictor's rate is one constant, so the smaller
            // prompt backlog IS the smaller predicted TTFT (the
            // request's own context_len is the same on both).
            let key = |l: &ReplicaLoad| (l.pending_prefill, l.replica);
            let best = if key(&loads[a]) <= key(&loads[b]) {
                a
            } else {
                b
            };
            let bound = self
                .predictor
                .predict(0.0, loads[best].pending_prefill + req.context_len);
            if bound > slo {
                // Even the better sample misses the deadline: scan for
                // the cluster-wide minimum before giving up slack.
                return loads
                    .iter()
                    .min_by_key(|l| (l.pending_prefill, l.reserved_kv, l.replica))
                    .map_or(best, |l| l.replica);
            }
            best
        } else {
            let key = |l: &ReplicaLoad| (l.reserved_kv, l.pending_prefill, l.replica);
            if key(&loads[a]) <= key(&loads[b]) {
                a
            } else {
                b
            }
        }
    }
}

/// Config-level selector for the built-in routers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum RouterKind {
    /// [`RoundRobin`].
    #[default]
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`LeastPrefill`].
    LeastPrefill,
    /// [`SloAware`].
    SloAware,
}

impl RouterKind {
    /// Every built-in router, for comparison sweeps.
    pub const ALL: [RouterKind; 5] = [
        RouterKind::RoundRobin,
        RouterKind::JoinShortestQueue,
        RouterKind::LeastLoaded,
        RouterKind::LeastPrefill,
        RouterKind::SloAware,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::JoinShortestQueue => "jsq",
            RouterKind::LeastLoaded => "least-loaded",
            RouterKind::LeastPrefill => "least-prefill",
            RouterKind::SloAware => "slo-aware",
        }
    }

    /// Instantiates the router (fresh state per run). [`SloAware`]
    /// comes up uncalibrated here — no SLOs, zero prefill rate; use
    /// [`Self::build_for`] when an evaluator is at hand.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            RouterKind::LeastLoaded => Box::new(LeastLoaded),
            RouterKind::LeastPrefill => Box::new(LeastPrefill),
            RouterKind::SloAware => Box::new(SloAware::default()),
        }
    }

    /// Instantiates the router calibrated for `eval`: [`SloAware`]
    /// receives the evaluator's tenant SLOs and prefill rate; every
    /// other kind is stateless with respect to the evaluator and
    /// matches [`Self::build`] exactly.
    pub fn build_for(&self, eval: &Evaluator) -> Box<dyn Router> {
        match self {
            RouterKind::SloAware => Box::new(SloAware::for_eval(eval)),
            _ => self.build(),
        }
    }
}

impl std::fmt::Display for RouterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Mutable run-wide accumulators, filled by replaying per-replica event
/// logs in replica-index order. Field-by-field identical to the original
/// single-threaded loops' accumulation.
#[derive(Default)]
struct Accum {
    report: ServingReport,
    batch_sum: f64,
    util_weighted: f64,
    used_kv: f64,
    reserved_kv: f64,
    /// Total decode steps executed (for the continuous policy's
    /// step-weighted mean batch).
    steps: u64,
}

impl Accum {
    /// Accounts one decode chunk: `batch_len` requests advanced by
    /// `chunk` tokens each in `secs` seconds.
    fn chunk(
        &mut self,
        eval: &Evaluator,
        it: &IterationBreakdown,
        batch_len: usize,
        chunk: u64,
        secs: f64,
    ) {
        self.report.tokens += batch_len as u64 * chunk;
        self.report.attn_seconds += it.attn_seconds * chunk as f64;
        self.report.fc_seconds += it.fc_seconds * chunk as f64;
        self.util_weighted += it.attn_utilization * secs;
        eval.energy_model().accumulate(
            &mut self.report.energy,
            it,
            chunk as f64,
            eval.system().parallel.modules(),
            eval.system().module.channels,
        );
        self.steps += chunk;
    }

    /// Accounts one executed prefill chunk (`pre` holds the chunk's
    /// totals): prompt tokens, prefill wall-clock, utilization weight,
    /// and energy; `restart` seconds of the chunk were post-eviction
    /// re-work. Prefill executes no decode steps, so `mean_batch`
    /// and the decode-phase attn/fc second split are untouched.
    fn prefill(&mut self, eval: &Evaluator, pre: &IterationBreakdown, chunk: u64, restart: f64) {
        self.report.prefill_tokens += chunk;
        self.report.prefill_seconds += pre.seconds;
        self.report.restart_seconds += restart;
        self.util_weighted += pre.attn_utilization * pre.seconds;
        eval.energy_model().accumulate(
            &mut self.report.energy,
            pre,
            1.0,
            eval.system().parallel.modules(),
            eval.system().module.channels,
        );
    }

    /// Accounts one eviction: the discarded work is recorded here; the
    /// re-work itself is billed by the `Prefill`/`Chunk` events that
    /// redo it.
    fn evict(&mut self, reprefill: u64, redecode: u64) {
        self.report.evictions += 1;
        self.report.wasted_prefill_tokens += reprefill;
        self.report.wasted_decode_tokens += redecode;
    }

    /// Accounts a finished request's KV footprint under the memory
    /// policy (for `capacity_utilization`).
    fn retire(&mut self, eval: &Evaluator, final_len: u64, t_max: u64) {
        self.used_kv += eval.model().kv_bytes(final_len) as f64;
        self.reserved_kv += eval.kv_reservation(final_len, t_max) as f64;
    }
}

/// A multi-replica serving simulation with routed arrivals.
#[derive(Debug)]
pub struct Cluster<'a> {
    eval: &'a Evaluator,
    policy: SchedulingPolicy,
    threads: usize,
}

impl<'a> Cluster<'a> {
    /// Creates a cluster over an evaluator with the given scheduling
    /// policy, simulating replicas on one thread.
    pub fn new(eval: &'a Evaluator, policy: SchedulingPolicy) -> Self {
        Cluster {
            eval,
            policy,
            threads: 1,
        }
    }

    /// Simulates replicas on up to `threads` scoped threads (`0` means
    /// one per available CPU). Thread count never changes results — only
    /// wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// The configured simulation thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves `trace`, dispatching each arrival through `router` and
    /// advancing the replica sims to completion.
    ///
    /// The wave policy ignores arrival times, so its requests are routed
    /// in trace order — with the round-robin router this reproduces the
    /// historical trace-index partitioning exactly on *any* trace. The
    /// continuous policy consumes the stream in global arrival order,
    /// the order an online front-end actually sees.
    ///
    /// Internally this is the one-pool special case of the
    /// disaggregated machinery ([`run_pools`]): a single anonymous
    /// mixed pool, which the pooled path reduces to operation-for-
    /// operation — so every historical pin also verifies the
    /// generalized loop.
    pub fn run(&self, trace: &Trace, router: &mut dyn Router) -> ServingReport {
        run_pools_impl(
            &[("", self.eval)],
            &mut [router],
            self.policy,
            self.threads,
            trace,
        )
    }
}

/// One pool of a disaggregated cluster, paired with its per-pool
/// router. The evaluator carries everything pool-specific: hardware
/// (`Evaluator::system`, whose `replicas()` is the pool size), serving
/// phase (`Evaluator::pool_role`), KV-transfer terms, and policies.
pub struct PoolRun<'a> {
    /// Display name, carried into [`ServingReport::per_pool`].
    pub name: String,
    /// The pool's evaluator.
    pub eval: &'a Evaluator,
    /// The router applied *inside* the pool once the phase-level pick
    /// has selected it.
    pub router: Box<dyn Router>,
}

/// Serves `trace` over heterogeneous replica pools with phase-aware
/// two-level routing — the disaggregated generalization of
/// [`Cluster::run`] (which is exactly this with one anonymous mixed
/// pool).
///
/// **Phase 1 (prefill):** fresh arrivals are routed over the pools
/// whose role serves prefill (`prefill` and `mixed`). With several
/// eligible pools the phase-level pick is weighted round-robin (fewest
/// routed-per-replica so far, ties to the lower pool index); the pool's
/// own router then places the request on a replica. Those pools run to
/// completion; `prefill`-role replicas retire each request at prompt
/// residency, pricing its KV transfer and recording a handoff.
///
/// **Phase 2 (decode):** the pools' handoff streams are merged in
/// transfer-completion order (`(arrival_us, id)` — the rewritten
/// arrival *is* transfer completion) and routed over the `decode`-role
/// pools the same two-level way, then those run to completion. The
/// handoff stream is feed-forward (decode pools never push work back),
/// so each phase is an ordinary deterministic routing loop and the
/// byte-identical thread-count guarantee carries over unchanged.
///
/// Reports merge pool-by-pool in declaration order (replica order
/// within a pool); [`ServingReport::per_pool`] is populated whenever
/// the pool structure is observable (more than one pool, or any
/// non-mixed role) and stays empty for a single mixed pool, keeping
/// that desugared form byte-identical with the pool-free path.
pub fn run_pools(
    pools: &mut [PoolRun<'_>],
    policy: SchedulingPolicy,
    threads: usize,
    trace: &Trace,
) -> ServingReport {
    let mut metas: Vec<(&str, &Evaluator)> = Vec::with_capacity(pools.len());
    let mut routers: Vec<&mut dyn Router> = Vec::with_capacity(pools.len());
    for p in pools.iter_mut() {
        metas.push((p.name.as_str(), p.eval));
        routers.push(p.router.as_mut());
    }
    run_pools_impl(&metas, &mut routers, policy, threads, trace)
}

/// An item the phase routing loop can dispatch: a fresh arrival or a
/// cross-pool handoff. Both order by `(arrival_us, id)` (a handoff's
/// arrival was rewritten to its transfer completion).
trait Routable: Copy {
    fn request(&self) -> &Request;
    fn dispatch(self, sim: &mut ReplicaSim<'_>);
}

impl Routable for Request {
    fn request(&self) -> &Request {
        self
    }
    fn dispatch(self, sim: &mut ReplicaSim<'_>) {
        sim.enqueue(self);
    }
}

impl Routable for HandoffOut {
    fn request(&self) -> &Request {
        &self.req
    }
    fn dispatch(self, sim: &mut ReplicaSim<'_>) {
        sim.enqueue_handoff(self);
    }
}

/// Routes one phase's item stream over the member pools (`members`
/// indexes into `pool_sims`/`routers`), interleaving replica advance
/// through a shared event calendar exactly as the historical
/// single-pool loop did — for one member pool this *is* that loop,
/// operation for operation.
fn route_phase<T: Routable>(
    items: &[T],
    members: &[usize],
    pool_sims: &mut [Vec<ReplicaSim<'_>>],
    routers: &mut [&mut dyn Router],
    policy: SchedulingPolicy,
) {
    if items.is_empty() || members.is_empty() {
        return;
    }
    // Load-aware routing needs each replica's state at the arrival
    // instant. The wave policy ignores arrival times entirely, and
    // stateless routers never look — both cases skip the interleaved
    // advancing and simulate replicas end-to-end at the drain, where
    // the parallel fan-out genuinely pays.
    let inspects = members.iter().any(|&p| routers[p].inspects_load());
    let total_reps: usize = members.iter().map(|&p| pool_sims[p].len()).sum();
    let interleave = inspects && policy == SchedulingPolicy::Continuous && total_reps > 1;
    // Flat slot index over the member pools' replicas (member order,
    // replica order within a member) for the shared event calendar.
    let mut offsets: Vec<usize> = Vec::with_capacity(members.len());
    let mut acc_off = 0usize;
    for &p in members {
        offsets.push(acc_off);
        acc_off += pool_sims[p].len();
    }
    let member_of = |flat: usize| -> (usize, usize) {
        let mp = offsets.partition_point(|&o| o <= flat) - 1;
        (mp, flat - offsets[mp])
    };
    let mut frontier = 0.0f64;
    // The load snapshots handed to each member's router, built once and
    // then maintained incrementally: advancing a replica refreshes its
    // entry and an enqueue refreshes the target's — nothing else
    // changes replica state during routing, so the buffers always match
    // what a per-arrival rebuild would produce (the historical
    // behavior, minus its O(replicas) cost per arrival). Routers that
    // never look get the initial (all-idle) snapshots.
    let mut loads: Vec<Vec<ReplicaLoad>> = members
        .iter()
        .map(|&p| {
            pool_sims[p]
                .iter()
                .enumerate()
                .map(|(i, s)| s.load(i))
                .collect()
        })
        .collect();
    // Event calendar for the interleaved advance: a min-heap of
    // `(next-event time, flat slot)` entries. Times are nonnegative, so
    // their IEEE-754 bit patterns order identically to the floats. A
    // replica is advanced only when the routing frontier passes its
    // next-event bound — the earliest instant its state can change (see
    // `ReplicaSim::advance_to`); replicas the frontier does not reach
    // are skipped, which is bit-exact because advancing a replica below
    // its bound is a state no-op. Routing an item pulls the target's
    // bound down to the arrival instant; the superseded heap entry is
    // skipped lazily (`next_event` holds the authoritative bound per
    // slot).
    let mut next_event: Vec<f64> = vec![0.0; total_reps];
    let mut calendar: BinaryHeap<Reverse<(u64, usize)>> =
        (0..total_reps).map(|i| Reverse((0u64, i))).collect();
    // Phase-level pick among several same-phase pools: weighted
    // round-robin on routed-per-replica (deterministic and
    // router-independent, so it works identically whether or not the
    // member routers inspect load).
    let mut routed_per: Vec<u64> = vec![0; members.len()];
    for item in items {
        let r = item.request();
        let ta = r.arrival_secs();
        if interleave && ta > frontier {
            while let Some(&Reverse((bits, flat))) = calendar.peek() {
                if f64::from_bits(bits) > ta {
                    break;
                }
                calendar.pop();
                if next_event[flat].to_bits() != bits {
                    continue; // superseded by an earlier bound
                }
                let (mp, ri) = member_of(flat);
                let bound = pool_sims[members[mp]][ri].advance_to(ta);
                next_event[flat] = bound;
                if bound.is_finite() {
                    calendar.push(Reverse((bound.to_bits(), flat)));
                }
                loads[mp][ri] = pool_sims[members[mp]][ri].load(ri);
            }
            frontier = ta;
        }
        // Level 1: pick the member pool — least routed per replica
        // (cross-multiplied to stay in integers), ties to the lower
        // index. A single member (every colocated run) short-circuits.
        let mut mp = 0usize;
        for cand in 1..members.len() {
            // cand wins only on strictly lower load: routed/replicas
            // compared by cross-multiplication to stay in integers.
            let lc = u128::from(routed_per[cand]) * pool_sims[members[mp]].len() as u128;
            let lb = u128::from(routed_per[mp]) * pool_sims[members[cand]].len() as u128;
            if lc < lb {
                mp = cand;
            }
        }
        let pool = members[mp];
        let reps = pool_sims[pool].len();
        // Level 2: the pool's own router places the item on a replica.
        let target = routers[pool].route(r, &loads[mp]).min(reps - 1);
        item.dispatch(&mut pool_sims[pool][target]);
        routed_per[mp] += 1;
        if inspects {
            loads[mp][target] = pool_sims[pool][target].load(target);
        }
        let flat = offsets[mp] + target;
        if interleave && ta < next_event[flat] {
            next_event[flat] = ta;
            calendar.push(Reverse((ta.to_bits(), flat)));
        }
    }
}

/// Borrows every replica sim of the member pools mutably, in member
/// order, for the drain fan-out.
fn claim_members<'s, 'a>(
    pool_sims: &'s mut [Vec<ReplicaSim<'a>>],
    members: &[usize],
) -> Vec<&'s mut ReplicaSim<'a>> {
    let wanted: std::collections::BTreeSet<usize> = members.iter().copied().collect();
    pool_sims
        .iter_mut()
        .enumerate()
        .filter(|(p, _)| wanted.contains(p))
        .flat_map(|(_, sims)| sims.iter_mut())
        .collect()
}

/// The shared implementation behind [`Cluster::run`] and [`run_pools`].
fn run_pools_impl(
    pools: &[(&str, &Evaluator)],
    routers: &mut [&mut dyn Router],
    policy: SchedulingPolicy,
    threads: usize,
    trace: &Trace,
) -> ServingReport {
    assert_eq!(pools.len(), routers.len(), "one router per pool");
    assert!(!pools.is_empty(), "a cluster needs at least one pool");
    let t_max = trace.max_final_len();
    let arrivals = match policy {
        SchedulingPolicy::Wave => trace.requests().to_vec(),
        SchedulingPolicy::Continuous => trace.arrival_ordered(),
    };
    let role_of = |eval: &Evaluator| -> PoolRole {
        // Pool roles are a continuous-policy feature; wave replicas run
        // the full lifecycle regardless (mirrors `ReplicaSim::new`).
        if policy == SchedulingPolicy::Continuous {
            eval.pool_role()
        } else {
            PoolRole::Mixed
        }
    };
    let mut pool_sims: Vec<Vec<ReplicaSim<'_>>> = pools
        .iter()
        .map(|(_, eval)| {
            let n = eval.system().replicas().max(1) as usize;
            (0..n)
                .map(|_| ReplicaSim::new(eval, policy, t_max))
                .collect()
        })
        .collect();

    // Phase 1: fresh arrivals over the prefill-serving pools.
    let p1: Vec<usize> = (0..pools.len())
        .filter(|&p| role_of(pools[p].1).serves_prefill())
        .collect();
    assert!(
        !p1.is_empty(),
        "a cluster needs at least one prefill-serving (prefill or mixed) pool"
    );
    route_phase(&arrivals, &p1, &mut pool_sims, routers, policy);
    finish_all(claim_members(&mut pool_sims, &p1), threads);

    // Phase 2: handoffs (in transfer-completion order) over the decode
    // pools. Feed-forward: phase-1 state is final before any decode
    // pool moves, so the merge stays thread-count independent.
    let mut handoffs: Vec<HandoffOut> = pool_sims
        .iter_mut()
        .flat_map(|sims| sims.iter_mut().flat_map(|s| s.handoffs.drain(..)))
        .collect();
    handoffs.sort_by_key(|h| (h.req.arrival_us, h.req.id));
    let p2: Vec<usize> = (0..pools.len())
        .filter(|&p| role_of(pools[p].1).accepts_handoff())
        .collect();
    if !handoffs.is_empty() {
        assert!(
            !p2.is_empty(),
            "a prefill pool handed off requests but no decode pool exists"
        );
        route_phase(&handoffs, &p2, &mut pool_sims, routers, policy);
        finish_all(claim_members(&mut pool_sims, &p2), threads);
    }

    merge_pools(pools, &pool_sims, policy, t_max, arrivals.len())
}

/// Replays the per-replica event logs into one accumulator — pool by
/// pool in declaration order, replica-index order within a pool, each
/// pool priced by its own evaluator — and finalizes the report: the
/// exact float operation sequence of the original sequential loops,
/// independent of thread scheduling.
fn merge_pools(
    pools: &[(&str, &Evaluator)],
    pool_sims: &[Vec<ReplicaSim<'_>>],
    policy: SchedulingPolicy,
    t_max: u64,
    requests: usize,
) -> ServingReport {
    let mut acc = Accum::default();
    let mut timings: Vec<RequestTiming> = Vec::with_capacity(requests);
    let mut per_replica: Vec<ReplicaBreakdown> = Vec::new();
    let mut per_pool: Vec<PoolBreakdown> = Vec::with_capacity(pools.len());
    let mut end_max = 0.0f64;
    let mut busy_total = 0.0f64;
    for ((name, eval), sims) in pools.iter().zip(pool_sims) {
        let mut pb = PoolBreakdown {
            name: (*name).to_string(),
            role: eval.pool_role(),
            replicas: sims.len() as u32,
            ..PoolBreakdown::default()
        };
        for sim in sims {
            for ev in &sim.events {
                match *ev {
                    SimEvent::Admit { batch } => {
                        acc.report.waves += 1;
                        acc.batch_sum += batch;
                    }
                    SimEvent::Chunk {
                        ref it,
                        batch_len,
                        chunk,
                        secs,
                    } => acc.chunk(eval, it, batch_len, chunk, secs),
                    SimEvent::Prefill {
                        ref pre,
                        chunk,
                        restart,
                    } => acc.prefill(eval, pre, chunk, restart),
                    SimEvent::Evict {
                        reprefill,
                        redecode,
                    } => acc.evict(reprefill, redecode),
                    SimEvent::Retire { final_len } => acc.retire(eval, final_len, t_max),
                    SimEvent::PrefixAdmit {
                        hit_tokens,
                        recompute_tokens,
                    } => {
                        if hit_tokens > 0 {
                            acc.report.prefix_cache_hits += 1;
                            acc.report.prefix_hit_tokens += hit_tokens;
                        }
                        // Pages reclaimed out of the prefix cache before
                        // re-use force a partial re-prefill: recomputed
                        // work, billed as waste alongside evictions.
                        acc.report.wasted_prefill_tokens += recompute_tokens;
                    }
                    SimEvent::PageReclaim { pages } => acc.report.pages_evicted += pages,
                    SimEvent::Shed => acc.report.shed += 1,
                    SimEvent::Handoff { bytes, secs } => {
                        acc.report.kv_transferred_bytes += bytes;
                        acc.report.transfer_seconds += secs;
                        pb.handoffs += 1;
                        pb.kv_transferred_bytes += bytes;
                        pb.transfer_seconds += secs;
                    }
                }
            }
            timings.extend_from_slice(&sim.timings);
            end_max = end_max.max(sim.end_time());
            busy_total += sim.busy_seconds();
            let rb = sim.breakdown();
            pb.routed += rb.routed;
            pb.served += rb.served;
            pb.tokens += rb.tokens;
            pb.busy_seconds += rb.busy_seconds;
            pb.evictions += rb.evictions;
            pb.shed += rb.shed;
            per_replica.push(rb);
        }
        per_pool.push(pb);
    }

    let eval0 = pools[0].1;
    let mut report = acc.report;
    report.seconds = end_max;
    report.busy_seconds = busy_total;
    report.tokens_per_second = if end_max > 0.0 {
        report.tokens as f64 / end_max
    } else {
        0.0
    };
    report.mean_batch = match policy {
        // Per-wave mean admitted batch (the paper's metric).
        SchedulingPolicy::Wave => {
            if report.waves > 0 {
                acc.batch_sum / f64::from(report.waves)
            } else {
                0.0
            }
        }
        // Step-weighted mean batch: tokens per executed decode step.
        SchedulingPolicy::Continuous => {
            if acc.steps > 0 {
                report.tokens as f64 / acc.steps as f64
            } else {
                0.0
            }
        }
    };
    // Utilization over *busy* replica time: idle replicas do not
    // dilute the average.
    report.attn_utilization = if busy_total > 0.0 {
        acc.util_weighted / busy_total
    } else {
        0.0
    };
    report.capacity_utilization = if acc.reserved_kv > 0.0 {
        acc.used_kv / acc.reserved_kv
    } else {
        0.0
    };
    report.latency = LatencyReport::from_timings(&timings);
    report.latency_by_priority = LatencyReport::by_priority(&timings);
    report.latency_by_tenant = LatencyReport::by_tenant(&timings, eval0.tenant_slos());
    report.per_replica = per_replica;
    // The per-pool view exists only when the pool structure is
    // observable; a single mixed pool stays byte-identical with the
    // historical pool-free report.
    if pools.len() > 1 || pools.iter().any(|(_, e)| e.pool_role() != PoolRole::Mixed) {
        report.per_pool = per_pool;
    }
    report
}

/// Runs every claimed sim to completion, fanning out over up to
/// `threads` scoped threads. Replica drain times are heavily skewed
/// (load-aware routing equalizes load, but the drain leaves each
/// replica a different backlog), so the work is distributed
/// dynamically: workers pull the next sim from a shared iterator
/// instead of receiving a fixed slice, and a thread stuck on a heavy
/// replica cannot strand the rest of a pre-chunked share. Each sim is
/// still touched by exactly one thread — and accounting is replayed
/// from the per-replica logs in replica-index order afterwards — so
/// results cannot depend on the interleaving.
fn finish_all(sims: Vec<&mut ReplicaSim<'_>>, threads: usize) {
    let workers = threads.min(sims.len()).max(1);
    if workers == 1 {
        for sim in sims {
            sim.finish();
        }
        return;
    }
    let queue = std::sync::Mutex::new(sims.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // The guard is a temporary: it drops before `finish`
                // runs, so workers only serialize on *claiming* a sim.
                let claimed = queue.lock().expect("sim queue poisoned").next();
                let Some(sim) = claimed else { break };
                sim.finish();
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SystemConfig, Techniques};
    use llm_model::LLM_7B_32K;
    use pim_compiler::ParallelConfig;
    use workload::{Dataset, TraceBuilder};

    fn multi_replica_eval() -> Evaluator {
        let sys = SystemConfig::cent_for(&LLM_7B_32K).with_parallel(ParallelConfig::new(2, 1));
        Evaluator::new(sys, LLM_7B_32K, Techniques::pimphony())
    }

    #[test]
    fn router_kinds_build_matching_labels() {
        for kind in RouterKind::ALL {
            assert_eq!(kind.build().label(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(RouterKind::default(), RouterKind::RoundRobin);
        assert!(!RouterKind::RoundRobin.build().inspects_load());
        assert!(RouterKind::JoinShortestQueue.build().inspects_load());
    }

    #[test]
    fn round_robin_cycles() {
        let loads: Vec<ReplicaLoad> = (0..3)
            .map(|i| ReplicaLoad {
                replica: i,
                in_flight: 10 * i,
                reserved_kv: 0,
                pending_prefill: 0,
                evictions: 0,
                prefix_cache_hits: 0,
                prefix_hit_tokens: 0,
                pages_evicted: 0,
            })
            .collect();
        let req = Request {
            id: 0,
            context_len: 1,
            decode_len: 1,
            arrival_us: 0,
            priority: 0,
            tenant: 0,
            shared_prefix: 0,
        };
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..5).map(|_| rr.route(&req, &loads)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn jsq_and_least_loaded_pick_minima_with_index_ties() {
        let loads = [
            ReplicaLoad {
                replica: 0,
                in_flight: 3,
                reserved_kv: 100,
                pending_prefill: 40_000,
                evictions: 0,
                prefix_cache_hits: 0,
                prefix_hit_tokens: 0,
                pages_evicted: 0,
            },
            ReplicaLoad {
                replica: 1,
                in_flight: 1,
                reserved_kv: 900,
                pending_prefill: 2_000,
                evictions: 0,
                prefix_cache_hits: 0,
                prefix_hit_tokens: 0,
                pages_evicted: 0,
            },
            ReplicaLoad {
                replica: 2,
                in_flight: 1,
                reserved_kv: 50,
                pending_prefill: 9_000,
                evictions: 0,
                prefix_cache_hits: 0,
                prefix_hit_tokens: 0,
                pages_evicted: 0,
            },
        ];
        let req = Request {
            id: 0,
            context_len: 1,
            decode_len: 1,
            arrival_us: 0,
            priority: 0,
            tenant: 0,
            shared_prefix: 0,
        };
        assert_eq!(JoinShortestQueue.route(&req, &loads), 1); // tie 1 vs 2 → lowest index
        assert_eq!(LeastLoaded.route(&req, &loads), 2);
        // Least-prefill reads the prompt backlog, not KV or counts.
        assert_eq!(LeastPrefill.route(&req, &loads), 1);
        // With no backlog anywhere (prefill disabled) it degenerates to
        // the reserved-KV order.
        let mut flat = loads;
        for l in &mut flat {
            l.pending_prefill = 0;
        }
        assert_eq!(
            LeastPrefill.route(&req, &flat),
            LeastLoaded.route(&req, &flat)
        );
    }

    #[test]
    fn slo_aware_picks_slack_for_interactive_and_memory_for_batch() {
        // Two replicas: the whole cluster is the sample, so the pick is
        // the deterministic argmin of the per-arm key.
        let loads = [
            ReplicaLoad {
                replica: 0,
                in_flight: 1,
                reserved_kv: 100,
                pending_prefill: 9_000,
                evictions: 0,
                prefix_cache_hits: 0,
                prefix_hit_tokens: 0,
                pages_evicted: 0,
            },
            ReplicaLoad {
                replica: 1,
                in_flight: 5,
                reserved_kv: 900,
                pending_prefill: 2_000,
                evictions: 0,
                prefix_cache_hits: 0,
                prefix_hit_tokens: 0,
                pages_evicted: 0,
            },
        ];
        let req = |tenant: u8| Request {
            id: 0,
            context_len: 100,
            decode_len: 1,
            arrival_us: 0,
            priority: 0,
            tenant,
            shared_prefix: 0,
        };
        let mut r = SloAware {
            slos: vec![(1, 1.0)],
            predictor: TtftPredictor::with_rate(1e-4),
            state: SloAware::SEED,
        };
        // Tenant 1 has an SLO: smallest prompt backlog wins (replica 1,
        // predicted 0.21s, inside the 1s target).
        assert_eq!(r.route(&req(1), &loads), 1);
        // Tenant 0 has none: smallest reserved KV wins (replica 0).
        assert_eq!(r.route(&req(0), &loads), 0);
        // An uncalibrated router treats every tenant as batch.
        assert_eq!(SloAware::default().route(&req(1), &loads), 0);
        // Repeat routes are stable — the RNG is untouched at n == 2.
        assert_eq!(r.route(&req(1), &loads), 1);
    }

    #[test]
    fn slo_aware_full_scan_when_both_samples_miss_the_slo() {
        // 3 replicas forces real P2C sampling; a hopeless SLO (any
        // backlog at all misses it) forces the full-scan fallback, which
        // must find the global minimum regardless of which pair was
        // sampled.
        let mk = |replica: usize, pending_prefill: u64| ReplicaLoad {
            replica,
            in_flight: 0,
            reserved_kv: 0,
            pending_prefill,
            evictions: 0,
            prefix_cache_hits: 0,
            prefix_hit_tokens: 0,
            pages_evicted: 0,
        };
        let loads = [mk(0, 9_000), mk(1, 2_000), mk(2, 8_000)];
        let req = Request {
            id: 0,
            context_len: 100,
            decode_len: 1,
            arrival_us: 0,
            priority: 0,
            tenant: 1,
            shared_prefix: 0,
        };
        let mut r = SloAware {
            slos: vec![(1, 1e-9)],
            predictor: TtftPredictor::with_rate(1e-4),
            state: SloAware::SEED,
        };
        for _ in 0..16 {
            assert_eq!(r.route(&req, &loads), 1);
        }
    }

    #[test]
    fn slo_aware_sample_pairs_are_distinct_in_range_and_deterministic() {
        let mut a = SloAware::default();
        let mut b = SloAware::default();
        for _ in 0..256 {
            let (x, y) = a.sample_pair(7);
            assert_ne!(x, y);
            assert!(x < 7 && y < 7);
            assert_eq!((x, y), b.sample_pair(7));
        }
    }

    #[test]
    fn cluster_serves_every_request_under_every_router() {
        let e = multi_replica_eval();
        assert!(e.system().replicas() >= 2);
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(11)
            .requests(24)
            .decode_range(4, 40)
            .bursty(6.0, 2.5)
            .build();
        for kind in RouterKind::ALL {
            let r =
                Cluster::new(&e, SchedulingPolicy::Continuous).run(&trace, kind.build().as_mut());
            assert_eq!(r.tokens, trace.total_decode_tokens(), "{kind}");
            assert_eq!(r.latency.completed, trace.len() as u64, "{kind}");
            assert_eq!(r.per_replica.len(), e.system().replicas() as usize);
            let routed: u64 = r.per_replica.iter().map(|b| b.routed).sum();
            let served: u64 = r.per_replica.iter().map(|b| b.served).sum();
            let tokens: u64 = r.per_replica.iter().map(|b| b.tokens).sum();
            assert_eq!(routed, trace.len() as u64, "{kind}");
            assert_eq!(served, trace.len() as u64, "{kind}");
            assert_eq!(tokens, r.tokens, "{kind}");
            let busy: f64 = r.per_replica.iter().map(|b| b.busy_seconds).sum();
            assert!((busy - r.busy_seconds).abs() < 1e-12, "{kind}");
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let e = multi_replica_eval();
        let c = Cluster::new(&e, SchedulingPolicy::Continuous).with_threads(0);
        assert!(c.threads() >= 1);
    }
}
