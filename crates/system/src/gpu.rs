//! GPU baseline: A100s with flash-decoding + paged-attention (Fig. 20).
//!
//! A roofline model: FC layers are bounded by the maximum of compute time
//! and weight-streaming time; flash-decoding attention reads the KV cache
//! once per step at an efficiency factor; paged-attention makes batch
//! admission actual-size (like DPA). Memory is matched to the PIM system
//! under comparison (two A100-80GB for 7B, eight for 72B).

use llm_model::ModelConfig;
use serde::Serialize;
use workload::Trace;

/// A multi-GPU system description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSystem {
    /// Number of GPUs (tensor-parallel).
    pub gpus: u32,
    /// Peak fp16 FLOP/s per GPU.
    pub flops: f64,
    /// HBM bandwidth per GPU, bytes/s.
    pub mem_bw: f64,
    /// HBM capacity per GPU, bytes.
    pub capacity: u64,
    /// Achievable fraction of peak compute on GEMV/GEMM-mixed decode.
    pub compute_eff: f64,
    /// Achievable fraction of peak bandwidth for flash-decoding reads.
    pub bw_eff: f64,
}

impl GpuSystem {
    /// `n` A100-80GB GPUs.
    pub fn a100(n: u32) -> Self {
        GpuSystem {
            gpus: n,
            flops: 312e12,
            mem_bw: 2.0e12,
            capacity: 80 * (1 << 30),
            compute_eff: 0.5,
            bw_eff: 0.8,
        }
    }

    /// Memory-matched configuration for the paper's comparison: two A100s
    /// for 7B models, eight for 72B.
    pub fn matched_for(model: &ModelConfig) -> Self {
        Self::a100(if model.hidden_dim >= 8192 { 8 } else { 2 })
    }

    /// KV bytes available after weights.
    pub fn kv_capacity(&self, model: &ModelConfig) -> u64 {
        (u64::from(self.gpus) * self.capacity).saturating_sub(model.weight_bytes())
    }

    /// Seconds for one decode iteration of `batch` requests at the given
    /// token counts.
    pub fn iteration_seconds(&self, model: &ModelConfig, batch_tokens: &[u64]) -> f64 {
        let b = batch_tokens.len() as f64;
        if batch_tokens.is_empty() {
            return 0.0;
        }
        let d = f64::from(model.hidden_dim);
        let kvd = f64::from(model.kv_heads() * model.head_dim);
        let f = f64::from(model.ffn_dim);
        let fc_weights = (2.0 * d * d + 2.0 * d * kvd + 3.0 * d * f) * f64::from(model.dtype_bytes);
        let fc_flops = 2.0 * b * (2.0 * d * d + 2.0 * d * kvd + 3.0 * d * f);
        let agg_flops = f64::from(self.gpus) * self.flops * self.compute_eff;
        let agg_bw = f64::from(self.gpus) * self.mem_bw * self.bw_eff;
        let fc = (fc_flops / agg_flops).max(fc_weights / agg_bw);
        // Flash-decoding: each step streams every request's per-layer KV.
        let kv_bytes: f64 = batch_tokens
            .iter()
            .map(|&t| model.kv_bytes(t) as f64 / f64::from(model.layers))
            .sum();
        let attn = kv_bytes / agg_bw;
        f64::from(model.layers) * (fc + attn)
    }

    /// Serves `trace` in waves (paged-attention admission) and returns
    /// decode throughput in tokens/second.
    pub fn throughput(&self, model: &ModelConfig, trace: &Trace) -> f64 {
        let capacity = self.kv_capacity(model);
        let reqs = trace.requests();
        let mut idx = 0usize;
        let mut seconds = 0.0f64;
        let mut tokens = 0u64;
        while idx < reqs.len() {
            // Paged-attention: admit by actual final size.
            let mut used = 0u64;
            let mut n = 0usize;
            for r in &reqs[idx..] {
                let need = model.kv_bytes(r.final_len());
                if n > 0 && used + need > capacity {
                    break;
                }
                used += need;
                n += 1;
                if used >= capacity {
                    break;
                }
            }
            let wave = &reqs[idx..idx + n.max(1)];
            idx += n.max(1);
            let decode_len = wave.iter().map(|r| r.decode_len).max().unwrap_or(0);
            let mut step = 0u64;
            let stride = 64u64;
            while step < decode_len {
                let chunk = stride.min(decode_len - step);
                let batch: Vec<u64> = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| r.context_len + step)
                    .collect();
                if batch.is_empty() {
                    break;
                }
                seconds += self.iteration_seconds(model, &batch) * chunk as f64;
                tokens += batch.len() as u64 * chunk;
                step += chunk;
            }
        }
        if seconds > 0.0 {
            tokens as f64 / seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::{LLM_72B_32K, LLM_7B_32K};
    use workload::{Dataset, TraceBuilder};

    #[test]
    fn matched_sizes_follow_the_paper() {
        assert_eq!(GpuSystem::matched_for(&LLM_7B_32K).gpus, 2);
        assert_eq!(GpuSystem::matched_for(&LLM_72B_32K).gpus, 8);
    }

    #[test]
    fn iteration_slows_with_context() {
        let g = GpuSystem::a100(2);
        let short = g.iteration_seconds(&LLM_7B_32K, &[2048]);
        let long = g.iteration_seconds(&LLM_7B_32K, &[32 * 1024]);
        assert!(long > 1.8 * short, "{long} vs {short}");
    }

    #[test]
    fn batching_amortizes_weights() {
        let g = GpuSystem::a100(2);
        let solo = g.iteration_seconds(&LLM_7B_32K, &[8192]);
        let batch8 = g.iteration_seconds(&LLM_7B_32K, &[8192; 8]);
        // 8x the work in much less than 8x the time.
        assert!(batch8 < 6.0 * solo);
    }

    #[test]
    fn throughput_is_positive_on_real_traces() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(1)
            .requests(16)
            .decode_len(32)
            .build();
        let g = GpuSystem::matched_for(&LLM_7B_32K);
        assert!(g.throughput(&LLM_7B_32K, &trace) > 0.0);
    }

    #[test]
    fn kv_capacity_subtracts_weights() {
        let g = GpuSystem::a100(2);
        assert!(g.kv_capacity(&LLM_7B_32K) < 2 * 80 * (1 << 30));
        assert!(g.kv_capacity(&LLM_7B_32K) > 100 * (1 << 30));
    }
}
