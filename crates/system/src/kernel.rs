//! Memoized per-channel kernel latency model.
//!
//! Attention kernels stream tokens, so their cycle cost is affine in the
//! token count. We simulate each distinct (kernel, scheduler, GQA,
//! row-reuse) configuration *exactly* at two calibration sizes with the
//! cycle-level `pim-sim` engine, fit `cycles = a + b·tokens`, and evaluate
//! the fit everywhere else. FC GEMVs have few distinct shapes, so they are
//! simulated exactly and memoized per shape.

use parking_lot::Mutex;
use pim_sim::kernels::{AttentionSpec, GemvKernel, GemvSpec, QktKernel, SvKernel};
use pim_sim::{schedule, Geometry, SchedulerKind, Timing};
use serde::Serialize;
use std::collections::HashMap;

/// Scalar statistics of one kernel execution, extrapolatable in tokens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct KernelStats {
    /// Total cycles.
    pub cycles: f64,
    /// Cycles the MAC pipeline was busy.
    pub mac_busy: f64,
    /// `MAC` command count.
    pub macs: f64,
    /// I/O command count (`WR-INP` + `RD-OUT`).
    pub ios: f64,
    /// DRAM row switches.
    pub row_switches: f64,
}

impl KernelStats {
    fn from_report(r: &pim_sim::ExecutionReport, timing: &Timing) -> Self {
        KernelStats {
            cycles: r.cycles as f64,
            mac_busy: (r.mac_count * timing.t_ccds) as f64,
            macs: r.mac_count as f64,
            ios: (r.wr_inp_count + r.rd_out_count) as f64,
            row_switches: r.row_switches as f64,
        }
    }

    fn axpy(a: &KernelStats, b: &KernelStats, x: f64) -> KernelStats {
        KernelStats {
            cycles: (a.cycles + b.cycles * x).max(0.0),
            mac_busy: (a.mac_busy + b.mac_busy * x).max(0.0),
            macs: (a.macs + b.macs * x).max(0.0),
            ios: (a.ios + b.ios * x).max(0.0),
            row_switches: (a.row_switches + b.row_switches * x).max(0.0),
        }
    }

    /// Adds another kernel's statistics.
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.mac_busy += other.mac_busy;
        self.macs += other.macs;
        self.ios += other.ios;
        self.row_switches += other.row_switches;
    }

    /// Scales all statistics (e.g. repeat a kernel `k` times).
    pub fn scaled(&self, k: f64) -> KernelStats {
        KernelStats {
            cycles: self.cycles * k,
            mac_busy: self.mac_busy * k,
            macs: self.macs * k,
            ios: self.ios * k,
            row_switches: self.row_switches * k,
        }
    }
}

/// Attention kernel flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKind {
    /// The score kernel.
    Qkt,
    /// The value kernel.
    Sv,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AttnKey {
    kind: AttentionKind,
    scheduler: SchedulerKind,
    group: u32,
    row_reuse: bool,
    pimphony_buffers: bool,
}

#[derive(Debug, Clone, Copy)]
struct Affine {
    intercept: KernelStats,
    slope: KernelStats,
}

/// A resolved attention-kernel configuration, usable as a lock-free
/// evaluator: [`Self::stats`] returns exactly what
/// [`KernelModel::attention`] would for the same configuration and
/// token count, without re-taking the memo lock per query. Hot loops
/// price thousands of token slices per iteration against one fixed
/// configuration — hoisting the memo lookup out of the slice loop
/// removes the per-slice lock/hash cost without changing a single
/// float operation.
#[derive(Debug, Clone, Copy)]
pub struct AttentionEval {
    affine: Affine,
}

impl AttentionEval {
    /// Statistics over `tokens` tokens — bit-identical to
    /// [`KernelModel::attention`] with the configuration this evaluator
    /// was resolved for.
    pub fn stats(&self, tokens: u64) -> KernelStats {
        if tokens == 0 {
            return KernelStats::default();
        }
        KernelStats::axpy(&self.affine.intercept, &self.affine.slope, tokens as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GemvKey {
    dout: u32,
    din: u32,
    scheduler: SchedulerKind,
    pimphony_buffers: bool,
}

/// The memoizing kernel model shared by the system evaluator.
#[derive(Debug)]
pub struct KernelModel {
    timing: Timing,
    head_dim: u32,
    attn_cache: Mutex<HashMap<AttnKey, Affine>>,
    gemv_cache: Mutex<HashMap<GemvKey, KernelStats>>,
}

/// Calibration token counts for the affine fit.
const CAL_LO: u32 = 512;
const CAL_HI: u32 = 4096;

impl KernelModel {
    /// Creates a model for kernels with per-head dimension `head_dim`.
    pub fn new(timing: Timing, head_dim: u32) -> Self {
        KernelModel {
            timing,
            head_dim,
            attn_cache: Mutex::new(HashMap::new()),
            gemv_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The timing the model simulates with.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    fn geometry(&self, pimphony_buffers: bool) -> Geometry {
        if pimphony_buffers {
            Geometry::pimphony()
        } else {
            Geometry::baseline()
        }
    }

    fn simulate_attn(&self, key: AttnKey, tokens: u32) -> KernelStats {
        let geom = self.geometry(key.pimphony_buffers);
        let spec = AttentionSpec {
            tokens,
            head_dim: self.head_dim,
            group_size: key.group,
            row_reuse: key.row_reuse,
        };
        let stream = match key.kind {
            AttentionKind::Qkt => QktKernel::new(spec, geom).stream(),
            AttentionKind::Sv => SvKernel::new(spec, geom).stream(),
        };
        let report = schedule(&stream, key.scheduler, &self.timing, &geom);
        KernelStats::from_report(&report, &self.timing)
    }

    fn affine(&self, key: AttnKey) -> Affine {
        if let Some(a) = self.attn_cache.lock().get(&key) {
            return *a;
        }
        let lo = self.simulate_attn(key, CAL_LO);
        let hi = self.simulate_attn(key, CAL_HI);
        let dt = f64::from(CAL_HI - CAL_LO);
        let slope = KernelStats {
            cycles: (hi.cycles - lo.cycles) / dt,
            mac_busy: (hi.mac_busy - lo.mac_busy) / dt,
            macs: (hi.macs - lo.macs) / dt,
            ios: (hi.ios - lo.ios) / dt,
            row_switches: (hi.row_switches - lo.row_switches) / dt,
        };
        let intercept = KernelStats {
            cycles: lo.cycles - slope.cycles * f64::from(CAL_LO),
            mac_busy: lo.mac_busy - slope.mac_busy * f64::from(CAL_LO),
            macs: lo.macs - slope.macs * f64::from(CAL_LO),
            ios: lo.ios - slope.ios * f64::from(CAL_LO),
            row_switches: lo.row_switches - slope.row_switches * f64::from(CAL_LO),
        };
        let a = Affine { intercept, slope };
        self.attn_cache.lock().insert(key, a);
        a
    }

    /// Statistics of one attention kernel over `tokens` tokens on one
    /// channel (`group` query heads share the KV data; `row_reuse` selects
    /// the GQA row-reuse mapping).
    pub fn attention(
        &self,
        kind: AttentionKind,
        scheduler: SchedulerKind,
        pimphony_buffers: bool,
        group: u32,
        row_reuse: bool,
        tokens: u64,
    ) -> KernelStats {
        if tokens == 0 {
            return KernelStats::default();
        }
        let key = AttnKey {
            kind,
            scheduler,
            group,
            row_reuse,
            pimphony_buffers,
        };
        let a = self.affine(key);
        KernelStats::axpy(&a.intercept, &a.slope, tokens as f64)
    }

    /// Resolves one attention configuration into a lock-free
    /// [`AttentionEval`] for repeated per-slice queries (one memo
    /// lookup up front instead of one per slice).
    pub fn attention_eval(
        &self,
        kind: AttentionKind,
        scheduler: SchedulerKind,
        pimphony_buffers: bool,
        group: u32,
        row_reuse: bool,
    ) -> AttentionEval {
        AttentionEval {
            affine: self.affine(AttnKey {
                kind,
                scheduler,
                group,
                row_reuse,
                pimphony_buffers,
            }),
        }
    }

    /// Total statistics of one attention kernel summed over a causal
    /// prefill chunk on one channel: query positions
    /// `done+1 ..= done+chunk`, where position `i` attends to its
    /// `i`-token prefix. The affine per-position model makes the prefix
    /// sum closed-form — `Σᵢ (a + b·i) = chunk·a + b·(chunk·done +
    /// chunk·(chunk+1)/2)` — so a whole prompt chunk prices in O(1)
    /// regardless of its length.
    #[allow(clippy::too_many_arguments)]
    pub fn attention_prefill(
        &self,
        kind: AttentionKind,
        scheduler: SchedulerKind,
        pimphony_buffers: bool,
        group: u32,
        row_reuse: bool,
        done: u64,
        chunk: u64,
    ) -> KernelStats {
        if chunk == 0 {
            return KernelStats::default();
        }
        let key = AttnKey {
            kind,
            scheduler,
            group,
            row_reuse,
            pimphony_buffers,
        };
        let a = self.affine(key);
        let c = chunk as f64;
        let token_sum = c * done as f64 + c * (c + 1.0) / 2.0;
        KernelStats::axpy(&a.intercept.scaled(c), &a.slope, token_sum)
    }

    /// Statistics of one dense GEMV on one channel (exact, memoized).
    pub fn gemv(
        &self,
        scheduler: SchedulerKind,
        pimphony_buffers: bool,
        dout: u32,
        din: u32,
    ) -> KernelStats {
        if dout == 0 || din == 0 {
            return KernelStats::default();
        }
        let key = GemvKey {
            dout,
            din,
            scheduler,
            pimphony_buffers,
        };
        if let Some(s) = self.gemv_cache.lock().get(&key) {
            return *s;
        }
        let geom = self.geometry(pimphony_buffers);
        let stream = GemvKernel::new(GemvSpec { dout, din }, geom).stream();
        let report = schedule(&stream, scheduler, &self.timing, &geom);
        let stats = KernelStats::from_report(&report, &self.timing);
        self.gemv_cache.lock().insert(key, stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KernelModel {
        KernelModel::new(Timing::aimx(), 128)
    }

    #[test]
    fn affine_fit_tracks_exact_simulation() {
        let m = model();
        let key = AttnKey {
            kind: AttentionKind::Qkt,
            scheduler: SchedulerKind::Dcs,
            group: 1,
            row_reuse: false,
            pimphony_buffers: true,
        };
        let exact = m.simulate_attn(key, 2048);
        let fitted = m.attention(AttentionKind::Qkt, SchedulerKind::Dcs, true, 1, false, 2048);
        let err = (exact.cycles - fitted.cycles).abs() / exact.cycles;
        // Refresh windows and row-boundary effects add mild curvature;
        // a 10% envelope is tight enough for throughput composition.
        assert!(err < 0.10, "fit error {:.2}%", err * 100.0);
    }

    #[test]
    fn dcs_is_never_slower_than_static() {
        let m = model();
        for kind in [AttentionKind::Qkt, AttentionKind::Sv] {
            let s = m.attention(kind, SchedulerKind::Static, false, 1, false, 8192);
            let d = m.attention(kind, SchedulerKind::Dcs, true, 1, false, 8192);
            assert!(
                d.cycles <= s.cycles,
                "{kind:?}: {} vs {}",
                d.cycles,
                s.cycles
            );
        }
    }

    #[test]
    fn attention_eval_is_bit_exact_with_attention() {
        let m = model();
        for (group, row_reuse) in [(1, false), (4, true)] {
            let eval = m.attention_eval(
                AttentionKind::Qkt,
                SchedulerKind::Dcs,
                true,
                group,
                row_reuse,
            );
            for tokens in [0u64, 1, 17, 512, 4096, 100_000] {
                let direct = m.attention(
                    AttentionKind::Qkt,
                    SchedulerKind::Dcs,
                    true,
                    group,
                    row_reuse,
                    tokens,
                );
                assert_eq!(eval.stats(tokens), direct, "tokens {tokens}");
            }
        }
    }

    #[test]
    fn zero_tokens_is_free() {
        let m = model();
        let s = m.attention(AttentionKind::Sv, SchedulerKind::Dcs, true, 4, true, 0);
        assert_eq!(s.cycles, 0.0);
    }

    #[test]
    fn stats_grow_with_tokens() {
        let m = model();
        let a = m.attention(AttentionKind::Qkt, SchedulerKind::Dcs, true, 1, false, 1024);
        let b = m.attention(
            AttentionKind::Qkt,
            SchedulerKind::Dcs,
            true,
            1,
            false,
            65536,
        );
        assert!(b.cycles > 10.0 * a.cycles);
        assert!(b.macs > a.macs);
    }

    #[test]
    fn gemv_cache_hits_are_stable() {
        let m = model();
        let a = m.gemv(SchedulerKind::Static, false, 256, 4096);
        let b = m.gemv(SchedulerKind::Static, false, 256, 4096);
        assert_eq!(a, b);
        assert!(a.cycles > 0.0);
    }

    #[test]
    fn prefill_closed_form_matches_per_position_sum() {
        let m = model();
        let (done, chunk) = (1000u64, 7u64);
        let closed = m.attention_prefill(
            AttentionKind::Qkt,
            SchedulerKind::Dcs,
            true,
            1,
            false,
            done,
            chunk,
        );
        let mut summed = KernelStats::default();
        for i in 1..=chunk {
            summed.accumulate(&m.attention(
                AttentionKind::Qkt,
                SchedulerKind::Dcs,
                true,
                1,
                false,
                done + i,
            ));
        }
        assert!(
            (closed.cycles - summed.cycles).abs() < 1e-6 * summed.cycles,
            "{} vs {}",
            closed.cycles,
            summed.cycles
        );
        assert!((closed.macs - summed.macs).abs() < 1e-6 * summed.macs);
    }

    #[test]
    fn prefill_single_position_equals_decode_attention() {
        let m = model();
        let one = m.attention_prefill(
            AttentionKind::Sv,
            SchedulerKind::Static,
            false,
            1,
            false,
            4095,
            1,
        );
        let decode = m.attention(
            AttentionKind::Sv,
            SchedulerKind::Static,
            false,
            1,
            false,
            4096,
        );
        assert!((one.cycles - decode.cycles).abs() < 1e-9 * decode.cycles);
    }

    #[test]
    fn prefill_zero_chunk_is_free_and_grows_with_chunk() {
        let m = model();
        let z = m.attention_prefill(
            AttentionKind::Qkt,
            SchedulerKind::Dcs,
            true,
            1,
            false,
            512,
            0,
        );
        assert_eq!(z.cycles, 0.0);
        let small = m.attention_prefill(
            AttentionKind::Qkt,
            SchedulerKind::Dcs,
            true,
            1,
            false,
            0,
            1024,
        );
        let big = m.attention_prefill(
            AttentionKind::Qkt,
            SchedulerKind::Dcs,
            true,
            1,
            false,
            0,
            8192,
        );
        // Causal prefill is superlinear in the prompt: 8x the tokens is
        // far more than 8x the work.
        assert!(big.cycles > 16.0 * small.cycles);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut s = KernelStats::default();
        let one = KernelStats {
            cycles: 10.0,
            mac_busy: 4.0,
            macs: 2.0,
            ios: 1.0,
            row_switches: 0.0,
        };
        s.accumulate(&one);
        s.accumulate(&one.scaled(2.0));
        assert_eq!(s.cycles, 30.0);
        assert_eq!(s.macs, 6.0);
    }
}
