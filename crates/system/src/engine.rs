//! Event-driven serving engine.
//!
//! The engine advances each replica's *virtual clock* over three kinds of
//! events — request admission, chunked decode steps, and request
//! completion — and delegates the admission decisions to a
//! [`SchedulingPolicy`]. Replicas share no state (requests are
//! partitioned round-robin, as in the original wave loop), so they are
//! simulated independently and the run's wall clock is the slowest
//! replica's end time.
//!
//! Decode steps are chunked: the iteration latency is recomputed every
//! [`Evaluator::stride`] steps (token growth between recomputes is below
//! 1% for long contexts), and a chunk is additionally cut short at the
//! next request completion or — under the continuous policy — at the
//! next admissible arrival, so batch composition is constant within a
//! chunk.
//!
//! Running the [`SchedulingPolicy::Wave`] policy through this engine
//! reproduces the original closed-world wave loop's `ServingReport`
//! numbers exactly (see `run_trace_wave_reference` and the
//! `engine_properties` integration tests): the arithmetic was extracted,
//! not reimplemented.

use crate::metrics::{LatencyReport, RequestTiming};
use crate::policy::{self, ContinuousAdmitter, SchedulingPolicy};
use crate::serve::{Evaluator, ServingReport};
use crate::stage::{IterationBreakdown, StageModel};
use std::collections::VecDeque;
use workload::{Request, Trace};

/// Runs traces through an [`Evaluator`] under a scheduling policy.
#[derive(Debug)]
pub struct Engine<'a> {
    eval: &'a Evaluator,
    policy: SchedulingPolicy,
}

/// Mutable run-wide accumulators shared by every replica simulation.
#[derive(Default)]
struct Accum {
    report: ServingReport,
    batch_sum: f64,
    util_weighted: f64,
    used_kv: f64,
    reserved_kv: f64,
    /// Total decode steps executed (for the continuous policy's
    /// step-weighted mean batch).
    steps: u64,
}

impl Accum {
    /// Accounts one decode chunk: `batch_len` requests advanced by
    /// `chunk` tokens each in `secs` seconds. Field-by-field identical to
    /// the original wave loop's per-chunk accumulation.
    fn chunk(
        &mut self,
        eval: &Evaluator,
        it: &IterationBreakdown,
        batch_len: usize,
        chunk: u64,
        secs: f64,
    ) {
        self.report.tokens += batch_len as u64 * chunk;
        self.report.attn_seconds += it.attn_seconds * chunk as f64;
        self.report.fc_seconds += it.fc_seconds * chunk as f64;
        self.util_weighted += it.attn_utilization * secs;
        eval.energy_model().accumulate(
            &mut self.report.energy,
            it,
            chunk as f64,
            eval.system().parallel.modules(),
            eval.system().module.channels,
        );
        self.steps += chunk;
    }

    /// Accounts a finished request's KV footprint under the memory
    /// policy (for `capacity_utilization`).
    fn retire(&mut self, eval: &Evaluator, r: &Request, t_max: u64) {
        self.used_kv += eval.model().kv_bytes(r.final_len()) as f64;
        self.reserved_kv += eval.kv_reservation(r.final_len(), t_max) as f64;
    }
}

/// One request resident in a replica's running batch.
#[derive(Debug, Clone, Copy)]
struct Active {
    req: Request,
    /// Tokens generated so far.
    done: u64,
    admitted: f64,
    first_token: Option<f64>,
}

impl<'a> Engine<'a> {
    /// Creates an engine over an evaluator with the given policy.
    pub fn new(eval: &'a Evaluator, policy: SchedulingPolicy) -> Self {
        Engine { eval, policy }
    }

    /// The policy this engine schedules with.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Serves `trace`, splitting requests round-robin across replicas and
    /// advancing each replica's virtual time to completion.
    pub fn run(&self, trace: &Trace) -> ServingReport {
        let replicas = self.eval.system().replicas();
        let stage = self.eval.stage_model();

        // The serving configuration is compiled for the workload's worst
        // case (static streams must cover it).
        let t_max = trace.iter().map(|r| r.final_len()).max().unwrap_or(0);
        let mut per_replica: Vec<Vec<Request>> = vec![Vec::new(); replicas as usize];
        for (i, r) in trace.iter().enumerate() {
            per_replica[i % replicas as usize].push(*r);
        }

        let mut acc = Accum::default();
        let mut timings: Vec<RequestTiming> = Vec::with_capacity(trace.len());
        let mut end_max = 0.0f64;
        let mut busy_total = 0.0f64;
        for queue in &per_replica {
            let (end, busy) = match self.policy {
                SchedulingPolicy::Wave => {
                    self.run_wave_replica(&stage, queue, t_max, &mut acc, &mut timings)
                }
                SchedulingPolicy::Continuous => {
                    self.run_continuous_replica(&stage, queue, t_max, &mut acc, &mut timings)
                }
            };
            end_max = end_max.max(end);
            busy_total += busy;
        }

        let mut report = acc.report;
        report.seconds = end_max;
        report.busy_seconds = busy_total;
        report.tokens_per_second = if end_max > 0.0 {
            report.tokens as f64 / end_max
        } else {
            0.0
        };
        report.mean_batch = match self.policy {
            // Per-wave mean admitted batch (the paper's metric).
            SchedulingPolicy::Wave => {
                if report.waves > 0 {
                    acc.batch_sum / f64::from(report.waves)
                } else {
                    0.0
                }
            }
            // Step-weighted mean batch: tokens per executed decode step.
            SchedulingPolicy::Continuous => {
                if acc.steps > 0 {
                    report.tokens as f64 / acc.steps as f64
                } else {
                    0.0
                }
            }
        };
        // Utilization over *busy* replica time: idle replicas no longer
        // dilute the average (the original loop divided by
        // `max_seconds × replicas`, double-counting idle tails).
        report.attn_utilization = if busy_total > 0.0 {
            acc.util_weighted / busy_total
        } else {
            0.0
        };
        report.capacity_utilization = if acc.reserved_kv > 0.0 {
            acc.used_kv / acc.reserved_kv
        } else {
            0.0
        };
        report.latency = LatencyReport::from_timings(&timings);
        report
    }

    /// The original closed-world wave loop, driven as engine events: each
    /// wave decodes to completion before the next is admitted. Arrival
    /// times are ignored (every request is treated as queued at time 0),
    /// so TTFT under this policy measures closed-world queueing.
    fn run_wave_replica(
        &self,
        stage: &StageModel<'_>,
        queue: &[Request],
        t_max: u64,
        acc: &mut Accum,
        timings: &mut Vec<RequestTiming>,
    ) -> (f64, f64) {
        let eval = self.eval;
        let stride = eval.stride();
        let mut idx = 0usize;
        let mut replica_seconds = 0.0f64;
        while idx < queue.len() {
            let admitted = policy::wave_plan(eval, &queue[idx..], t_max);
            let wave = &queue[idx..idx + admitted];
            idx += admitted;
            acc.report.waves += 1;
            acc.batch_sum += admitted as f64;

            let wave_start = replica_seconds;
            let mut first_token: Vec<Option<f64>> = vec![None; admitted];
            let mut finish: Vec<f64> = vec![wave_start; admitted];

            // Decode the wave; all requests share the same decode budget,
            // growing token counts as they generate.
            let decode_len = wave.iter().map(|r| r.decode_len).max().unwrap_or(0);
            let mut step = 0u64;
            while step < decode_len {
                let batch: Vec<(u64, u64)> = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| (r.id, r.context_len + step))
                    .collect();
                if batch.is_empty() {
                    break;
                }
                // Cut the chunk at the earliest completion so batch
                // composition is constant within it. With a uniform
                // decode budget this reduces to the original loop's
                // `stride.min(decode_len - step)` (bit-identical
                // results); with varied budgets it fixes that loop's
                // over-count of `batch × chunk` tokens for requests
                // finishing mid-chunk.
                let min_remaining = wave
                    .iter()
                    .filter(|r| r.decode_len > step)
                    .map(|r| r.decode_len - step)
                    .min()
                    .expect("nonempty batch");
                let chunk = stride.min(decode_len - step).min(min_remaining);
                let it = stage.iteration(&batch);
                let secs = it.seconds * chunk as f64;
                let chunk_start = replica_seconds;
                replica_seconds += secs;
                acc.chunk(eval, &it, batch.len(), chunk, secs);
                for (i, r) in wave.iter().enumerate() {
                    if r.decode_len > step {
                        if first_token[i].is_none() {
                            first_token[i] = Some(chunk_start + it.seconds);
                        }
                        if r.decode_len <= step + chunk {
                            finish[i] = chunk_start + it.seconds * (r.decode_len - step) as f64;
                        }
                    }
                }
                step += chunk;
            }

            for (i, r) in wave.iter().enumerate() {
                acc.retire(eval, r, t_max);
                timings.push(RequestTiming {
                    id: r.id,
                    // Closed world: the policy treats every request as
                    // queued at time 0, so its latencies are measured
                    // from the epoch — a real (later) arrival time would
                    // make first_token precede arrival and turn TTFT
                    // negative.
                    arrival: 0.0,
                    admitted: wave_start,
                    first_token: first_token[i].unwrap_or(wave_start),
                    finished: finish[i],
                    decode_len: r.decode_len,
                });
            }
        }
        (replica_seconds, replica_seconds)
    }

    /// Continuous batching: pending requests join the running batch the
    /// moment their arrival has passed and the memory policy has room;
    /// completions free reservations immediately. The clock jumps over
    /// idle gaps (counted in `seconds` but not `busy_seconds`).
    fn run_continuous_replica(
        &self,
        stage: &StageModel<'_>,
        queue: &[Request],
        t_max: u64,
        acc: &mut Accum,
        timings: &mut Vec<RequestTiming>,
    ) -> (f64, f64) {
        let eval = self.eval;
        let stride = eval.stride();
        let mut pending: VecDeque<Request> = {
            let mut q = queue.to_vec();
            q.sort_by_key(|r| (r.arrival_us, r.id));
            q.into()
        };
        let mut admitter = ContinuousAdmitter::new(eval, t_max);
        let mut running: Vec<Active> = Vec::new();
        let mut t = 0.0f64;
        let mut busy = 0.0f64;

        loop {
            // Idle: jump the clock to the next arrival.
            if running.is_empty() {
                match pending.front() {
                    None => break,
                    Some(r) if r.arrival_secs() > t => t = r.arrival_secs(),
                    Some(_) => {}
                }
            }

            // Admission event: FCFS sweep of everything that has arrived
            // and fits. No reordering — head-of-line blocking under
            // worst-case reservations is part of what's being measured.
            let mut admitted_now = 0usize;
            while let Some(&r) = pending.front() {
                if r.arrival_secs() > t || !admitter.fits(eval, &r, running.len(), t_max) {
                    break;
                }
                pending.pop_front();
                admitter.reserve(eval, &r, t_max);
                if r.decode_len == 0 {
                    // Nothing to generate: completes at admission.
                    admitter.release(eval, &r, t_max);
                    acc.retire(eval, &r, t_max);
                    timings.push(RequestTiming {
                        id: r.id,
                        arrival: r.arrival_secs(),
                        admitted: t,
                        first_token: t,
                        finished: t,
                        decode_len: 0,
                    });
                    continue;
                }
                running.push(Active {
                    req: r,
                    done: 0,
                    admitted: t,
                    first_token: None,
                });
                admitted_now += 1;
            }
            // Continuous mean_batch is step-weighted (tokens / steps),
            // so admission events only bump the event counter.
            if admitted_now > 0 {
                acc.report.waves += 1;
            }
            if running.is_empty() {
                continue; // only zero-decode requests were admitted
            }

            // Step event: decode one chunk with a fixed batch.
            let batch: Vec<(u64, u64)> = running
                .iter()
                .map(|a| (a.req.id, a.req.context_len + a.done))
                .collect();
            let it = stage.iteration(&batch);
            let per_step = it.seconds;
            let min_remaining = running
                .iter()
                .map(|a| a.req.decode_len - a.done)
                .min()
                .expect("nonempty running batch");
            let mut chunk = stride.min(min_remaining);
            // Cut the chunk at the next arrival that could actually join,
            // so admission is not delayed by up to a whole stride.
            if per_step > 0.0 {
                if let Some(front) = pending.front() {
                    let arr = front.arrival_secs();
                    if arr > t && admitter.fits(eval, front, running.len(), t_max) {
                        let steps_until = ((arr - t) / per_step).ceil().max(1.0);
                        if (steps_until as u64) < chunk {
                            chunk = steps_until as u64;
                        }
                    }
                }
            }
            let secs = per_step * chunk as f64;
            acc.chunk(eval, &it, batch.len(), chunk, secs);
            for a in &mut running {
                if a.first_token.is_none() {
                    a.first_token = Some(t + per_step);
                }
                a.done += chunk;
            }
            t += secs;
            busy += secs;

            // Completion events: retire finished requests, freeing memory.
            let mut i = 0usize;
            while i < running.len() {
                if running[i].done >= running[i].req.decode_len {
                    let a = running.swap_remove(i);
                    admitter.release(eval, &a.req, t_max);
                    acc.retire(eval, &a.req, t_max);
                    timings.push(RequestTiming {
                        id: a.req.id,
                        arrival: a.req.arrival_secs(),
                        admitted: a.admitted,
                        first_token: a.first_token.unwrap_or(a.admitted),
                        finished: t,
                        decode_len: a.req.decode_len,
                    });
                } else {
                    i += 1;
                }
            }
        }
        (t, busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SystemConfig, Techniques};
    use llm_model::LLM_7B_32K;
    use workload::{Dataset, TraceBuilder};

    fn eval(techniques: Techniques) -> Evaluator {
        Evaluator::new(SystemConfig::cent_for(&LLM_7B_32K), LLM_7B_32K, techniques)
    }

    #[test]
    fn wave_through_engine_matches_reference_exactly() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(3)
            .requests(12)
            .decode_len(32)
            .build();
        for t in Techniques::ladder() {
            let e = eval(t);
            let engine = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
            let reference = e.run_trace_wave_reference(&trace);
            assert_eq!(engine.tokens, reference.tokens, "{}", t.label());
            assert_eq!(engine.waves, reference.waves, "{}", t.label());
            assert_eq!(engine.seconds, reference.seconds, "{}", t.label());
            assert_eq!(
                engine.tokens_per_second,
                reference.tokens_per_second,
                "{}",
                t.label()
            );
            assert_eq!(engine.mean_batch, reference.mean_batch, "{}", t.label());
            assert_eq!(engine.attn_seconds, reference.attn_seconds, "{}", t.label());
            assert_eq!(engine.fc_seconds, reference.fc_seconds, "{}", t.label());
            assert_eq!(engine.energy, reference.energy, "{}", t.label());
            assert_eq!(
                engine.capacity_utilization,
                reference.capacity_utilization,
                "{}",
                t.label()
            );
        }
    }

    #[test]
    fn continuous_serves_every_request_and_token() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(24)
            .decode_range(8, 48)
            .poisson(4.0)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Continuous).run(&trace);
        assert_eq!(r.tokens, trace.total_decode_tokens());
        assert_eq!(r.latency.completed, trace.len() as u64);
        assert!(r.tokens_per_second > 0.0);
        assert!(r.busy_seconds <= r.seconds * e.system().replicas() as f64 + 1e-9);
    }

    #[test]
    fn continuous_latencies_are_causally_ordered() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(8)
            .requests(16)
            .decode_range(4, 32)
            .poisson(2.0)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Continuous).run(&trace);
        let l = &r.latency;
        assert!(l.ttft.p50 > 0.0);
        assert!(l.tpot.p50 > 0.0);
        // Percentiles are monotone and e2e dominates ttft at each rank.
        for s in [&l.ttft, &l.tpot, &l.e2e] {
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max, "{s:?}");
        }
        assert!(l.e2e.p50 >= l.ttft.p50);
        assert!(l.e2e.max >= l.ttft.max);
    }

    #[test]
    fn continuous_on_batch_trace_behaves_like_closed_world() {
        // All arrivals at t=0: continuous degenerates to greedy admission
        // with refill — same total work, no idle time.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(6)
            .requests(16)
            .decode_len(16)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Continuous).run(&trace);
        assert_eq!(r.tokens, trace.total_decode_tokens());
        assert!((r.busy_seconds - r.seconds * e.system().replicas() as f64).abs() < 1e-9);
    }

    #[test]
    fn wave_latencies_are_nonnegative_on_open_loop_traces() {
        // Wave ignores arrivals (closed world): latencies are measured
        // from the epoch, so a request arriving "late" must not yield a
        // negative TTFT/E2E.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(7)
            .requests(12)
            .decode_len(8)
            .poisson(0.5) // arrivals spread over many seconds
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
        assert!(
            r.latency.ttft.p50 >= 0.0 && r.latency.ttft.max >= 0.0,
            "{:?}",
            r.latency.ttft
        );
        assert!(r.latency.e2e.p50 >= 0.0, "{:?}", r.latency.e2e);
        assert!(r.latency.e2e.max <= r.seconds + 1e-9);
    }

    #[test]
    fn wave_timings_cover_all_requests() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(2)
            .requests(10)
            .decode_len(8)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
        assert_eq!(r.latency.completed, trace.len() as u64);
        assert!(r.latency.ttft.max <= r.seconds + 1e-9);
        assert!(r.latency.e2e.max <= r.seconds + 1e-9);
    }
}
