//! Event-driven serving engine (single-node facade over the cluster).
//!
//! The engine advances each replica's *virtual clock* over three kinds of
//! events — request admission, chunked decode steps, and request
//! completion — and delegates the admission decisions to a
//! [`SchedulingPolicy`]. The per-replica state machine lives in
//! [`crate::replica`]; multi-replica orchestration (routed arrivals,
//! pluggable load balancing, parallel simulation) lives in
//! [`crate::cluster`]. `Engine` is the stable single-entry facade: it
//! runs the cluster with the [`crate::cluster::RoundRobin`] router on one
//! thread, which reproduces the historical trace-level round-robin
//! partitioning bit-exactly.
//!
//! Decode steps are chunked: the iteration latency is recomputed every
//! `Evaluator::stride` steps (token growth between recomputes is below
//! 1% for long contexts), and a chunk is additionally cut short at the
//! next request completion or — under the continuous policy — at the
//! next admissible arrival, so batch composition is constant within a
//! chunk.
//!
//! Running the [`SchedulingPolicy::Wave`] policy through this engine
//! reproduces the original closed-world wave loop's `ServingReport`
//! numbers exactly (see `run_trace_wave_reference` and the
//! `engine_properties` integration tests): the arithmetic was extracted,
//! not reimplemented.

use crate::cluster::{Cluster, RoundRobin};
use crate::policy::SchedulingPolicy;
use crate::serve::{Evaluator, ServingReport};
use workload::Trace;

/// Runs traces through an [`Evaluator`] under a scheduling policy.
#[derive(Debug)]
pub struct Engine<'a> {
    eval: &'a Evaluator,
    policy: SchedulingPolicy,
}

impl<'a> Engine<'a> {
    /// Creates an engine over an evaluator with the given policy.
    pub fn new(eval: &'a Evaluator, policy: SchedulingPolicy) -> Self {
        Engine { eval, policy }
    }

    /// The policy this engine schedules with.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Serves `trace`, splitting requests round-robin across replicas and
    /// advancing each replica's virtual time to completion.
    pub fn run(&self, trace: &Trace) -> ServingReport {
        Cluster::new(self.eval, self.policy).run(trace, &mut RoundRobin::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SystemConfig, Techniques};
    use llm_model::LLM_7B_32K;
    use workload::{Dataset, TraceBuilder};

    fn eval(techniques: Techniques) -> Evaluator {
        Evaluator::new(SystemConfig::cent_for(&LLM_7B_32K), LLM_7B_32K, techniques)
    }

    #[test]
    fn wave_through_engine_matches_reference_exactly() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(3)
            .requests(12)
            .decode_len(32)
            .build();
        for t in Techniques::ladder() {
            let e = eval(t);
            let engine = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
            let reference = e.run_trace_wave_reference(&trace);
            assert_eq!(engine.tokens, reference.tokens, "{}", t.label());
            assert_eq!(engine.waves, reference.waves, "{}", t.label());
            assert_eq!(engine.seconds, reference.seconds, "{}", t.label());
            assert_eq!(
                engine.tokens_per_second,
                reference.tokens_per_second,
                "{}",
                t.label()
            );
            assert_eq!(engine.mean_batch, reference.mean_batch, "{}", t.label());
            assert_eq!(engine.attn_seconds, reference.attn_seconds, "{}", t.label());
            assert_eq!(engine.fc_seconds, reference.fc_seconds, "{}", t.label());
            assert_eq!(engine.energy, reference.energy, "{}", t.label());
            assert_eq!(
                engine.capacity_utilization,
                reference.capacity_utilization,
                "{}",
                t.label()
            );
        }
    }

    #[test]
    fn continuous_serves_every_request_and_token() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(5)
            .requests(24)
            .decode_range(8, 48)
            .poisson(4.0)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Continuous).run(&trace);
        assert_eq!(r.tokens, trace.total_decode_tokens());
        assert_eq!(r.latency.completed, trace.len() as u64);
        assert!(r.tokens_per_second > 0.0);
        assert!(r.busy_seconds <= r.seconds * e.system().replicas() as f64 + 1e-9);
    }

    #[test]
    fn continuous_latencies_are_causally_ordered() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(8)
            .requests(16)
            .decode_range(4, 32)
            .poisson(2.0)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Continuous).run(&trace);
        let l = &r.latency;
        assert!(l.ttft.p50 > 0.0);
        assert!(l.tpot.p50 > 0.0);
        // Percentiles are monotone and e2e dominates ttft at each rank.
        for s in [&l.ttft, &l.tpot, &l.e2e] {
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max, "{s:?}");
        }
        assert!(l.e2e.p50 >= l.ttft.p50);
        assert!(l.e2e.max >= l.ttft.max);
    }

    #[test]
    fn continuous_on_batch_trace_behaves_like_closed_world() {
        // All arrivals at t=0: continuous degenerates to greedy admission
        // with refill — same total work, no idle time.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(6)
            .requests(16)
            .decode_len(16)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Continuous).run(&trace);
        assert_eq!(r.tokens, trace.total_decode_tokens());
        assert!((r.busy_seconds - r.seconds * e.system().replicas() as f64).abs() < 1e-9);
    }

    #[test]
    fn wave_latencies_are_nonnegative_on_open_loop_traces() {
        // Wave ignores arrivals (closed world): latencies are measured
        // from the epoch, so a request arriving "late" must not yield a
        // negative TTFT/E2E.
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(7)
            .requests(12)
            .decode_len(8)
            .poisson(0.5) // arrivals spread over many seconds
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
        assert!(
            r.latency.ttft.p50 >= 0.0 && r.latency.ttft.max >= 0.0,
            "{:?}",
            r.latency.ttft
        );
        assert!(r.latency.e2e.p50 >= 0.0, "{:?}", r.latency.e2e);
        assert!(r.latency.e2e.max <= r.seconds + 1e-9);
    }

    #[test]
    fn wave_timings_cover_all_requests() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(2)
            .requests(10)
            .decode_len(8)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
        assert_eq!(r.latency.completed, trace.len() as u64);
        assert!(r.latency.ttft.max <= r.seconds + 1e-9);
        assert!(r.latency.e2e.max <= r.seconds + 1e-9);
    }

    #[test]
    fn engine_fills_per_replica_breakdown() {
        let trace = TraceBuilder::new(Dataset::QmSum)
            .seed(9)
            .requests(10)
            .decode_len(8)
            .build();
        let e = eval(Techniques::pimphony());
        let r = Engine::new(&e, SchedulingPolicy::Wave).run(&trace);
        assert_eq!(r.per_replica.len(), e.system().replicas() as usize);
        let served: u64 = r.per_replica.iter().map(|b| b.served).sum();
        assert_eq!(served, trace.len() as u64);
        assert!(r.per_replica.iter().all(|b| b.peak_reserved_kv > 0));
    }
}
