//! No-op derive macros backing the offline `serde` shim: the shim's
//! `Serialize`/`Deserialize` traits carry blanket impls, so the derives
//! have nothing to generate.

use proc_macro::TokenStream;

/// Expands to nothing; the shim's blanket impl covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the shim's blanket impl covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
