//! Offline no-op stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in this
//! repository actually serializes (there is no `serde_json` or similar
//! consumer) — the derives exist so downstream users of the library can
//! plug in real serde later. This shim keeps every `#[derive(Serialize,
//! Deserialize)]` and trait bound compiling: the traits are markers with
//! blanket impls, and the derive macros expand to nothing. Swapping the
//! workspace `[patch]`-style path deps back to upstream serde requires no
//! source change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker replacement for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker replacement for `serde::Deserialize`; every type satisfies it.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker replacement for `serde::de::DeserializeOwned`.
pub mod de {
    /// Marker for types deserializable without borrowing.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
