//! Offline mini property-testing harness exposing the subset of the
//! `proptest` surface this repository uses: the [`proptest!`] macro with
//! `#![proptest_config(..)]`, range strategies over primitive numerics,
//! tuple strategies, [`any`] over [`Arbitrary`] types,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Compared to upstream proptest there is no shrinking and no failure
//! persistence: each test runs `cases` deterministic samples (seeded from
//! the test's name) and panics on the first violated assertion. That is
//! sufficient for CI-grade invariant checking while keeping the
//! dependency buildable with no network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random source.
#[derive(Debug)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Seeds from the test's name so every run replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }

    fn rng(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.0
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3)
);

/// Types with a canonical strategy, usable via [`any`] (mirrors
/// `proptest::arbitrary::Arbitrary` for the subset the repo needs).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen_range(0u32..2) == 1
    }
}

/// The canonical strategy of an [`Arbitrary`] type (`any::<bool>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy drawing arbitrary values of `T` (mirrors upstream
/// `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};

    /// Mirror of the upstream `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 1u64..100, f in -1.0f64..1.0) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_hold(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..16 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
