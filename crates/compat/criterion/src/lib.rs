//! Offline stand-in for `criterion` exposing the subset of its API the
//! repository's benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_with_input`, `finish`),
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up once, then
//! runs batches until a small wall-clock budget is spent, and prints the
//! mean time per iteration. There is no statistical analysis or HTML
//! report — the goal is that `cargo bench` compiles, runs, and gives a
//! usable order-of-magnitude number with no network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into_benchmark_id().0),
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion accepted by the `bench_*` entry points (strings or ids).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, primes caches/memos
                                         // Benchmark harness: wall-clock measurement is the product.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.iters += iters;
        self.elapsed += start.elapsed();
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("  {label}: no measurement");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "  {label}: {} /iter ({} iters)",
            format_secs(per_iter),
            self.iters
        );
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    bencher.report(label);
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
