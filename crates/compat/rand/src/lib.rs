//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small subset of the `rand 0.8` API the repository uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open ranges of the primitive numeric
//! types. The generator is xoshiro256++ seeded through SplitMix64 —
//! high-quality and deterministic, though its stream differs from the
//! upstream `StdRng` (ChaCha12). All repository tests derive expectations
//! from the sampler itself, never from upstream streams, so only
//! within-workspace determinism matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A seedable, portable, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, as
        // recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Draws a value in `[lo, hi)` from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Multiply-shift rejection-free mapping is fine here: the
                // bias for spans far below 2^64 is negligible for
                // simulation workloads.
                let wide = (u128::from(rng.next_u64()) * u128::from(span)) >> 64;
                lo.wrapping_add(wide as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                let wide = (u128::from(rng.next_u64()) * u128::from(span)) >> 64;
                (lo as i128 + wide as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, f64::from(lo), f64::from(hi)) as f32
    }
}

/// Sampling interface (mirrors the `rand::Rng` extension trait).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniform `f64` in `[0, 1)` (covers the `gen::<f64>()` idiom).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0, 1.0)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
