//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the `Mutex` subset the repository uses is provided. Unlike the
//! std mutex, `lock()` does not return a poison `Result` — matching the
//! upstream `parking_lot` signature — so a panic while holding the lock
//! simply hands the (kernel-cache) contents to the next locker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::MutexGuard;

/// A mutex whose `lock` returns the guard directly (upstream signature).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Locks, ignoring poisoning (the protected caches stay usable).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
