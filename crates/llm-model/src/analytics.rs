//! Decode-phase compute/memory analytics (paper Fig. 2).

use crate::config::ModelConfig;
use serde::Serialize;

/// Per-decode-step FLOPs, bytes, and footprint analytics for one model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DecodeAnalytics {
    model: ModelConfig,
}

impl DecodeAnalytics {
    /// Creates analytics for `model`.
    pub fn new(model: ModelConfig) -> Self {
        DecodeAnalytics { model }
    }

    /// The analyzed model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// FLOPs for one decode step of one request at context `tokens`
    /// (2 FLOPs per multiply-accumulate).
    pub fn flops_per_step(&self, tokens: u64) -> u64 {
        let m = &self.model;
        let d = u64::from(m.hidden_dim);
        let heads = u64::from(m.heads);
        let dh = u64::from(m.head_dim);
        // Projections: Q (d*d), K/V (d * kv_heads*dh), O (d*d).
        let proj = 2 * (2 * d * d + 2 * d * u64::from(m.kv_heads()) * dh);
        // Attention: QK^T + SV over the full context, all query heads.
        let attn = 2 * (2 * heads * dh * tokens);
        // Gated FFN: up, gate, down.
        let ffn = 2 * (3 * d * u64::from(m.ffn_dim));
        u64::from(m.layers) * (proj + attn + ffn)
    }

    /// Bytes moved for one decode step of a batch of `batch` requests, all
    /// at context `tokens`: weights are read once per step (batch-shared);
    /// the KV cache is read per request.
    pub fn bytes_per_step(&self, tokens: u64, batch: u64) -> u64 {
        self.model.weight_bytes() + batch * self.model.kv_bytes(tokens)
    }

    /// Compute intensity in FLOPs/byte for a batch decode step — the
    /// Fig. 2(a) curve. Falls with `tokens` because attention GEMV bytes
    /// grow while per-step FLOPs grow more slowly than weight reuse.
    pub fn compute_intensity(&self, tokens: u64, batch: u64) -> f64 {
        let flops = batch * self.flops_per_step(tokens);
        let bytes = self.bytes_per_step(tokens, batch);
        flops as f64 / bytes as f64
    }

    /// Total memory footprint (weights + batch KV caches) in bytes — the
    /// Fig. 2(b) surface.
    pub fn memory_footprint(&self, tokens: u64, batch: u64) -> u64 {
        self.model.weight_bytes() + batch * self.model.kv_bytes(tokens)
    }

    /// Fraction of decode-step FLOPs spent in Attention (vs FC) at context
    /// `tokens` — explains why long contexts make PIM the bottleneck
    /// (paper Fig. 17(c)).
    pub fn attention_flop_fraction(&self, tokens: u64) -> f64 {
        let m = &self.model;
        let attn =
            u64::from(m.layers) * 2 * (2 * u64::from(m.heads) * u64::from(m.head_dim) * tokens);
        attn as f64 / self.flops_per_step(tokens) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LLM_72B_32K, LLM_7B_128K_GQA, LLM_7B_32K};

    #[test]
    fn intensity_falls_with_context() {
        let a = DecodeAnalytics::new(LLM_7B_128K_GQA);
        let short = a.compute_intensity(1024, 8);
        let long = a.compute_intensity(128 * 1024, 8);
        assert!(long < short, "intensity should fall: {short} -> {long}");
        // GQA softens the drop; still expect a clear decline.
        assert!(short / long > 1.5, "ratio {:.2}", short / long);
        // Without GQA the collapse is much steeper.
        let b = DecodeAnalytics::new(crate::config::LLM_7B_32K);
        let ratio = b.compute_intensity(1024, 8) / b.compute_intensity(32 * 1024, 8);
        assert!(ratio > 2.0, "non-GQA ratio {ratio:.2}");
    }

    #[test]
    fn intensity_rises_with_batch_at_short_context() {
        let a = DecodeAnalytics::new(LLM_7B_32K);
        // At short context, batching amortizes weight reads.
        assert!(a.compute_intensity(512, 32) > a.compute_intensity(512, 1));
    }

    #[test]
    fn footprint_grows_with_context_and_batch() {
        let a = DecodeAnalytics::new(LLM_7B_32K);
        let base = a.memory_footprint(4096, 1);
        assert!(a.memory_footprint(32 * 1024, 1) > base);
        assert!(a.memory_footprint(4096, 16) > base);
    }

    #[test]
    fn a100_capacity_exceeded_at_long_context() {
        // Fig. 2(b): the dashed A100-80GB line is crossed by 7B workloads
        // at long context with modest batches.
        let a = DecodeAnalytics::new(LLM_7B_32K);
        let a100 = 80u64 * (1 << 30);
        assert!(a.memory_footprint(32 * 1024, 64) > a100);
        assert!(a.memory_footprint(2 * 1024, 4) < a100);
    }

    #[test]
    fn attention_dominates_flops_at_long_context() {
        let a = DecodeAnalytics::new(LLM_72B_32K);
        assert!(a.attention_flop_fraction(1024) < 0.3);
        assert!(a.attention_flop_fraction(512 * 1024) > 0.7);
    }

    #[test]
    fn flops_scale_linearly_in_layers() {
        let small = DecodeAnalytics::new(LLM_7B_32K);
        let mut half = LLM_7B_32K;
        half.layers = 16;
        let h = DecodeAnalytics::new(half);
        assert_eq!(small.flops_per_step(4096), 2 * h.flops_per_step(4096));
    }
}
