//! Transformer decoder model configurations and memory/compute analytics.
//!
//! Reproduces the paper's Table I model zoo and the Fig. 2 analysis:
//! compute intensity (FLOPs/byte) collapses with context length as decoding
//! shifts from GEMM to GEMV, while the KV cache dominates memory footprint
//! growth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod config;

pub use analytics::DecodeAnalytics;
pub use config::{ModelConfig, LLM_72B_128K_GQA, LLM_72B_32K, LLM_7B_128K_GQA, LLM_7B_32K};
